"""Unit + property tests for symbolic path polynomials."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SGPModelError
from repro.graph import AugmentedGraph, random_digraph
from repro.paths import EdgeVariableIndex, path_polynomial, path_polynomials
from repro.paths.polynomial import register_reachable_edges, walk_term
from repro.similarity import inverse_pdistance


class TestEdgeVariableIndex:
    def test_register_assigns_dense_ids(self):
        index = EdgeVariableIndex()
        assert index.register("a", "b") == 0
        assert index.register("b", "c") == 1
        assert len(index) == 2

    def test_register_idempotent(self):
        index = EdgeVariableIndex()
        first = index.register("a", "b")
        second = index.register("a", "b")
        assert first == second
        assert len(index) == 1

    def test_id_of_and_edge_of_round_trip(self):
        index = EdgeVariableIndex()
        var = index.register("a", "b")
        assert index.id_of("a", "b") == var
        assert index.edge_of(var) == ("a", "b")

    def test_unknown_edge_raises(self):
        index = EdgeVariableIndex()
        with pytest.raises(SGPModelError):
            index.id_of("x", "y")

    def test_contains(self):
        index = EdgeVariableIndex()
        index.register("a", "b")
        assert index.contains("a", "b")
        assert not index.contains("b", "a")

    def test_initial_values(self, fig1_kg):
        index = EdgeVariableIndex()
        index.register("Outbox", "Email")
        index.register("Email", "SendMessage")
        assert index.initial_values(fig1_kg) == [0.3, 0.6]

    def test_register_reachable_edges_filters(self, fig1_aug):
        index = EdgeVariableIndex()
        edges = list(fig1_aug.graph.edge_keys())
        register_reachable_edges(index, edges, fig1_aug.is_kg_edge)
        registered = set(index.edges())
        assert ("Outbox", "Email") in registered
        assert ("q", "Outbox") not in registered  # query link is constant
        assert ("Outlook", "a3") not in registered  # answer link is constant


class TestWalkTerm:
    def test_fixed_edges_fold_into_coefficient(self, fig1_aug):
        variables = EdgeVariableIndex()
        variables.register("SendMessage", "Outlook")
        walk = ("q", "Outbox", "SendMessage", "Outlook", "a3")
        coeff, exponents = walk_term(fig1_aug.graph, walk, variables, 0.15)
        # q->Outbox (0.33), Outbox->SendMessage (0.5), Outlook->a3 (1.0)
        # are constants; SendMessage->Outlook is the only variable.
        assert coeff == pytest.approx(0.15 * 0.85**4 * 0.33 * 0.5 * 1.0)
        assert exponents == {variables.id_of("SendMessage", "Outlook"): 1.0}

    def test_repeated_edge_gets_exponent_two(self, fig1_aug):
        variables = EdgeVariableIndex()
        variables.register("Outbox", "Email")
        variables.register("Email", "Outbox")
        walk = ("q", "Outbox", "Email", "Outbox", "Email")
        coeff, exponents = walk_term(fig1_aug.graph, walk, variables, 0.15)
        assert exponents[variables.id_of("Outbox", "Email")] == 2.0
        assert exponents[variables.id_of("Email", "Outbox")] == 1.0
        assert coeff == pytest.approx(0.15 * 0.85**4 * 0.33)


class TestPathPolynomial:
    def test_fig1_polynomial_value_matches_paper(self, fig1_aug, fig1_expected_a3):
        variables = EdgeVariableIndex()
        register_reachable_edges(
            variables, fig1_aug.graph.edge_keys(), fig1_aug.is_kg_edge
        )
        polynomial = path_polynomial(
            fig1_aug.graph, "q", "a3", variables, max_length=5, restart_prob=0.15
        )
        x = np.asarray(variables.initial_values(fig1_aug.graph))
        assert polynomial.compile(len(variables)).value(x) == pytest.approx(
            fig1_expected_a3
        )

    def test_polynomial_is_posynomial(self, fig1_aug):
        variables = EdgeVariableIndex()
        register_reachable_edges(
            variables, fig1_aug.graph.edge_keys(), fig1_aug.is_kg_edge
        )
        polynomial = path_polynomial(fig1_aug.graph, "q", "a3", variables)
        assert polynomial.is_posynomial()

    def test_unreachable_target_gives_zero_polynomial(self, fig1_aug):
        fig1_aug.graph.add_node("island")
        variables = EdgeVariableIndex()
        polynomial = path_polynomial(fig1_aug.graph, "q", "island", variables)
        assert polynomial.num_terms == 0

    def test_multi_target_matches_single_target(self, fig1_aug):
        variables = EdgeVariableIndex()
        register_reachable_edges(
            variables, fig1_aug.graph.edge_keys(), fig1_aug.is_kg_edge
        )
        combined = path_polynomials(
            fig1_aug.graph, "q", ["a3", "Outlook"], variables, max_length=4
        )
        single = path_polynomial(
            fig1_aug.graph, "q", "a3", variables, max_length=4
        )
        x = np.asarray(variables.initial_values(fig1_aug.graph))
        assert combined["a3"].compile(len(variables)).value(x) == pytest.approx(
            single.compile(len(variables)).value(x)
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        max_length=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_symbolic_equals_numeric(self, seed, max_length):
        """The polynomial evaluated at current weights == the numeric DP.

        This is the load-bearing invariant of the whole SGP encoding:
        the symbolic similarity the solver optimizes must agree exactly
        with the numeric similarity used for ranking.
        """
        kg = random_digraph(12, 2.0, seed=seed, out_mass=0.9)
        aug = AugmentedGraph(kg)
        labels = list(kg.nodes())
        aug.add_query("q", {labels[0]: 1, labels[1]: 2})
        aug.add_answer("a", {labels[2]: 1, labels[3]: 1})

        variables = EdgeVariableIndex()
        register_reachable_edges(variables, aug.graph.edge_keys(), aug.is_kg_edge)
        polynomial = path_polynomial(
            aug.graph, "q", "a", variables, max_length=max_length
        )
        x = np.asarray(variables.initial_values(aug.graph))
        symbolic = (
            polynomial.compile(len(variables)).value(x) if len(variables) else
            polynomial.evaluate({})
        )
        numeric = inverse_pdistance(aug.graph, "q", ["a"], max_length=max_length)["a"]
        assert symbolic == pytest.approx(numeric, rel=1e-10, abs=1e-12)

    def test_polynomial_tracks_weight_changes(self, fig1_aug):
        """Re-evaluating at new weights matches re-running the numeric DP."""
        variables = EdgeVariableIndex()
        register_reachable_edges(
            variables, fig1_aug.graph.edge_keys(), fig1_aug.is_kg_edge
        )
        polynomial = path_polynomial(fig1_aug.graph, "q", "a3", variables)
        compiled = polynomial.compile(len(variables))

        fig1_aug.set_kg_weight("SendMessage", "Outlook", 0.45)
        x = np.asarray(variables.initial_values(fig1_aug.graph))
        numeric = inverse_pdistance(fig1_aug.graph, "q", ["a3"])["a3"]
        assert compiled.value(x) == pytest.approx(numeric, rel=1e-10)
