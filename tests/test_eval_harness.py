"""Unit tests for the evaluation harness and dataset registry."""

import pytest

from repro.errors import EvaluationError
from repro.eval.datasets import DATASETS, EFFICIENCY_DATASETS, dataset_table
from repro.eval.harness import evaluate_test_set, rerank_vote, vote_omega_avg
from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.votes import Vote, VoteSet


@pytest.fixture
def aug():
    kg = WeightedDiGraph.from_edges(
        [("x", "y", 0.6), ("x", "z", 0.3)], strict=False
    )
    graph = AugmentedGraph(kg)
    graph.add_query("q", {"x": 1})
    graph.add_answer("a1", {"y": 1})
    graph.add_answer("a2", {"z": 1})
    return graph


class TestRerankVote:
    def test_matches_current_weights(self, aug):
        vote = Vote("q", ("a1", "a2"), "a2")
        assert rerank_vote(aug, vote) == 2
        # Flip the weights: a2's entity now dominates.
        aug.set_kg_weight("x", "y", 0.1)
        aug.set_kg_weight("x", "z", 0.8)
        assert rerank_vote(aug, vote) == 1

    def test_omega_avg_over_votes(self, aug):
        votes = VoteSet(
            [Vote("q", ("a1", "a2"), "a2"), Vote("q", ("a1", "a2"), "a1")]
        )
        # Unchanged graph: the negative vote stays at rank 2, Ω_avg = 0.
        assert vote_omega_avg(aug, votes) == pytest.approx(0.0)
        aug.set_kg_weight("x", "y", 0.1)
        aug.set_kg_weight("x", "z", 0.8)
        # Negative vote improves 2→1 (+1); positive degrades 1→2 (−1).
        assert vote_omega_avg(aug, votes) == pytest.approx(0.0)

    def test_omega_avg_empty_rejected(self, aug):
        with pytest.raises(EvaluationError):
            vote_omega_avg(aug, [])


class TestEvaluateTestSet:
    def test_metrics_computed(self, aug):
        result = evaluate_test_set(aug, {"q": "a1"}, k_values=(1, 2))
        assert result.ranks == [1]
        assert result.r_avg == 1.0
        assert result.mrr == 1.0
        assert result.map_score == 1.0
        assert result.hits == {1: 1.0, 2: 1.0}

    def test_wrong_answer_ranks_second(self, aug):
        result = evaluate_test_set(aug, {"q": "a2"}, k_values=(1, 2))
        assert result.ranks == [2]
        assert result.hits[1] == 0.0
        assert result.hits[2] == 1.0

    def test_empty_test_set_rejected(self, aug):
        with pytest.raises(EvaluationError):
            evaluate_test_set(aug, {})

    def test_unknown_answer_rejected(self, aug):
        with pytest.raises(EvaluationError):
            evaluate_test_set(aug, {"q": "ghost"})

    def test_as_row(self, aug):
        result = evaluate_test_set(aug, {"q": "a1"}, k_values=(1, 2))
        assert result.as_row((1, 2)) == [1.0, 1.0]


class TestDatasets:
    def test_registry_matches_table2(self):
        assert DATASETS["taobao"].nodes == 1_663
        assert DATASETS["taobao"].edges == 17_591
        assert DATASETS["gnutella"].nodes == 62_586
        assert DATASETS["twitter"].average_degree == pytest.approx(1.42, abs=0.01)
        assert DATASETS["digg"].average_degree == pytest.approx(2.88, abs=0.01)

    def test_efficiency_datasets_listed(self):
        assert set(EFFICIENCY_DATASETS) == {"twitter", "digg", "gnutella"}

    def test_loader_generates_scaled_graph(self):
        graph = DATASETS["twitter"].load(scale=0.01, seed=1)
        assert graph.num_nodes == round(23_370 * 0.01)

    def test_dataset_table_rows(self):
        rows = dataset_table()
        assert len(rows) == len(DATASETS)
        names = [row[0] for row in rows]
        assert "Taobao" in names and "Gnutella" in names
