"""Tests for trust-weighted votes across the pipeline."""

import numpy as np
import pytest

from repro.errors import SGPModelError, VoteError
from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.optimize import merge_changes, solve_multi_vote
from repro.optimize.encoder import encode_votes
from repro.optimize.objectives import sigmoid_deviation_objective
from repro.similarity import inverse_pdistance
from repro.votes import Vote, VoteSet


@pytest.fixture
def tug_of_war():
    """Two answers, two user camps voting in opposite directions."""
    kg = WeightedDiGraph.from_edges(
        [("x", "y", 0.45), ("x", "z", 0.45)], strict=False
    )
    aug = AugmentedGraph(kg)
    aug.add_query("q", {"x": 1})
    aug.add_answer("a1", {"y": 1})
    aug.add_answer("a2", {"z": 1})
    return aug


class TestVoteWeightField:
    def test_default_weight(self):
        assert Vote("q", ("a",), "a").weight == 1.0

    def test_custom_weight(self):
        vote = Vote("q", ("a",), "a", weight=4.0)
        assert vote.weight == 4.0

    def test_invalid_weight(self):
        with pytest.raises(VoteError):
            Vote("q", ("a",), "a", weight=0.0)
        with pytest.raises(VoteError):
            Vote("q", ("a",), "a", weight=float("nan"))

    def test_total_weight(self):
        votes = VoteSet([
            Vote("q1", ("a",), "a", weight=2.0),
            Vote("q2", ("a",), "a"),
        ])
        assert votes.total_weight == 3.0


class TestWeightedObjective:
    def test_weights_scale_penalty(self):
        obj = sigmoid_deviation_objective(
            [0, 1], 2, shift=1.0, w=300, weights=[3.0, 1.0]
        )
        # Both deviations saturated positive: penalty = 3 + 1.
        x = np.array([2.0, 2.0])
        assert obj.value(x) == pytest.approx(4.0, abs=1e-6)

    def test_weight_validation(self):
        with pytest.raises(SGPModelError):
            sigmoid_deviation_objective([0], 1, weights=[1.0, 2.0])
        with pytest.raises(SGPModelError):
            sigmoid_deviation_objective([0], 1, weights=[-1.0])

    def test_encoder_exposes_constraint_weights(self, tug_of_war):
        heavy = Vote("q", ("a1", "a2"), "a2", weight=5.0)
        light = Vote("q", ("a1", "a2"), "a1", weight=1.0)
        encoded = encode_votes(tug_of_war, [heavy, light], use_deviations=True)
        assert sorted(encoded.constraint_weights) == [1.0, 5.0]


class TestWeightedOptimization:
    def test_heavier_camp_wins_conflict(self, tug_of_war):
        """Five trusted users beat one, all else equal."""
        prefer_a2 = Vote("q", ("a1", "a2"), "a2", weight=5.0)
        prefer_a1 = Vote("q", ("a1", "a2"), "a1", weight=1.0)
        optimized, report = solve_multi_vote(
            tug_of_war, [prefer_a2, prefer_a1],
            feasibility_filter=False,
        )
        scores = inverse_pdistance(optimized.graph, "q", ["a1", "a2"])
        assert scores["a2"] > scores["a1"]

    def test_reversed_weights_reverse_outcome(self, tug_of_war):
        prefer_a2 = Vote("q", ("a1", "a2"), "a2", weight=1.0)
        prefer_a1 = Vote("q", ("a1", "a2"), "a1", weight=5.0)
        optimized, _ = solve_multi_vote(
            tug_of_war, [prefer_a2, prefer_a1],
            feasibility_filter=False,
        )
        scores = inverse_pdistance(optimized.graph, "q", ["a1", "a2"])
        assert scores["a1"] > scores["a2"]


class TestWeightedMerge:
    def test_float_weights_accepted(self):
        merged = merge_changes([
            ({"e": -0.01}, 2.5),
            ({"e": 0.03}, 2.0),
        ])
        # Weighted sum 2.5*(-0.01) + 2*0.03 = +0.035 > 0 -> max.
        assert merged["e"] == pytest.approx(0.03)

    def test_trust_tips_the_sign(self):
        light_positive = [({"e": 0.05}, 1.0), ({"e": -0.02}, 10.0)]
        merged = merge_changes(light_positive)
        assert merged["e"] == pytest.approx(-0.02)
