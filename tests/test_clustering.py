"""Unit + property tests for vote similarity and affinity propagation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    affinity_propagation,
    cluster_votes,
    vote_similarity,
    vote_similarity_matrix,
)
from repro.clustering.similarity import vote_edge_sets
from repro.errors import ClusteringError
from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.votes import Vote, VoteSet


class TestVoteSimilarity:
    def test_jaccard(self):
        a = {(1, 2), (2, 3), (3, 4)}
        b = {(2, 3), (3, 4), (4, 5)}
        assert vote_similarity(a, b) == pytest.approx(2 / 4)

    def test_identical(self):
        a = {(1, 2)}
        assert vote_similarity(a, set(a)) == 1.0

    def test_disjoint(self):
        assert vote_similarity({(1, 2)}, {(3, 4)}) == 0.0

    def test_both_empty(self):
        assert vote_similarity(set(), set()) == 1.0

    def test_one_empty(self):
        assert vote_similarity({(1, 2)}, set()) == 0.0

    def test_matrix_symmetric_unit_diagonal(self):
        sets = [{(1, 2)}, {(1, 2), (2, 3)}, {(9, 9)}]
        matrix = vote_similarity_matrix(sets)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
        assert matrix[0, 1] == pytest.approx(0.5)
        assert matrix[0, 2] == 0.0

    def test_vote_edge_sets_localized(self):
        """Votes in disjoint graph regions get disjoint edge sets."""
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 0.5), ("u", "v", 0.5)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q1", {"x": 1})
        aug.add_query("q2", {"u": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"v": 1})
        votes = VoteSet(
            [Vote("q1", ("a1",), "a1"), Vote("q2", ("a2",), "a2")]
        )
        sets = vote_edge_sets(aug, votes, max_length=4)
        assert len(sets) == 2
        assert not (sets[0] & sets[1])


class TestAffinityPropagation:
    def block_matrix(self, sizes, within=0.9, between=0.05, seed=0):
        """Similarity matrix with clear block structure."""
        rng = np.random.default_rng(seed)
        n = sum(sizes)
        matrix = np.full((n, n), between)
        start = 0
        for size in sizes:
            matrix[start : start + size, start : start + size] = within
            start += size
        matrix += rng.uniform(-0.02, 0.02, size=(n, n))
        matrix = (matrix + matrix.T) / 2
        np.fill_diagonal(matrix, 1.0)
        return matrix

    def test_recovers_block_structure(self):
        matrix = self.block_matrix([5, 5, 5])
        labels, exemplars = affinity_propagation(matrix)
        assert len(exemplars) == 3
        for block in range(3):
            block_labels = labels[block * 5 : (block + 1) * 5]
            assert len(set(block_labels.tolist())) == 1

    def test_cluster_votes_wrapper(self):
        matrix = self.block_matrix([4, 6])
        clusters = cluster_votes(matrix)
        assert sorted(len(c) for c in clusters) == [4, 6]
        assert sorted(i for c in clusters for i in c) == list(range(10))

    def test_single_point(self):
        labels, exemplars = affinity_propagation(np.array([[1.0]]))
        assert labels.tolist() == [0]
        assert exemplars.tolist() == [0]

    def test_two_identical_points_one_cluster(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]])
        clusters = cluster_votes(matrix)
        assert len(clusters) == 1

    def test_two_dissimilar_points_two_clusters(self):
        # With median preference the 2-point case is a tie, so pin the
        # preference above the cross-similarity to make the expectation
        # well-defined: self-affinity 0.5 beats similarity 0.
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        clusters = cluster_votes(matrix, preference=0.5)
        assert len(clusters) == 2

    def test_preference_controls_granularity(self):
        matrix = self.block_matrix([4, 4, 4])
        many = cluster_votes(matrix, preference=0.99)
        few = cluster_votes(matrix, preference="min")
        assert len(many) >= len(few)

    def test_invalid_inputs(self):
        with pytest.raises(ClusteringError):
            affinity_propagation(np.zeros((2, 3)))
        with pytest.raises(ClusteringError):
            affinity_propagation(np.zeros((0, 0)))
        with pytest.raises(ClusteringError):
            affinity_propagation(np.eye(3), damping=0.3)

    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_partition_is_complete(self, n, seed):
        """Every point lands in exactly one cluster, whatever the matrix."""
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(0, 1, size=(n, n))
        matrix = (matrix + matrix.T) / 2
        np.fill_diagonal(matrix, 1.0)
        clusters = cluster_votes(matrix)
        members = sorted(i for cluster in clusters for i in cluster)
        assert members == list(range(n))
        assert all(cluster for cluster in clusters)
