"""Smoke + behaviour tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-drive"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["datasets"],
            ["demo", "--seed", "3"],
            ["scaling", "--dataset", "twitter", "--votes", "4"],
            ["similarity", "--answers", "5", "10"],
            ["diag", "some-bundle-dir"],
            ["diag", "--metrics-json", "metrics.json"],
        ],
    )
    def test_known_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Taobao" in out and "Gnutella" in out
        assert "17591" in out

    def test_demo_runs_full_loop(self, capsys):
        assert main(["demo", "--seed", "0", "--k", "6"]) == 0
        out = capsys.readouterr().out
        assert "initial ranking" in out
        assert "after optimization" in out
        assert "voted" in out

    def test_similarity_shows_speedup(self, capsys):
        assert main(["similarity", "--nodes", "300", "--answers", "5", "10"]) == 0
        out = capsys.readouterr().out
        assert "Random Walk" in out
        assert "speedup" in out

    def test_scaling_small(self, capsys):
        assert main(
            ["scaling", "--dataset", "twitter", "--scale", "0.005",
             "--votes", "3", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Multi-V" in out and "S-M" in out

    def test_effectiveness_small(self, capsys):
        assert main(
            ["effectiveness", "--votes", "6", "--test-queries", "6",
             "--seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "Multi-vote" in out and "R_avg" in out

    def test_errors_become_exit_code(self, capsys):
        # konect_like rejects an unknown dataset at argparse level;
        # force a runtime error instead via an impossible scale.
        code = main(["scaling", "--dataset", "twitter", "--scale", "-1",
                     "--votes", "2"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
