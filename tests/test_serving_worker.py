"""Tests for the concurrent serve/optimize pipeline (repro/serving/worker.py).

Three layers:

- :class:`VoteQueue` hand-off semantics — bounded blocking ``put`` with
  backpressure accounting, batched ``get``, close/wake behavior;
- :class:`OptimizerWorker` durability — log-before-enqueue, WAL links
  round-trip, checkpoint-on-publish, recovery parity with the
  single-threaded durable path, ``from_online`` adoption;
- the acceptance stress test — a serve thread recording >= 1000
  per-question score reads concurrently with a flushing worker, every
  read **bitwise** equal to what a single-threaded replay of the same
  vote stream serves at the corresponding published epoch.  Zero stale
  or poisoned reads, by exhaustive comparison.
"""

import bisect
import math
import threading
import time

import pytest

from repro.errors import VoteError, WorkerError
from repro.obs import MetricsRegistry
from repro.optimize.online import OnlineOptimizer
from repro.persistence import DurableStore
from repro.serving import SimilarityEngine
from repro.serving.worker import IngestItem, OptimizerWorker, VoteQueue
from repro.similarity.inverse_pdistance import inverse_pdistance
from repro.votes import Vote
from repro.votes.stream import CountPolicy

from tests.durable_scenario import BATCH_SIZE, build_scenario, kg_weights


def make_item(i=0, seq=None):
    vote = Vote(
        query=f"q{i}", ranked_answers=("a1", "a2", "a3"), best_answer="a2"
    )
    return IngestItem(
        seq=seq, vote=vote, links=None, enqueued_at=time.monotonic()
    )


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestVoteQueue:
    def test_rejects_bad_sizes(self, registry):
        with pytest.raises(WorkerError):
            VoteQueue(0, registry=registry)
        queue = VoteQueue(2, registry=registry)
        with pytest.raises(WorkerError):
            queue.get_batch(0)

    def test_fifo_round_trip(self, registry):
        queue = VoteQueue(8, registry=registry)
        items = [make_item(i) for i in range(3)]
        for item in items:
            queue.put(item)
        assert len(queue) == 3
        assert queue.get_batch(2) == items[:2]
        assert queue.get_batch(5) == items[2:]
        assert len(queue) == 0

    def test_put_blocks_until_space_and_counts_backpressure(self, registry):
        queue = VoteQueue(1, registry=registry)
        queue.put(make_item(0))
        blocked = registry.counter("optimize_ingest_blocked_total")
        second = make_item(1)
        putter = threading.Thread(target=queue.put, args=(second,))
        putter.start()
        time.sleep(0.05)
        assert putter.is_alive()  # still blocked on the full queue
        assert blocked.value == 1
        (head,) = queue.get_batch(1)
        putter.join(timeout=2.0)
        assert not putter.is_alive()
        assert queue.get_batch(1) == [second]
        # One backpressure event per blocked put, not per wakeup.
        assert blocked.value == 1

    def test_unblocked_put_does_not_count_backpressure(self, registry):
        queue = VoteQueue(2, registry=registry)
        queue.put(make_item(0))
        assert registry.counter("optimize_ingest_blocked_total").value == 0

    def test_put_timeout_raises_worker_error(self, registry):
        queue = VoteQueue(1, registry=registry)
        queue.put(make_item(0))
        started = time.monotonic()
        with pytest.raises(WorkerError, match="not keeping up"):
            queue.put(make_item(1), timeout=0.05)
        assert time.monotonic() - started >= 0.05
        assert len(queue) == 1  # the timed-out item was never enqueued

    def test_put_after_close_raises(self, registry):
        queue = VoteQueue(4, registry=registry)
        queue.close()
        assert queue.closed
        with pytest.raises(WorkerError, match="closed"):
            queue.put(make_item(0))

    def test_close_wakes_blocked_putter(self, registry):
        queue = VoteQueue(1, registry=registry)
        queue.put(make_item(0))
        errors = []

        def blocked_put():
            try:
                queue.put(make_item(1))
            except WorkerError as exc:
                errors.append(exc)

        putter = threading.Thread(target=blocked_put)
        putter.start()
        time.sleep(0.05)
        queue.close()
        putter.join(timeout=2.0)
        assert not putter.is_alive()
        assert len(errors) == 1

    def test_get_batch_timeout_returns_empty(self, registry):
        queue = VoteQueue(4, registry=registry)
        assert queue.get_batch(8, timeout=0.02) == []

    def test_close_drains_then_returns_empty(self, registry):
        queue = VoteQueue(4, registry=registry)
        item = make_item(0)
        queue.put(item)
        queue.close()
        assert queue.get_batch(8) == [item]
        # Closed and drained: returns immediately, no timeout needed.
        assert queue.get_batch(8) == []

    def test_oldest_enqueued_at_tracks_head(self, registry):
        queue = VoteQueue(4, registry=registry)
        assert queue.oldest_enqueued_at() is None
        first, second = make_item(0), make_item(1)
        queue.put(first)
        queue.put(second)
        assert queue.oldest_enqueued_at() == first.enqueued_at
        queue.get_batch(1)
        assert queue.oldest_enqueued_at() == second.enqueued_at

    def test_depth_gauge_tracks_queue(self, registry):
        queue = VoteQueue(4, registry=registry)
        depth = registry.gauge("optimize_queue_depth")
        queue.put(make_item(0))
        queue.put(make_item(1))
        assert depth.value == 2.0
        queue.get_batch(8)
        assert depth.value == 0.0


class TestWorkerLifecycle:
    def test_double_start_raises(self, registry):
        aug, _ = build_scenario()
        worker = OptimizerWorker(aug, registry=registry)
        worker.start()
        try:
            with pytest.raises(WorkerError, match="already started"):
                worker.start()
        finally:
            worker.stop()

    def test_stopped_worker_stays_stopped(self, registry):
        aug, _ = build_scenario()
        worker = OptimizerWorker(aug, registry=registry)
        worker.start()
        worker.stop()
        with pytest.raises(WorkerError, match="closed queue"):
            worker.start()

    def test_submit_validates_type(self, registry):
        aug, _ = build_scenario()
        worker = OptimizerWorker(aug, registry=registry)
        with pytest.raises(VoteError):
            worker.submit("not a vote")

    def test_context_manager_drains_partial_batch(self, registry):
        aug, votes = build_scenario()
        worker = OptimizerWorker(
            aug, policy=CountPolicy(BATCH_SIZE), registry=registry
        )
        with worker:
            for vote in votes[: BATCH_SIZE + 1]:
                worker.submit(vote)
        assert worker.last_error is None
        assert [o.num_votes for o in worker.history] == [BATCH_SIZE, 1]
        assert worker.pending_votes == 0
        # Every published batch lands on both graphs: shadow and live
        # KG weights are identical between publications.
        assert kg_weights(worker.shadow) == kg_weights(aug)
        assert registry.counter("optimize_ingest_votes_total").value == (
            BATCH_SIZE + 1
        )
        assert (
            registry.counter("optimize_epochs_published_total").value == 2
        )
        assert registry.counter("optimize_worker_errors_total").value == 0

    def test_stop_without_drain_leaves_votes_pending(self, registry):
        aug, votes = build_scenario()
        worker = OptimizerWorker(
            aug, policy=CountPolicy(len(votes) + 1), registry=registry
        )
        with worker:
            for vote in votes[:2]:
                worker.submit(vote)
        # drain=True flushed the partial batch on exit...
        assert len(worker.history) == 1

        aug2, _ = build_scenario()
        worker2 = OptimizerWorker(
            aug2, policy=CountPolicy(100), registry=registry
        )
        worker2.start()
        worker2.stop(drain=False)
        # ...while drain=False publishes nothing.
        assert worker2.history == []
        assert kg_weights(aug2) == kg_weights(worker2.shadow)


class TestWorkerDurability:
    def test_submit_logs_with_links_before_worker_runs(
        self, registry, tmp_path
    ):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            worker = OptimizerWorker(
                aug,
                store=store,
                policy=CountPolicy(100),
                registry=registry,
            )
            # The worker is never started: the WAL append must still
            # happen (on the caller thread, before the enqueue).
            seq = worker.submit(votes[0])
            assert seq == 1
            assert store.wal.last_seq == 1
            assert len(worker.queue) == 1
            (record,) = store.wal.records()
            assert record.seq == 1
            assert record.vote == votes[0]
            assert record.links == tuple(
                aug.query_links(votes[0].query).items()
            )

    def test_wal_links_survive_reopen(self, registry, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            worker = OptimizerWorker(
                aug,
                store=store,
                policy=CountPolicy(100),
                registry=registry,
            )
            for vote in votes[:2]:
                worker.submit(vote)
        with DurableStore(tmp_path) as reopened:
            records = list(reopened.wal.records())
        assert [r.seq for r in records] == [1, 2]
        for record, vote in zip(records, votes[:2]):
            expected = {
                entity: float(weight)
                for entity, weight in aug.query_links(vote.query).items()
            }
            assert dict(record.links) == expected

    def test_publish_checkpoints_shadow_at_batch_seq(
        self, registry, tmp_path
    ):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            worker = OptimizerWorker(
                aug,
                store=store,
                policy=CountPolicy(BATCH_SIZE),
                registry=registry,
            )
            with worker:
                for vote in votes[: BATCH_SIZE + 1]:
                    worker.submit(vote)
            assert worker.last_error is None
            # Two publications (full batch + drain flush); the newest
            # snapshot covers every applied sequence and the WAL was
            # rotated past it.
            snapshot_aug, snapshot_seq = store.snapshots.latest()
            assert snapshot_seq == BATCH_SIZE + 1
            assert list(store.wal.records(after_seq=snapshot_seq)) == []
            assert kg_weights(snapshot_aug) == kg_weights(aug)

    def test_recovery_matches_live_graph_bitwise(self, registry, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            worker = OptimizerWorker(
                aug,
                store=store,
                policy=CountPolicy(BATCH_SIZE),
                registry=registry,
            )
            with worker:
                for vote in votes:
                    worker.submit(vote)
            assert worker.last_error is None
            live = kg_weights(aug)
        with DurableStore(tmp_path) as reopened:
            recovered = OnlineOptimizer.recover(
                reopened, policy=CountPolicy(BATCH_SIZE)
            )
        assert kg_weights(recovered.aug) == live
        # The drain flushed everything: recovery has no pending tail.
        assert len(recovered.pending) == 0

    def test_kill_before_drain_replays_from_wal(self, registry, tmp_path):
        """A crash between log and publish loses nothing."""
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            worker = OptimizerWorker(
                aug,
                store=store,
                policy=CountPolicy(100),  # never fires on its own
                registry=registry,
            )
            # Votes are logged but the worker never runs: the crash
            # window between enqueue and ingest.
            for vote in votes[:BATCH_SIZE]:
                worker.submit(vote)
        # No publication ever happened, so there is no snapshot: boot
        # recovery replays the WAL tail over the deployed graph.
        fallback, _ = build_scenario()
        with DurableStore(tmp_path) as reopened:
            recovered = OnlineOptimizer.recover(
                reopened, policy=CountPolicy(100), fallback=fallback
            )
        assert len(recovered.pending) == BATCH_SIZE
        assert [v.query for v in recovered.pending.votes] == [
            v.query for v in votes[:BATCH_SIZE]
        ]

    def test_from_online_adopts_pending_and_history(self, registry, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(BATCH_SIZE), store=store
            )
            for vote in votes[: BATCH_SIZE + 2]:
                online.submit(vote)
            assert len(online.history) == 1
            assert len(online.pending) == 2

            worker = OptimizerWorker.from_online(online, registry=registry)
            assert worker.pending_votes == 2
            assert len(worker.history) == 1
            # batch_index keeps counting from the adopted history.
            outcome = worker.flush()
            assert outcome is not None
            assert outcome.num_votes == 2
            assert outcome.batch_index == 1
            assert kg_weights(worker.shadow) == kg_weights(aug)
            # The drain-flush checkpointed through the adopted seqs.
            assert store.snapshots.newest_seq() == BATCH_SIZE + 2


class TestConcurrentStress:
    """The acceptance gate: serve concurrently with a flushing worker.

    >= 1000 question-score reads interleave with vote ingestion and
    background batch publications.  Every read is tagged with the
    engine epoch observed before and after the serve; afterwards the
    same vote stream is replayed through a single-threaded
    :class:`OnlineOptimizer` and every read is compared to a cold
    recompute at its mapped batch state.  A stale cache entry, a torn
    weight patch, or a half-applied batch all fail this exhaustive
    comparison.

    Two comparison regimes, matching the engine's documented serve
    guarantees:

    - with delta revalidation **off**, every publication drops the
      cache and every serve recomputes from the copy-on-write matrix —
      **bitwise** equal to the cold recompute, so the comparison is
      exact float equality;
    - with delta revalidation **on** (the production default), cache
      entries surviving a publish carry the exact-within-rounding
      delta correction (1-ulp-level, see ``tests/test_serving_delta``)
      — the comparison allows correction rounding and nothing more.
      A concurrency bug shows up orders of magnitude above that.
    """

    #: Delta-correction rounding budget (relative).  Torn or stale
    #: reads differ from every state at ~1e-2 relative; a few chained
    #: 1-ulp corrections stay under this by a wide margin.
    DELTA_RTOL = 1e-9

    def _run_session(self, *, delta_revalidation):
        num_queries = 16
        aug, votes = build_scenario(num_queries=num_queries)
        assert len(votes) >= 2 * BATCH_SIZE  # needs real batch traffic

        registry = MetricsRegistry()
        engine = SimilarityEngine(
            aug,
            cache_size=4096,
            registry=registry,
            delta_revalidation=delta_revalidation,
        )
        worker = OptimizerWorker(
            aug,
            engine=engine,
            policy=CountPolicy(BATCH_SIZE),
            registry=registry,
        )

        # Record the epoch of every publication, in order, by wrapping
        # the bound method on this one instance.
        published = []
        orig_publish = engine.publish

        def tracking_publish(apply):
            epoch = orig_publish(apply)
            published.append(epoch)
            return epoch

        engine.publish = tracking_publish

        queries = sorted(aug.query_nodes, key=repr)
        targets = sorted(aug.answer_nodes, key=repr)
        observations = []  # (epoch_before, epoch_after, {query: scores})
        asks = 0
        submitted = 0
        step = 0
        # The loop keeps serving until every pre-drain batch has
        # actually published, so observations cover every intermediate
        # state, not just state 0 — a fast serve loop must not outrun
        # the comparison's reason to exist.
        expected_publishes = len(votes) // BATCH_SIZE
        deadline = time.monotonic() + 120.0

        def serve_once(step):
            epoch_before = engine.epoch
            if step % 10 == 9:
                # Exercise the batched serve path too.
                group = [
                    queries[(step + j) % len(queries)] for j in range(3)
                ]
                scored = engine.score_batch(group, targets)
            else:
                query = queries[step % len(queries)]
                scored = {query: engine.scores_for_query(query, targets)}
            epoch_after = engine.epoch
            observations.append((epoch_before, epoch_after, scored))
            return len(scored)

        with worker:
            while (
                asks < 1000
                or submitted < len(votes)
                or len(published) < expected_publishes
            ):
                assert time.monotonic() < deadline, "worker stalled"
                if step % 7 == 0 and submitted < len(votes):
                    worker.submit(votes[submitted])
                    submitted += 1
                asks += serve_once(step)
                step += 1
                if asks >= 1000 and submitted == len(votes):
                    # Quota met: stop hammering the GIL so the worker
                    # can finish publishing while we keep observing.
                    time.sleep(0.002)
        # The drain published any leftover partial batch; read once
        # more per query so the final state is observed too.
        for _ in range(len(queries)):
            serve_once(step)
            step += 1

        assert worker.last_error is None
        assert asks >= 1000
        assert submitted == len(votes)
        # Epochs publish in non-decreasing order (a publication whose
        # patch leaves the matrix byte-identical does not bump the
        # epoch), exactly one per batch outcome.
        assert published == sorted(published)
        assert len(published) == len(worker.history)
        assert (
            registry.counter("optimize_worker_errors_total").value == 0
        )
        assert registry.counter(
            "optimize_ingest_votes_total"
        ).value == len(votes)
        assert registry.counter(
            "optimize_epochs_published_total"
        ).value == len(published)

        # --- single-threaded replay of the identical scenario -------
        ref_aug, ref_votes = build_scenario(num_queries=num_queries)
        assert ref_votes == votes  # the scenario is fully deterministic
        replay = OnlineOptimizer(ref_aug, policy=CountPolicy(BATCH_SIZE))
        ref_graphs = [ref_aug.copy()]  # state 0: no batch applied
        for vote in ref_votes:
            if replay.submit(vote) is not None:
                ref_graphs.append(ref_aug.copy())
        if replay.flush() is not None:
            ref_graphs.append(ref_aug.copy())

        # Same batch boundaries, same final weights — bitwise, in both
        # regimes: publication correctness does not depend on the
        # cache-repair strategy.
        assert [o.num_votes for o in worker.history] == [
            o.num_votes for o in replay.history
        ]
        assert len(ref_graphs) == len(published) + 1
        final = kg_weights(aug)
        assert kg_weights(ref_aug) == final
        assert kg_weights(worker.shadow) == final

        return engine, targets, observations, published, ref_graphs

    def _check_observations(
        self, engine, targets, observations, published, ref_graphs, *, rtol
    ):
        """Map every observation to a replay state and compare scores."""
        params = engine.params
        cold_cache = {}

        def cold(state, query):
            key = (state, query)
            if key not in cold_cache:
                cold_cache[key] = inverse_pdistance(
                    ref_graphs[state].graph, query, targets, params=params
                )
            return cold_cache[key]

        def matches(served, expected):
            if rtol == 0.0:
                return all(served[t] == expected[t] for t in targets)
            return all(
                math.isclose(served[t], expected[t], rel_tol=rtol)
                for t in targets
            )

        stable = spanning = 0
        for epoch_before, epoch_after, scored in observations:
            # State k is in effect from the k-th published epoch up to
            # (not including) the next one.
            k0 = bisect.bisect_right(published, epoch_before)
            k1 = bisect.bisect_right(published, epoch_after)
            assert k0 <= k1
            for query, served in scored.items():
                if k0 == k1:
                    # No publication overlapped this serve: the scores
                    # must be state k0's — zero stale reads.
                    stable += 1
                    assert matches(served, cold(k0, query)), (
                        f"poisoned read: query {query!r} at state {k0} "
                        f"(epoch {epoch_before})"
                    )
                else:
                    # A publication landed mid-serve: the read must
                    # still be one consistent state from the interval,
                    # never a torn mixture.
                    spanning += 1
                    assert any(
                        matches(served, cold(k, query))
                        for k in range(k0, k1 + 1)
                    ), (
                        f"torn read: query {query!r} matches no state in "
                        f"[{k0}, {k1}]"
                    )
        # The overwhelming majority of reads must be unambiguous, and
        # both endpoint states must have been observed stably for the
        # comparison to mean anything.
        assert stable >= 1000 - len(published) * 16
        observed_states = {
            bisect.bisect_right(published, e0)
            for e0, e1, _ in observations
            if e0 == e1
        }
        assert 0 in observed_states
        assert len(ref_graphs) - 1 in observed_states

    def test_thousand_asks_bitwise_equal_single_threaded_replay(self):
        session = self._run_session(delta_revalidation=False)
        self._check_observations(*session, rtol=0.0)

    def test_delta_revalidated_serves_stay_within_correction_rounding(self):
        session = self._run_session(delta_revalidation=True)
        self._check_observations(*session, rtol=self.DELTA_RTOL)
