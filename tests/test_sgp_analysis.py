"""Unit tests for SGP program diagnostics."""

import pytest

from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.optimize.encoder import encode_votes
from repro.sgp import SGPProblem, Signomial
from repro.sgp.analysis import ProgramStats, analyze_program, estimated_constraint_cost
from repro.votes import Vote


def small_problem():
    problem = SGPProblem([0.5, 0.5, 0.5])
    problem.add_constraint(
        Signomial.from_terms([(1.0, {0: 2, 1: 1}), (-1.0, {2: 1})])
    )
    problem.add_constraint(Signomial.from_terms([(2.0, {0: 1}), (3.0, {1: 1})]))
    return problem


class TestAnalyzeProgram:
    def test_counts(self):
        stats = analyze_program(small_problem())
        assert stats.num_vars == 3
        assert stats.num_constraints == 2
        assert stats.total_terms == 4
        assert stats.max_terms_per_constraint == 2
        assert stats.mean_terms_per_constraint == 2.0

    def test_degree_and_posynomials(self):
        stats = analyze_program(small_problem())
        assert stats.max_degree == 3.0  # x0^2 x1
        assert stats.num_posynomial_constraints == 1  # second constraint only

    def test_variables_used(self):
        stats = analyze_program(small_problem())
        assert stats.variables_used == 3

    def test_empty_program(self):
        stats = analyze_program(SGPProblem([0.5]))
        assert stats.num_constraints == 0
        assert stats.total_terms == 0
        assert stats.max_terms_per_constraint == 0

    def test_as_row(self):
        assert len(analyze_program(small_problem()).as_row()) == 8

    def test_terms_grow_with_path_length(self):
        """The O(d^L) encoding growth is visible in the diagnostics."""
        kg = WeightedDiGraph.from_edges(
            [
                ("a", "b", 0.4), ("a", "c", 0.4),
                ("b", "a", 0.4), ("b", "c", 0.4),
                ("c", "a", 0.4), ("c", "b", 0.4),
            ],
            strict=False,
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"a": 1})
        aug.add_answer("x1", {"b": 1})
        aug.add_answer("x2", {"c": 1})
        vote = Vote("q", ("x1", "x2"), "x2")
        totals = []
        for length in (3, 4, 5, 6):
            encoded = encode_votes(
                aug, [vote], use_deviations=False, max_length=length
            )
            totals.append(analyze_program(encoded.problem).total_terms)
        assert totals == sorted(totals)
        assert totals[-1] > totals[0] * 2


class TestEstimatedCost:
    def test_formula(self):
        assert estimated_constraint_cost(3.0, 4, 10) == pytest.approx(10 * 81.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimated_constraint_cost(-1.0, 3, 5)
        with pytest.raises(ValueError):
            estimated_constraint_cost(2.0, 0, 5)
        with pytest.raises(ValueError):
            estimated_constraint_cost(2.0, 3, 0)
