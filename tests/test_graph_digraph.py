"""Unit tests for the base weighted digraph."""

import numpy as np
import pytest

from repro.errors import EdgeNotFoundError, InvalidWeightError, NodeNotFoundError
from repro.graph import WeightedDiGraph


@pytest.fixture
def triangle():
    """a -> b -> c -> a with distinct weights."""
    return WeightedDiGraph.from_edges(
        [("a", "b", 0.5), ("b", "c", 0.7), ("c", "a", 0.9)]
    )


class TestConstruction:
    def test_empty_graph(self):
        graph = WeightedDiGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.average_degree() == 0.0

    def test_add_edge_creates_endpoints(self):
        graph = WeightedDiGraph()
        graph.add_edge("x", "y", 0.3)
        assert graph.has_node("x") and graph.has_node("y")
        assert graph.num_edges == 1
        assert graph.weight("x", "y") == 0.3

    def test_add_node_idempotent(self):
        graph = WeightedDiGraph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.num_nodes == 1

    def test_overwrite_edge_keeps_edge_count(self, triangle):
        triangle.add_edge("a", "b", 0.6)
        assert triangle.num_edges == 3
        assert triangle.weight("a", "b") == 0.6

    def test_from_edges(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3

    def test_self_loop_allowed(self):
        graph = WeightedDiGraph()
        graph.add_edge("a", "a", 0.4)
        assert graph.has_edge("a", "a")


class TestWeightValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.1, float("nan"), float("inf")])
    def test_rejects_nonpositive_or_nonfinite(self, bad):
        graph = WeightedDiGraph()
        with pytest.raises(InvalidWeightError):
            graph.add_edge("a", "b", bad)

    def test_strict_rejects_weight_above_one(self):
        graph = WeightedDiGraph(strict=True)
        with pytest.raises(InvalidWeightError):
            graph.add_edge("a", "b", 1.5)

    def test_nonstrict_allows_weight_above_one(self):
        graph = WeightedDiGraph(strict=False)
        graph.add_edge("a", "b", 1.5)
        assert graph.weight("a", "b") == 1.5

    def test_strict_rejects_out_sum_above_one(self):
        graph = WeightedDiGraph(strict=True)
        graph.add_edge("a", "b", 0.7)
        with pytest.raises(InvalidWeightError):
            graph.add_edge("a", "c", 0.5)

    def test_strict_set_weight_respects_out_sum(self):
        graph = WeightedDiGraph(strict=True)
        graph.add_edge("a", "b", 0.5)
        graph.add_edge("a", "c", 0.5)
        with pytest.raises(InvalidWeightError):
            graph.set_weight("a", "b", 0.6)
        graph.set_weight("a", "b", 0.4)  # lowering is always fine
        assert graph.weight("a", "b") == 0.4

    def test_overwriting_edge_replaces_mass_not_adds(self):
        graph = WeightedDiGraph(strict=True)
        graph.add_edge("a", "b", 0.9)
        graph.add_edge("a", "b", 0.95)  # replaces, sum stays <= 1
        assert graph.out_weight_sum("a") == pytest.approx(0.95)


class TestQueries:
    def test_weight_missing_edge_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.weight("a", "c")

    def test_weight_or_zero(self, triangle):
        assert triangle.weight_or_zero("a", "c") == 0.0
        assert triangle.weight_or_zero("a", "b") == 0.5
        assert triangle.weight_or_zero("ghost", "b") == 0.0

    def test_successors_predecessors(self, triangle):
        assert triangle.successors("a") == {"b": 0.5}
        assert triangle.predecessors("a") == {"c": 0.9}

    def test_successors_returns_copy(self, triangle):
        succ = triangle.successors("a")
        succ["b"] = 99.0
        assert triangle.weight("a", "b") == 0.5

    def test_degrees(self, triangle):
        assert triangle.out_degree("a") == 1
        assert triangle.in_degree("a") == 1
        assert triangle.average_degree() == pytest.approx(1.0)

    def test_missing_node_raises(self, triangle):
        for method in ("successors", "predecessors", "out_degree", "in_degree",
                       "out_weight_sum"):
            with pytest.raises(NodeNotFoundError):
                getattr(triangle, method)("ghost")

    def test_contains_and_len(self, triangle):
        assert "a" in triangle
        assert "ghost" not in triangle
        assert len(triangle) == 3

    def test_edges_iteration(self, triangle):
        edges = {(e.head, e.tail): e.weight for e in triangle.edges()}
        assert edges == {("a", "b"): 0.5, ("b", "c"): 0.7, ("c", "a"): 0.9}

    def test_edge_keys(self, triangle):
        assert set(triangle.edge_keys()) == {("a", "b"), ("b", "c"), ("c", "a")}


class TestMutation:
    def test_remove_edge(self, triangle):
        triangle.remove_edge("a", "b")
        assert not triangle.has_edge("a", "b")
        assert triangle.num_edges == 2
        assert triangle.has_node("a")

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.remove_edge("a", "c")

    def test_remove_node_removes_incident_edges(self, triangle):
        triangle.remove_node("b")
        assert triangle.num_nodes == 2
        assert triangle.num_edges == 1  # only c -> a survives
        assert triangle.has_edge("c", "a")

    def test_remove_missing_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.remove_node("ghost")

    def test_set_weight_missing_edge_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.set_weight("a", "c", 0.1)

    def test_set_weight_updates_both_directions(self, triangle):
        triangle.set_weight("a", "b", 0.25)
        assert triangle.successors("a")["b"] == 0.25
        assert triangle.predecessors("b")["a"] == 0.25


class TestDerivedViews:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.set_weight("a", "b", 0.1)
        assert triangle.weight("a", "b") == 0.5
        clone.add_edge("a", "z", 0.2)
        assert not triangle.has_node("z")

    def test_node_index_is_stable_and_cached(self, triangle):
        idx1 = triangle.node_index()
        idx2 = triangle.node_index()
        assert idx1 is idx2
        assert sorted(idx1.values()) == [0, 1, 2]

    def test_node_index_invalidated_by_node_changes(self, triangle):
        idx1 = triangle.node_index()
        triangle.add_node("d")
        idx2 = triangle.node_index()
        assert idx1 is not idx2
        assert "d" in idx2

    def test_adjacency_matrix_transposes_weights(self, triangle):
        index = triangle.node_index()
        matrix = triangle.adjacency_matrix().toarray()
        # M[i, j] = w(v_j, v_i) per the PPR equation in the paper.
        assert matrix[index["b"], index["a"]] == 0.5
        assert matrix[index["c"], index["b"]] == 0.7
        assert matrix[index["a"], index["c"]] == 0.9
        assert np.count_nonzero(matrix) == 3

    def test_subgraph(self, triangle):
        sub = triangle.subgraph(["a", "b"])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.weight("a", "b") == 0.5

    def test_subgraph_missing_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.subgraph(["a", "ghost"])

    def test_networkx_round_trip(self, triangle):
        nx_graph = triangle.to_networkx()
        back = WeightedDiGraph.from_networkx(nx_graph)
        assert {(e.head, e.tail, e.weight) for e in back.edges()} == {
            (e.head, e.tail, e.weight) for e in triangle.edges()
        }
