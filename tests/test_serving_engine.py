"""Tests for the versioned similarity serving subsystem.

The load-bearing property: scores served by :class:`SimilarityEngine`
from its incrementally maintained matrix are **bitwise** equal to a cold
:func:`inverse_pdistance` recompute on the live graph, no matter how
weight updates, query attach/detach, and document additions interleave.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError, NodeNotFoundError
from repro.graph.augmented import AugmentedGraph
from repro.graph.generators import random_digraph
from repro.optimize.multi_vote import MultiVoteReport
from repro.optimize.parallel import _init_pool, _pool_worker
from repro.optimize.report import OptimizeReport
from repro.optimize.single_vote import SingleVoteReport, VoteOutcome
from repro.optimize.split_merge import SplitMergeReport
from repro.serving import (
    EngineStats,
    SimilarityEngine,
    SimilarityParams,
    resolve_similarity_params,
)
from repro.similarity.inverse_pdistance import (
    inverse_pdistance,
    inverse_pdistance_batch,
)

PARAMS = SimilarityParams(k=5, max_length=6, restart_prob=0.2)


def build_aug(seed=3, num_entities=12):
    kg = random_digraph(num_entities, avg_degree=3.0, seed=seed, out_mass=0.9)
    aug = AugmentedGraph(kg)
    entities = sorted(kg.nodes())
    for i in range(4):
        aug.add_answer(
            f"a{i}",
            {
                entities[(i + j) % len(entities)]: 1.0 + j
                for j in range(3)
            },
        )
    for i in range(3):
        aug.add_query(
            f"q{i}",
            {
                entities[i]: 1.0,
                entities[(i + 5) % len(entities)]: 2.0,
            },
        )
    return aug, entities


def assert_engine_matches_cold(engine, aug, params=PARAMS):
    """Every attached query: engine == cold recompute, batch == single."""
    targets = sorted(aug.answer_nodes, key=repr)
    queries = sorted(aug.query_nodes, key=repr)
    if not targets or not queries:
        return
    batch = engine.score_batch(queries, targets, params=params)
    for query in queries:
        served = engine.scores_for_query(query, targets, params=params)
        cold = inverse_pdistance(aug.graph, query, targets, params=params)
        for target in targets:
            assert served[target] == cold[target]  # bitwise, not approx
            assert batch[query][target] == cold[target]


class TestSimilarityParams:
    def test_defaults_and_replace(self):
        params = SimilarityParams()
        assert params.k >= 1
        tweaked = params.replace(k=3)
        assert tweaked.k == 3
        assert tweaked.max_length == params.max_length

    @pytest.mark.parametrize(
        "kwargs",
        [dict(k=0), dict(max_length=0), dict(restart_prob=0.0),
         dict(restart_prob=1.5)],
    )
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, Exception)):
            SimilarityParams(**kwargs)

    def test_resolve_legacy_kwargs_raise_with_migration_hint(self):
        with pytest.raises(TypeError, match=r"SimilarityParams\(k=7\)"):
            resolve_similarity_params(None, k=7)
        with pytest.raises(TypeError, match="removed"):
            resolve_similarity_params(None, max_length=4, restart_prob=0.3)

    def test_resolve_both_is_error(self):
        with pytest.raises(TypeError):
            resolve_similarity_params(SimilarityParams(), k=7)

    def test_resolve_params_passthrough_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            params = resolve_similarity_params(SimilarityParams(k=9))
        assert params.k == 9


class TestEngineBitwise:
    def test_fresh_engine_matches_cold(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        assert_engine_matches_cold(engine, aug)

    def test_batch_matches_cold_batch(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        queries = sorted(aug.query_nodes, key=repr)
        served = engine.score_batch(queries, targets, params=PARAMS)
        cold = inverse_pdistance_batch(
            aug.graph, queries, targets, params=PARAMS
        )
        for query in queries:
            for target in targets:
                assert served[query][target] == cold[query][target]

    def test_weight_patch_matches_cold(self):
        # delta_revalidation=False pins the cold-invalidation path: this
        # test asserts *bitwise* equality after patches, which only the
        # full-repropagation path guarantees (the delta path is
        # tolerance-equal and covered in test_serving_delta.py).
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS, delta_revalidation=False)
        assert_engine_matches_cold(engine, aug)
        edges = sorted(
            ((e.head, e.tail) for e in aug.kg_edges()), key=repr
        )
        for i, (head, tail) in enumerate(edges[:10]):
            aug.set_kg_weight(head, tail, 0.05 + 0.01 * i)
        assert_engine_matches_cold(engine, aug)
        assert engine.stats().weight_patches == 10
        assert engine.stats().builds == 1  # no rebuild for weight updates

    def test_answer_append_matches_cold(self):
        aug, entities = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        assert_engine_matches_cold(engine, aug)
        aug.add_answer("a_new", {entities[0]: 2.0, entities[4]: 1.0})
        assert_engine_matches_cold(engine, aug)
        assert engine.stats().rows_appended == 1
        assert engine.stats().builds == 1  # appended, not rebuilt

    def test_query_churn_is_free(self):
        aug, entities = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        assert_engine_matches_cold(engine, aug)
        engine.scores_for_query("q1")
        hits_before = engine.stats().cache_hits
        aug.add_query("q_new", {entities[2]: 1.0})
        aug.remove_query("q0")
        # The matrix is untouched, so the cached vector is still valid.
        engine.scores_for_query("q1")
        assert engine.stats().cache_hits == hits_before + 1
        assert_engine_matches_cold(engine, aug)
        assert engine.stats().builds == 1  # query churn never rebuilds

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(
                    [
                        "weight",
                        "query_attach",
                        "query_detach",
                        "answer_add",
                        "answer_remove",
                        "serve",
                    ]
                ),
                st.integers(min_value=0, max_value=10**6),
                st.floats(min_value=0.05, max_value=0.95),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_interleaved_mutations_stay_bitwise(self, ops):
        # Bitwise property of the cold-invalidation path; the delta
        # path's tolerance-equality property lives in
        # test_serving_delta.py.
        aug, entities = build_aug(seed=11)
        engine = SimilarityEngine(aug, params=PARAMS, delta_revalidation=False)
        kg_edges = sorted(
            ((e.head, e.tail) for e in aug.kg_edges()), key=repr
        )
        counter = {"q": 0, "a": 0}
        for kind, idx, value in ops:
            if kind == "weight":
                head, tail = kg_edges[idx % len(kg_edges)]
                aug.set_kg_weight(head, tail, value)
            elif kind == "query_attach":
                qid = f"hq{counter['q']}"
                counter["q"] += 1
                aug.add_query(
                    qid,
                    {
                        entities[idx % len(entities)]: 1.0,
                        entities[(idx + 3) % len(entities)]: value,
                    },
                )
            elif kind == "query_detach":
                attached = sorted(aug.query_nodes, key=repr)
                if attached:
                    aug.remove_query(attached[idx % len(attached)])
            elif kind == "answer_add":
                aid = f"ha{counter['a']}"
                counter["a"] += 1
                aug.add_answer(
                    aid,
                    {
                        entities[idx % len(entities)]: value,
                        entities[(idx + 1) % len(entities)]: 1.0,
                    },
                )
            elif kind == "answer_remove":
                extra = sorted(
                    a for a in aug.answer_nodes if str(a).startswith("ha")
                )
                if extra:
                    aug.remove_answer(extra[idx % len(extra)])
            else:  # mid-sequence serve to exercise the flush paths
                assert_engine_matches_cold(engine, aug)
        assert_engine_matches_cold(engine, aug)


class TestEngineBehaviour:
    def test_cache_hits_and_version_invalidation(self):
        # With delta revalidation off, a weight patch cold-invalidates
        # the cache (the historical contract this test pins down).
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS, delta_revalidation=False)
        engine.scores_for_query("q0")
        before = engine.stats()
        engine.scores_for_query("q0")
        after = engine.stats()
        assert after.cache_hits == before.cache_hits + 1
        edge = next(iter(aug.kg_edges()))
        aug.set_kg_weight(edge.head, edge.tail, 0.42)
        engine.scores_for_query("q0")
        assert engine.stats().cache_hits == after.cache_hits  # new version
        assert engine.stats().cache_misses > after.cache_misses

    def test_cache_size_zero_disables(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS, cache_size=0)
        engine.scores_for_query("q0")
        engine.scores_for_query("q0")
        stats = engine.stats()
        assert stats.cache_hits == 0
        assert stats.cache_entries == 0

    def test_cache_is_bounded(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS, cache_size=2)
        for query in sorted(aug.query_nodes, key=repr):
            engine.scores_for_query(query)
        assert engine.stats().cache_entries <= 2

    def test_stats_snapshot_fields(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        engine.score_batch(sorted(aug.query_nodes, key=repr))
        stats = engine.stats()
        assert isinstance(stats, EngineStats)
        assert stats.builds == 1
        assert stats.batch_serves == 1
        assert stats.graph_version == aug.version
        assert set(stats.timings) == {"build", "propagate", "delta"}

    def test_non_query_raises(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        with pytest.raises(EvaluationError):
            engine.scores_for_query("a0")

    def test_unknown_link_entity_raises(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        with pytest.raises(NodeNotFoundError):
            engine.scores({"nonexistent": 1.0})

    def test_close_detaches_listener(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        engine.scores_for_query("q0")
        engine.close()
        edge = next(iter(aug.kg_edges()))
        aug.set_kg_weight(edge.head, edge.tail, 0.3)  # must not blow up
        assert engine._events == []

    def test_virtual_query_scores(self):
        aug, entities = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        links = {entities[0]: 0.5, entities[1]: 0.5}
        served = engine.scores(links)
        aug.add_query("q_virtual", {entities[0]: 1.0, entities[1]: 1.0})
        cold = inverse_pdistance(
            aug.graph,
            "q_virtual",
            sorted(aug.answer_nodes, key=repr),
            params=PARAMS,
        )
        for target, score in served.items():
            assert score == cold[target]


class TestOptimizeReportContract:
    @pytest.mark.parametrize(
        "report",
        [SingleVoteReport(), MultiVoteReport(), SplitMergeReport()],
        ids=["single", "multi", "split-merge"],
    )
    def test_common_surface(self, report):
        assert isinstance(report, OptimizeReport)
        assert report.elapsed == 0.0
        assert report.solve_time == 0.0
        assert report.num_changed_edges == 0
        assert report.strategy in report.summary()
        assert "0 edge(s) changed" in report.summary()

    def test_single_vote_changed_edges_merge(self):
        report = SingleVoteReport(
            outcomes=[
                VoteOutcome(
                    vote=None, solution=None,
                    changed_edges={("a", "b"): (0.1, 0.2)},
                ),
                VoteOutcome(
                    vote=None, solution=None,
                    changed_edges={("a", "b"): (0.2, 0.3),
                                   ("b", "c"): (0.4, 0.5)},
                ),
            ]
        )
        # Later votes win; the alias stays available.
        assert report.changed_edges[("a", "b")] == (0.2, 0.3)
        assert report.num_changed_edges == 2
        assert report.all_changed_edges() == report.changed_edges


class TestParallelPayloads:
    def test_pool_worker_uses_initializer_graph(self):
        aug, _ = build_aug()
        votes = []
        _init_pool(aug)
        # The payload carries no graph — the worker must find it in the
        # per-process global installed by the initializer.
        result = _pool_worker((votes, 7, {"params": PARAMS}))
        assert result.index == 7
        assert result.num_votes == 0
