"""Unit tests for the shared utilities."""

import time

import numpy as np
import pytest

from repro.utils import (
    Stopwatch,
    check_fraction,
    check_positive,
    check_probability,
    ensure_rng,
    format_table,
    spawn_rngs,
    timed,
)


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=5)
        b = ensure_rng(42).integers(0, 1_000_000, size=5)
        assert (a == b).all()

    def test_generator_passes_through(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_spawn_rngs_independent_and_deterministic(self):
        streams_a = spawn_rngs(7, 3)
        streams_b = spawn_rngs(7, 3)
        draws_a = [r.integers(0, 10**9) for r in streams_a]
        draws_b = [r.integers(0, 10**9) for r in streams_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 3  # streams differ from each other

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestStopwatch:
    def test_accumulates_across_intervals(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        first = watch.stop()
        watch.start()
        time.sleep(0.01)
        second = watch.stop()
        assert second > first > 0

    def test_double_start_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag_and_reset(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0

    def test_timed_context_accumulates(self):
        store = {}
        with timed(store, "step"):
            time.sleep(0.005)
        with timed(store, "step"):
            time.sleep(0.005)
        assert store["step"] >= 0.01


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.23456], ["bbbb", 7]],
            title="caption",
        )
        lines = text.splitlines()
        assert lines[0] == "caption"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "1.235" in text  # .4g formatting

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_bool_not_formatted_as_float(self):
        text = format_table(["flag"], [[True]])
        assert "True" in text

    def test_custom_float_format(self):
        text = format_table(["x"], [[0.5]], float_fmt=".1%")
        assert "50.0%" in text


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.5) == 2.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive("x", bad)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        for bad in (-0.01, 1.01, float("nan")):
            with pytest.raises(ValueError):
                check_probability("p", bad)

    def test_check_fraction(self):
        assert check_fraction("c", 0.15) == 0.15
        for bad in (0.0, 1.0, -0.5, float("nan")):
            with pytest.raises(ValueError):
                check_fraction("c", bad)

    def test_error_messages_name_the_argument(self):
        with pytest.raises(ValueError, match="restart"):
            check_fraction("restart", 0.0)
