"""Integration tests for the single-vote, multi-vote, and split-merge drivers.

The shared scenario: a small two-answer graph where the vote demands a
ranking flip, plus a larger helpdesk scenario where votes are produced
by a ground-truth oracle against a corrupted graph and optimization is
expected to improve Ω_avg.
"""

import numpy as np
import pytest

from repro.eval.harness import rerank_vote, vote_omega_avg
from repro.graph import AugmentedGraph, WeightedDiGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.optimize import (
    solve_multi_vote,
    solve_single_votes,
    solve_split_merge,
)
from repro.similarity import inverse_pdistance
from repro.votes import (
    GroundTruthOracle,
    Vote,
    VoteSet,
    generate_votes_from_oracle,
)


@pytest.fixture
def flip_aug():
    """a1 beats a2; one negative vote wants a2 on top."""
    kg = WeightedDiGraph.from_edges(
        [("x", "y", 0.7), ("x", "z", 0.2)], strict=False
    )
    aug = AugmentedGraph(kg)
    aug.add_query("q", {"x": 1})
    aug.add_answer("a1", {"y": 1})
    aug.add_answer("a2", {"z": 1})
    return aug


@pytest.fixture
def flip_vote():
    return Vote("q", ("a1", "a2"), "a2")


def helpdesk_scenario(noise=1.5, num_queries=14, num_answers=10, seed=0):
    """(corrupted graph, vote set, truth graph) for effectiveness tests."""
    kg, topics = helpdesk_graph(num_topics=4, entities_per_topic=8, seed=seed)
    entities = [e for members in topics.values() for e in members]
    noisy_kg = perturb_weights(kg, noise=noise, seed=seed + 1)

    def attach(base):
        aug = AugmentedGraph(base)
        rng = np.random.default_rng(seed + 42)
        for i in range(num_answers):
            picks = rng.choice(len(entities), size=3, replace=False)
            aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
        for i in range(num_queries):
            picks = rng.choice(len(entities), size=2, replace=False)
            aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
        return aug

    aug_truth = attach(kg)
    aug_noisy = attach(noisy_kg)
    oracle = GroundTruthOracle(aug_truth)
    votes = generate_votes_from_oracle(aug_noisy, oracle, k=6, seed=seed + 3)
    return aug_noisy, votes, aug_truth


class TestSingleVote:
    def test_flips_the_ranking(self, flip_aug, flip_vote):
        optimized, report = solve_single_votes(flip_aug, [flip_vote])
        assert report.num_solved == 1
        assert rerank_vote(optimized, flip_vote) == 1
        scores = inverse_pdistance(optimized.graph, "q", ["a1", "a2"])
        assert scores["a2"] > scores["a1"]

    def test_original_graph_untouched(self, flip_aug, flip_vote):
        before = flip_aug.kg_weight("x", "y")
        solve_single_votes(flip_aug, [flip_vote])
        assert flip_aug.kg_weight("x", "y") == before

    def test_in_place(self, flip_aug, flip_vote):
        result, _ = solve_single_votes(flip_aug, [flip_vote], in_place=True)
        assert result is flip_aug

    def test_positive_votes_ignored(self, flip_aug):
        positive = Vote("q", ("a1", "a2"), "a1")
        optimized, report = solve_single_votes(flip_aug, [positive])
        assert report.num_solved == 0
        assert optimized.kg_weight("x", "y") == flip_aug.kg_weight("x", "y")

    def test_normalization_preserves_out_mass(self, flip_aug, flip_vote):
        mass_before = flip_aug.graph.out_weight_sum("x") - 0.0
        optimized, _ = solve_single_votes(flip_aug, [flip_vote])
        kg_mass = sum(
            w for t, w in optimized.graph.successors("x").items()
            if optimized.is_kg_edge("x", t)
        )
        assert kg_mass == pytest.approx(0.9, abs=1e-6)  # 0.7 + 0.2

    def test_report_timings(self, flip_aug, flip_vote):
        _, report = solve_single_votes(flip_aug, [flip_vote])
        assert report.elapsed > 0
        assert report.solve_time > 0

    def test_unencodable_vote_skipped_gracefully(self):
        kg = WeightedDiGraph.from_edges([("x", "y", 0.5)], strict=False)
        kg.add_node("island")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"island": 1})
        vote = Vote("q", ("a1", "a2"), "a2")  # impossible
        optimized, report = solve_single_votes(aug, [vote])
        assert report.num_solved == 0
        assert report.outcomes[0].skipped_reason

    def test_greedy_order_processes_all_negatives(self):
        aug, votes, _ = helpdesk_scenario()
        _, report = solve_single_votes(aug, votes)
        assert len(report.outcomes) == votes.num_negative


class TestMultiVote:
    def test_flips_the_ranking(self, flip_aug, flip_vote):
        optimized, report = solve_multi_vote(flip_aug, [flip_vote])
        assert report.solution is not None
        assert report.num_violated_deviations == 0
        assert rerank_vote(optimized, flip_vote) == 1

    def test_positive_vote_keeps_ranking(self, flip_aug):
        positive = Vote("q", ("a1", "a2"), "a1")
        optimized, report = solve_multi_vote(flip_aug, [positive])
        scores = inverse_pdistance(optimized.graph, "q", ["a1", "a2"])
        assert scores["a1"] > scores["a2"]

    def test_conflicting_votes_partially_satisfied(self, flip_aug):
        """Two users demand opposite rankings for the same query."""
        v1 = Vote("q", ("a1", "a2"), "a2")
        v2 = Vote("q", ("a1", "a2"), "a1")
        optimized, report = solve_multi_vote(
            flip_aug, [v1, v2], feasibility_filter=False
        )
        # Exactly one of the two demands can win.
        assert report.num_violated_deviations >= 1
        scores = inverse_pdistance(optimized.graph, "q", ["a1", "a2"])
        assert scores["a1"] != scores["a2"]

    def test_feasibility_filter_discards_impossible(self):
        kg = WeightedDiGraph.from_edges([("x", "y", 0.5)], strict=False)
        kg.add_node("island")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"island": 1})
        impossible = Vote("q", ("a1", "a2"), "a2")
        optimized, report = solve_multi_vote(aug, [impossible])
        assert len(report.discarded_votes) == 1
        assert report.solution is None  # nothing left to solve

    def test_improves_omega_on_corrupted_graph(self):
        aug, votes, _ = helpdesk_scenario()
        optimized, report = solve_multi_vote(aug, votes)
        assert vote_omega_avg(optimized, votes) > 0.0

    def test_multi_beats_single_on_mixed_votes(self):
        """The Table IV/V headline: multi-vote ≥ single-vote on Ω_avg."""
        aug, votes, _ = helpdesk_scenario()
        multi, _ = solve_multi_vote(aug, votes)
        single, _ = solve_single_votes(aug, votes)
        assert vote_omega_avg(multi, votes) >= vote_omega_avg(single, votes) - 1e-9

    def test_report_accounts_time(self):
        aug, votes, _ = helpdesk_scenario(num_queries=6)
        _, report = solve_multi_vote(aug, votes)
        assert report.elapsed >= report.solve_time
        assert report.encode_time > 0

    def test_empty_votes_no_change(self, flip_aug):
        optimized, report = solve_multi_vote(flip_aug, [])
        assert report.solution is None
        assert optimized.kg_weight("x", "y") == pytest.approx(0.7)

    def test_lambda2_zero_keeps_graph_nearly_unchanged(self, flip_aug, flip_vote):
        """Without the satisfaction term there is no incentive to move."""
        optimized, report = solve_multi_vote(
            flip_aug, [flip_vote], lambda1=1.0, lambda2=0.0,
            feasibility_filter=False,
        )
        assert abs(optimized.kg_weight("x", "y") - 0.7) < 0.05


class TestSplitMerge:
    def test_matches_multi_vote_on_small_input(self):
        aug, votes, _ = helpdesk_scenario(num_queries=8)
        multi, _ = solve_multi_vote(aug, votes)
        merged, report = solve_split_merge(aug, votes)
        omega_multi = vote_omega_avg(multi, votes)
        omega_merged = vote_omega_avg(merged, votes)
        # The paper's finding: S-M is close to (occasionally above) basic.
        assert omega_merged >= omega_multi - 0.5

    def test_clusters_cover_all_votes(self):
        aug, votes, _ = helpdesk_scenario()
        _, report = solve_split_merge(aug, votes)
        members = sorted(i for cluster in report.clusters for i in cluster)
        assert members == list(range(len(votes)))

    def test_cluster_results_per_cluster(self):
        aug, votes, _ = helpdesk_scenario()
        _, report = solve_split_merge(aug, votes)
        assert len(report.cluster_results) == report.num_clusters
        assert report.solve_time_max <= report.solve_time_total + 1e-9

    def test_distributed_makespan_bounds(self):
        aug, votes, _ = helpdesk_scenario()
        _, report = solve_split_merge(aug, votes)
        one = report.distributed_makespan(num_workers=1)
        four = report.distributed_makespan(num_workers=4)
        assert four <= one + 1e-9
        assert four >= report.split_time + report.merge_time

    def test_empty_votes(self, flip_aug):
        optimized, report = solve_split_merge(flip_aug, [])
        assert report.num_clusters == 0
        assert optimized.kg_weight("x", "y") == pytest.approx(0.7)

    def test_single_vote_cluster(self, flip_aug, flip_vote):
        optimized, report = solve_split_merge(flip_aug, [flip_vote])
        assert report.num_clusters == 1
        assert rerank_vote(optimized, flip_vote) == 1

    def test_parallel_workers_agree_with_sequential(self):
        aug, votes, _ = helpdesk_scenario(num_queries=8)
        seq, _ = solve_split_merge(aug, votes, num_workers=1)
        par, _ = solve_split_merge(aug, votes, num_workers=2)
        for edge in seq.kg_edges():
            assert par.kg_weight(edge.head, edge.tail) == pytest.approx(
                edge.weight, abs=1e-6
            )
