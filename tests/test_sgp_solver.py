"""Unit tests for the SGP problem container and solvers."""

import numpy as np
import pytest

from repro.errors import SGPModelError, SGPSolverError
from repro.sgp import (
    SGPProblem,
    Signomial,
    SmoothObjective,
    solve_by_condensation,
    solve_sgp,
)
from repro.sgp.condensation import condense_posynomial, split_signomial


def distance_objective(x0):
    """Eq. 12: sum of squared deviations from x0, as a signomial."""
    objective = Signomial()
    for var, value in enumerate(x0):
        objective.add_term(1.0, {var: 2.0})
        objective.add_term(-2.0 * value, {var: 1.0})
        objective.add_term(value * value, {})
    return objective


def simple_problem():
    """Push x0 above x1 while staying close to the start point.

    Start at x = (0.2, 0.4); constraint x1 − x0 ≤ −0.05; objective
    ‖x − x0_start‖².  The optimum moves both weights toward each other:
    x* ≈ (0.325, 0.275).
    """
    problem = SGPProblem([0.2, 0.4], lower=0.01, upper=1.0)
    constraint = Signomial.variable(1) - Signomial.variable(0)
    problem.add_constraint(constraint, name="beat", margin=0.05)
    problem.set_objective(distance_objective([0.2, 0.4]))
    return problem


class TestSGPProblem:
    def test_basic_properties(self):
        problem = simple_problem()
        assert problem.num_vars == 2
        assert problem.num_constraints == 1

    def test_initial_point_clipped_into_bounds(self):
        problem = SGPProblem([0.0001, 2.0], lower=0.01, upper=1.0)
        assert problem.x0[0] == 0.01
        assert problem.x0[1] == 1.0

    def test_invalid_bounds(self):
        with pytest.raises(SGPModelError):
            SGPProblem([0.5], lower=0.0)
        with pytest.raises(SGPModelError):
            SGPProblem([0.5], lower=0.9, upper=0.1)

    def test_empty_initial_rejected(self):
        with pytest.raises(SGPModelError):
            SGPProblem([])

    def test_constraint_variable_out_of_range(self):
        problem = SGPProblem([0.5, 0.5])
        with pytest.raises(SGPModelError):
            problem.add_constraint(Signomial.variable(7))

    def test_negative_margin_rejected(self):
        problem = SGPProblem([0.5])
        with pytest.raises(SGPModelError):
            problem.add_constraint(Signomial.variable(0), margin=-0.1)

    def test_objective_required(self):
        problem = SGPProblem([0.5])
        with pytest.raises(SGPModelError):
            _ = problem.objective
        with pytest.raises(SGPModelError):
            solve_sgp(problem)

    def test_bad_objective_type(self):
        problem = SGPProblem([0.5])
        with pytest.raises(SGPModelError):
            problem.set_objective("not an objective")

    def test_constraint_values_and_satisfaction(self):
        problem = simple_problem()
        infeasible = np.array([0.2, 0.4])
        feasible = np.array([0.4, 0.2])
        assert problem.constraint_values(infeasible)[0] > 0
        assert problem.num_satisfied(infeasible) == 0
        assert problem.num_satisfied(feasible) == 1
        assert problem.is_feasible(feasible)
        assert not problem.is_feasible(infeasible)

    def test_is_feasible_checks_bounds(self):
        problem = simple_problem()
        out_of_box = np.array([1.5, 0.1])
        assert not problem.is_feasible(out_of_box)


class TestSmoothObjective:
    def test_from_signomial(self):
        sig = distance_objective([0.5])
        objective = SmoothObjective.from_signomial(sig, 1)
        value, grad = objective.value_and_grad(np.array([0.7]))
        assert value == pytest.approx(0.04)
        assert grad[0] == pytest.approx(2 * 0.2)

    def test_weighted_sum(self):
        a = SmoothObjective(lambda x: (float(x[0]), np.array([1.0])))
        b = SmoothObjective(lambda x: (float(x[0] ** 2), np.array([2.0 * x[0]])))
        combo = SmoothObjective.weighted_sum([(2.0, a), (0.5, b)])
        value, grad = combo.value_and_grad(np.array([3.0]))
        assert value == pytest.approx(2 * 3 + 0.5 * 9)
        assert grad[0] == pytest.approx(2 * 1 + 0.5 * 6)

    def test_weighted_sum_empty_rejected(self):
        with pytest.raises(SGPModelError):
            SmoothObjective.weighted_sum([])


@pytest.mark.parametrize("method", ["slsqp", "trust-constr", "penalty"])
class TestSolvers:
    def test_satisfies_constraint(self, method):
        problem = simple_problem()
        solution = solve_sgp(problem, method=method)
        assert solution.all_satisfied
        assert solution.x[0] - solution.x[1] >= 0.05 - 1e-6

    def test_moves_minimally(self, method):
        problem = simple_problem()
        solution = solve_sgp(problem, method=method)
        # The optimum splits the 0.25 gap symmetrically.
        assert solution.x[0] == pytest.approx(0.325, abs=0.01)
        assert solution.x[1] == pytest.approx(0.275, abs=0.01)
        assert solution.objective_value == pytest.approx(2 * 0.125**2, abs=1e-3)

    def test_respects_bounds(self, method):
        problem = SGPProblem([0.5], lower=0.3, upper=0.6)
        # Constraint pushes x down: x <= 0.1 is unreachable inside bounds.
        problem.add_constraint(Signomial.variable(0) - 0.1)
        problem.set_objective(distance_objective([0.5]))
        solution = solve_sgp(problem, method=method)
        assert 0.3 - 1e-9 <= solution.x[0] <= 0.6 + 1e-9

    def test_no_constraints(self, method):
        problem = SGPProblem([0.4, 0.6])
        problem.set_objective(distance_objective([0.4, 0.6]))
        solution = solve_sgp(problem, method=method)
        assert solution.x == pytest.approx(np.array([0.4, 0.6]), abs=1e-6)
        assert solution.objective_value == pytest.approx(0.0, abs=1e-9)


class TestSolverEdgeCases:
    def test_unknown_method(self):
        problem = simple_problem()
        with pytest.raises(SGPSolverError):
            solve_sgp(problem, method="gradient-descent")

    def test_solution_reports_method_and_time(self):
        solution = solve_sgp(simple_problem())
        assert solution.method in {"slsqp", "slsqp+penalty"}
        assert solution.elapsed >= 0.0

    def test_conflicting_constraints_partial_satisfaction(self):
        """x0 > x1 and x1 > x0 cannot both hold; the solver reports it."""
        problem = SGPProblem([0.5, 0.5], lower=0.01, upper=1.0)
        problem.add_constraint(
            Signomial.variable(1) - Signomial.variable(0), margin=0.05
        )
        problem.add_constraint(
            Signomial.variable(0) - Signomial.variable(1), margin=0.05
        )
        problem.set_objective(distance_objective([0.5, 0.5]))
        solution = solve_sgp(problem)
        assert solution.num_satisfied < 2


class TestCondensation:
    def test_split_signomial(self):
        sig = Signomial.from_terms([(2.0, {0: 1}), (-3.0, {1: 2}), (1.0, {})])
        p, q = split_signomial(sig)
        assert p.is_posynomial() and q.is_posynomial()
        x = {0: 0.5, 1: 0.5}
        assert p.evaluate(x) - q.evaluate(x) == pytest.approx(sig.evaluate(x))

    def test_condense_touches_at_point(self):
        posy = Signomial.from_terms([(1.0, {0: 1}), (2.0, {0: 2})])
        x = np.array([0.7])
        condensed = condense_posynomial(posy, x)
        assert condensed.num_terms == 1
        assert condensed.evaluate(x) == pytest.approx(posy.evaluate(x))

    def test_condense_is_lower_bound(self):
        posy = Signomial.from_terms([(1.0, {0: 1}), (2.0, {0: 2})])
        condensed = condense_posynomial(posy, np.array([0.7]))
        for value in (0.1, 0.3, 0.9, 1.5):
            point = np.array([value])
            assert condensed.evaluate(point) <= posy.evaluate(point) + 1e-12

    def test_condense_empty_rejected(self):
        with pytest.raises(SGPSolverError):
            condense_posynomial(Signomial(), np.array([1.0]))

    def test_solves_simple_problem(self):
        solution = solve_by_condensation(simple_problem())
        assert solution.all_satisfied
        assert solution.x[0] - solution.x[1] >= 0.05 - 1e-6
        # Condensation is conservative but should land near the optimum.
        assert solution.objective_value <= 0.1

    def test_requires_signomial_objective(self):
        problem = simple_problem()
        problem.set_objective(
            SmoothObjective(lambda x: (float(x.sum()), np.ones_like(x)))
        )
        with pytest.raises(SGPSolverError):
            solve_by_condensation(problem)

    def test_agrees_with_slsqp(self):
        by_condensation = solve_by_condensation(simple_problem())
        by_slsqp = solve_sgp(simple_problem(), method="slsqp")
        assert by_condensation.x == pytest.approx(by_slsqp.x, abs=0.02)
