"""The AST call-graph builder: edges resolve through self/typed/import
paths, CHA stays suppressed for builtin-container method names, and
``@serve_path`` reachability honors ``@serve_exempt`` barriers.
"""

import textwrap

import pytest

from repro.devtools.callgraph import (
    CHA_SUPPRESSED,
    build_call_graph,
)


@pytest.fixture()
def pkg(tmp_path):
    """A small synthetic package exercising every resolution path."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "store.py").write_text(
        textwrap.dedent(
            """
            import os


            def helper(x):
                return x + 1


            class Store:
                def __init__(self):
                    self.items = []

                def put(self, value):
                    self.items.append(value)
                    return helper(value)

                def persist(self, fh):
                    fh.flush()
                    os.fsync(fh.fileno())

                def append(self, value):
                    # same name as list.append: CHA must not link
                    # untyped x.append(...) calls here
                    self.put(value)
            """
        )
    )
    (root / "serve.py").write_text(
        textwrap.dedent(
            """
            import time

            from pkg.store import Store, helper


            def serve_path(fn):
                return fn


            def serve_exempt(reason):
                def deco(fn):
                    return fn
                return deco


            @serve_exempt("diagnostics dump is an accepted cost")
            def diagnostics():
                with open("/tmp/x", "w") as fh:
                    fh.write("x")


            def slow():
                time.sleep(1)


            @serve_path
            def answer(q):
                s = Store()
                s.put(q)
                diagnostics()
                return helper(q)


            def untyped_append(x, value):
                x.append(value)
            """
        )
    )
    return build_call_graph([root])


class TestIndexing:
    def test_modules_and_functions_indexed(self, pkg):
        assert set(pkg.modules) == {"pkg", "pkg.store", "pkg.serve"}
        assert "pkg.store.Store.put" in pkg.functions
        assert "pkg.store.helper" in pkg.functions
        assert "pkg.serve.answer" in pkg.functions

    def test_methods_by_name(self, pkg):
        assert pkg.methods_by_name["put"] == ["pkg.store.Store.put"]

    def test_module_import_edges(self, pkg):
        assert "pkg.store" in pkg.module_imports["pkg.serve"]

    def test_syntax_error_file_skipped(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        graph = build_call_graph([tmp_path])
        assert graph.functions == {}


class TestResolution:
    def edges(self, pkg, qualname):
        return {site.target for site in pkg.callees(qualname)}

    def test_self_method_edge(self, pkg):
        assert "pkg.store.Store.put" in self.edges(pkg, "pkg.store.Store.append")

    def test_bare_function_edge(self, pkg):
        assert "pkg.store.helper" in self.edges(pkg, "pkg.store.Store.put")

    def test_imported_function_edge(self, pkg):
        assert "pkg.store.helper" in self.edges(pkg, "pkg.serve.answer")

    def test_typed_receiver_edge(self, pkg):
        # s = Store(); s.put(q) resolves through local type inference.
        sites = {
            site.target: site.via for site in pkg.callees("pkg.serve.answer")
        }
        assert sites.get("pkg.store.Store.put") == "typed"

    def test_external_call_target(self, pkg):
        assert "ext:os.fsync" in self.edges(pkg, "pkg.store.Store.persist")

    def test_external_time_sleep(self, pkg):
        assert "ext:time.sleep" in self.edges(pkg, "pkg.serve.slow")

    def test_open_write_mode_classified(self, pkg):
        assert "ext:open[w]" in self.edges(pkg, "pkg.serve.diagnostics")


class TestChaSuppression:
    def test_container_method_names_suppressed(self):
        assert {"append", "add", "get", "update", "pop", "write"} <= (
            CHA_SUPPRESSED
        )

    def test_untyped_append_does_not_link_to_store(self, pkg):
        # Store.append exists, but x.append on an unknown receiver must
        # not produce a CHA edge — list.append is the likely meaning.
        targets = {
            site.target for site in pkg.callees("pkg.serve.untyped_append")
        }
        assert "pkg.store.Store.append" not in targets

    def test_typed_receiver_still_resolves_suppressed_name(self, pkg):
        # self.items.append inside Store.put: also no false edge.
        targets = {site.target for site in pkg.callees("pkg.store.Store.put")}
        assert "pkg.store.Store.append" not in targets


class TestReachability:
    def test_serve_roots_detected(self, pkg):
        assert [fn.qualname for fn in pkg.serve_roots()] == [
            "pkg.serve.answer"
        ]

    def test_reachable_closure(self, pkg):
        reach = pkg.reachable(["pkg.serve.answer"])
        assert "pkg.store.Store.put" in reach.functions
        assert "pkg.store.helper" in reach.functions
        # slow() is never called from the root
        assert "pkg.serve.slow" not in reach

    def test_serve_exempt_is_barrier(self, pkg):
        reach = pkg.reachable(["pkg.serve.answer"])
        assert reach.barriers == {
            "pkg.serve.diagnostics": "diagnostics dump is an accepted cost"
        }
        # barrier excluded from .functions, so its open[w] never counts
        assert "pkg.serve.diagnostics" not in reach.functions

    def test_path_and_render(self, pkg):
        reach = pkg.reachable(["pkg.serve.answer"])
        assert reach.path("pkg.store.helper")[0] == "pkg.serve.answer"
        assert reach.path("pkg.store.helper")[-1] == "pkg.store.helper"
        rendered = reach.render_path("pkg.store.Store.put")
        assert rendered.startswith("pkg.serve.answer")
        assert " -> " in rendered

    def test_external_calls_exclude_barriers(self, pkg):
        reach = pkg.reachable(["pkg.serve.answer"])
        externals = {
            site.target for _, site in pkg.external_calls(reach)
        }
        assert "ext:open[w]" not in externals

    def test_root_is_never_its_own_barrier(self, pkg):
        # A @serve_exempt function used AS a root is still traversed.
        reach = pkg.reachable(["pkg.serve.diagnostics"])
        assert "pkg.serve.diagnostics" in reach.functions


class TestToJson:
    def test_shape_is_stable_and_serializable(self, pkg):
        import json

        payload = pkg.to_json()
        assert set(payload) >= {"modules", "functions", "module_imports"}
        assert "pkg.serve.answer" in payload["functions"]
        json.dumps(payload)  # must not raise


class TestRealTree:
    def test_src_builds_and_finds_serve_roots(self):
        graph = build_call_graph(["src"])
        roots = {fn.qualname for fn in graph.serve_roots()}
        assert "repro.qa.system.QASystem.ask" in roots

    def test_ask_cannot_reach_fsync_or_snapshot_writes(self):
        # The acceptance property: the serve path is provably pure.
        graph = build_call_graph(["src"])
        reach = graph.reachable(["repro.qa.system.QASystem.ask"])
        externals = {site.target for _, site in graph.external_calls(reach)}
        assert "ext:os.fsync" not in externals
        assert "ext:open[w]" not in externals
        assert "ext:os.replace" not in externals
