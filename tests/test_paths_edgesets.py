"""Unit tests for vote edge sets, cross-checked against enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import AugmentedGraph, WeightedDiGraph, random_digraph
from repro.paths import enumerate_walks, reachable_edge_set, vote_edge_set


def edges_from_enumeration(graph, source, target, max_length):
    """Ground truth: union of consecutive pairs over all enumerated walks."""
    walks = enumerate_walks(graph, source, target, max_length)[target]
    return {pair for walk in walks for pair in zip(walk, walk[1:])}


class TestReachableEdgeSet:
    def test_matches_enumeration_fig1(self, fig1_aug):
        for length in (2, 3, 4, 5):
            expected = edges_from_enumeration(fig1_aug.graph, "q", "a3", length)
            assert reachable_edge_set(fig1_aug.graph, "q", "a3", length) == expected

    def test_unreachable_is_empty(self, fig1_aug):
        fig1_aug.graph.add_node("island")
        assert reachable_edge_set(fig1_aug.graph, "q", "island", 5) == set()

    def test_budget_too_small_is_empty(self, fig1_aug):
        # Shortest q -> a3 walk has 4 edges.
        assert reachable_edge_set(fig1_aug.graph, "q", "a3", 3) == set()

    def test_bad_length(self, fig1_aug):
        with pytest.raises(ValueError):
            reachable_edge_set(fig1_aug.graph, "q", "a3", 0)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        max_length=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_matches_enumeration(self, seed, max_length):
        """BFS-distance edge sets equal enumeration-derived edge sets."""
        graph = random_digraph(10, 2.0, seed=seed)
        graph.strict = False
        nodes = list(graph.nodes())
        source, target = nodes[0], nodes[-1]
        expected = edges_from_enumeration(graph, source, target, max_length)
        assert reachable_edge_set(graph, source, target, max_length) == expected


class TestVoteEdgeSet:
    def test_union_over_answers(self, fig1_aug):
        graph = fig1_aug.graph
        single = reachable_edge_set(graph, "q", "a3", 5)
        combined = vote_edge_set(graph, "q", ["a3"], 5)
        assert combined == single

    def test_multiple_answers(self):
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 0.5), ("x", "z", 0.5)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"z": 1})
        edges = vote_edge_set(aug.graph, "q", ["a1", "a2"], 3)
        assert ("x", "y") in edges and ("y", "a1") in edges
        assert ("x", "z") in edges and ("z", "a2") in edges

    def test_disjoint_votes_have_disjoint_edge_sets(self):
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 0.5), ("u", "v", 0.5)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q1", {"x": 1})
        aug.add_query("q2", {"u": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"v": 1})
        e1 = vote_edge_set(aug.graph, "q1", ["a1"], 4)
        e2 = vote_edge_set(aug.graph, "q2", ["a2"], 4)
        assert e1 and e2
        assert not (e1 & e2)
