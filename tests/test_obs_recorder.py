"""Tests for the flight recorder (repro/obs/recorder.py).

Covers the ring-buffer cost model (bounded, drop-counted), the trigger
seams (slow ops, contract violations), dump rate limiting, and the
bundle format — every file a post-mortem needs, parseable without the
live process.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.devtools.contracts import ContractViolation, check_weight_bounds
from repro.obs import MetricsRegistry, trace_span
from repro.obs.recorder import (
    BUNDLE_FILES,
    BUNDLE_SCHEMA_VERSION,
    FlightRecorder,
    active_recorder,
    arm_recorder,
    disarm_recorder,
    record_violation,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def disarmed():
    """Run a test with no process-wide recorder; restore the prior one."""
    from repro.obs import recorder as mod

    previous = disarm_recorder()
    yield
    mod._active = previous


def make_recorder(tmp_path, registry, **kwargs):
    kwargs.setdefault("min_dump_interval", 0.0)
    return FlightRecorder(tmp_path / "flight", registry=registry, **kwargs)


class TestRing:
    def test_bounded_with_drop_accounting(self, tmp_path, registry):
        rec = make_recorder(tmp_path, registry, capacity=3)
        for i in range(5):
            rec.record("qa.ask", i=i)
        events = rec.events()
        assert [e.attrs["i"] for e in events] == [2, 3, 4]  # oldest evicted
        assert registry.counter("obs_recorder_events_total").value == 5
        assert registry.counter("obs_recorder_dropped_total").value == 2

    def test_capacity_must_be_positive(self, tmp_path, registry):
        with pytest.raises(ValueError):
            make_recorder(tmp_path, registry, capacity=0)

    def test_event_to_dict_flattens_attrs(self, tmp_path, registry):
        rec = make_recorder(tmp_path, registry)
        rec.record("engine.serve", cache="hit", epoch=3)
        (event,) = rec.events()
        d = event.to_dict()
        assert d["kind"] == "engine.serve"
        assert d["cache"] == "hit" and d["epoch"] == 3
        assert isinstance(d["t"], float)


class TestTimedAndTriggers:
    def test_record_timed_attaches_latency(self, tmp_path, registry):
        rec = make_recorder(tmp_path, registry)
        rec.record_timed("qa.ask", 0.012, question_id="q1")
        (event,) = rec.events()
        assert event.attrs["latency"] == pytest.approx(0.012)

    def test_slow_op_triggers_dump(self, tmp_path, registry):
        rec = make_recorder(
            tmp_path, registry, slow_thresholds={"qa.ask": 0.001}
        )
        rec.record_timed("qa.ask", 0.5)
        bundles = list((tmp_path / "flight").glob("flight-*-slow_op"))
        assert len(bundles) == 1

    def test_fast_op_does_not_trigger(self, tmp_path, registry):
        rec = make_recorder(
            tmp_path, registry, slow_thresholds={"qa.ask": 1.0}
        )
        rec.record_timed("qa.ask", 0.01)
        assert not (tmp_path / "flight").exists()

    def test_unthresholded_kind_never_self_triggers(self, tmp_path, registry):
        rec = make_recorder(tmp_path, registry, slow_thresholds={})
        rec.record_timed("qa.ask", 1e6)
        assert not (tmp_path / "flight").exists()

    def test_rate_limit_suppresses_back_to_back_dumps(self, tmp_path, registry):
        rec = FlightRecorder(
            tmp_path / "flight", registry=registry, min_dump_interval=3600.0
        )
        first = rec.trigger("slo_breach")
        second = rec.trigger("slo_breach")
        assert first is not None
        assert second is None
        assert registry.counter("obs_recorder_dumps_total").value == 1

    def test_max_dumps_cap(self, tmp_path, registry):
        rec = make_recorder(tmp_path, registry, max_dumps=2)
        assert rec.trigger("a") is not None
        assert rec.trigger("b") is not None
        assert rec.trigger("c") is None
        assert registry.counter("obs_recorder_dumps_total").value == 2

    def test_dump_bypasses_limits(self, tmp_path, registry):
        rec = FlightRecorder(
            tmp_path / "flight",
            registry=registry,
            min_dump_interval=3600.0,
            max_dumps=1,
        )
        assert rec.dump().is_dir()
        assert rec.dump().is_dir()  # no rate limit, no cap

    def test_reason_is_sanitized_in_dir_name(self, tmp_path, registry):
        rec = make_recorder(tmp_path, registry)
        bundle = rec.dump(reason="weird/../reason !")
        assert "/.." not in bundle.name
        assert bundle.name.startswith("flight-001-")


class TestBundleFormat:
    def test_bundle_is_complete_and_parseable(self, tmp_path, registry):
        registry.counter("qa_asks_total").inc(3)
        rec = make_recorder(tmp_path, registry)
        rec.record("qa.ask", question_id="q0")
        rec.record_timed("engine.serve", 0.004, cache="hit")
        with trace_span("qa.ask"):
            pass
        bundle = rec.dump(reason="manual", detail="test dump")

        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert manifest["schema_version"] == BUNDLE_SCHEMA_VERSION
        assert manifest["reason"] == "manual"
        assert manifest["detail"] == "test dump"
        assert manifest["num_events"] == 2
        assert manifest["files"] == list(BUNDLE_FILES)
        for name in BUNDLE_FILES:
            assert (bundle / name).is_file()

        events = [
            json.loads(line)
            for line in (bundle / "events.jsonl").read_text().splitlines()
        ]
        assert [e["kind"] for e in events] == ["qa.ask", "engine.serve"]
        assert events[1]["latency"] == pytest.approx(0.004)

        metrics = json.loads((bundle / "metrics.json").read_text())
        assert metrics["qa_asks_total"] == 3

    def test_non_json_attrs_fall_back_to_repr(self, tmp_path, registry):
        rec = make_recorder(tmp_path, registry)
        rec.record("qa.ask", payload=object())
        bundle = rec.dump()
        (event,) = [
            json.loads(line)
            for line in (bundle / "events.jsonl").read_text().splitlines()
        ]
        assert event["payload"].startswith("<object object")


class TestArming:
    def test_arm_and_disarm_roundtrip(self, tmp_path, registry, disarmed):
        assert active_recorder() is None
        rec = arm_recorder(tmp_path / "flight", registry=registry)
        assert active_recorder() is rec
        assert disarm_recorder() is rec
        assert active_recorder() is None

    def test_rearming_replaces(self, tmp_path, registry, disarmed):
        first = arm_recorder(tmp_path / "a", registry=registry)
        second = arm_recorder(tmp_path / "b", registry=registry)
        assert first is not second
        assert active_recorder() is second

    def test_env_variable_arms_on_import(self, tmp_path):
        env = dict(os.environ, REPRO_FLIGHT_DIR=str(tmp_path / "flight"))
        env["PYTHONPATH"] = "src"
        code = (
            "from repro.obs.recorder import active_recorder\n"
            "rec = active_recorder()\n"
            "assert rec is not None, 'env arming failed'\n"
            "print(rec.dump_dir)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            cwd=os.getcwd(),
        )
        assert out.returncode == 0, out.stderr
        assert str(tmp_path / "flight") in out.stdout


class TestViolationHook:
    def test_record_violation_is_noop_when_disarmed(self, disarmed):
        record_violation("seam", "message")  # must not raise

    def test_record_violation_records_and_dumps(
        self, tmp_path, registry, disarmed
    ):
        arm_recorder(
            tmp_path / "flight", registry=registry, min_dump_interval=0.0
        )
        record_violation("delta.revalidate", "scores diverged")
        rec = active_recorder()
        (event,) = rec.events()
        assert event.kind == "contract.violation"
        assert event.attrs["seam"] == "delta.revalidate"
        bundles = list((tmp_path / "flight").glob("flight-*-contract_violation"))
        assert len(bundles) == 1

    def test_contract_violation_seam_fires_recorder(
        self, tmp_path, registry, disarmed
    ):
        # The suite runs contracts-armed (tests/conftest.py), so a bad
        # weight vector raises — and the recorder hook must have fired
        # *before* the raise, capturing the ring at violation time.
        arm_recorder(
            tmp_path / "flight", registry=registry, min_dump_interval=0.0
        )
        with pytest.raises(ContractViolation):
            check_weight_bounds(np.array([5.0]), 0.1, 1.0, seam="test-seam")
        rec = active_recorder()
        kinds = [e.kind for e in rec.events()]
        assert "contract.violation" in kinds
        bundles = list((tmp_path / "flight").glob("flight-*-contract_violation"))
        assert len(bundles) == 1
        manifest = json.loads((bundles[0] / "MANIFEST.json").read_text())
        assert "test-seam" in manifest["detail"]
