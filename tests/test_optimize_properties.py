"""Property-based tests over the whole encode→solve→apply pipeline.

Hypothesis drives random small augmented graphs and random votes through
the optimizer and checks the invariants that must hold for *every*
input, not just the curated fixtures:

- the encoded constraint value at the initial point equals the scaled
  numeric similarity difference (the symbolic/numeric contract);
- solving keeps every edge weight inside its box bounds and every
  out-weight positive;
- a vote that is already satisfied (positive vote) never triggers a
  weight change when it is the only vote and λ2-pressure has nothing to
  fix;
- Ω_avg after optimization is never driven below the no-op baseline by
  more than a rank (the optimizer must not actively vandalize).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SGPModelError
from repro.graph import AugmentedGraph, random_digraph
from repro.optimize import solve_multi_vote
from repro.optimize.encoder import encode_votes
from repro.eval.harness import vote_omega_avg
from repro.serving import SimilarityParams
from repro.similarity import inverse_pdistance, rank_answers
from repro.votes import Vote


def random_workload(seed, *, num_answers=4, num_queries=2, n=12):
    """A random augmented graph plus votes derived from real rankings."""
    rng = np.random.default_rng(seed)
    kg = random_digraph(n, 2.5, seed=seed, out_mass=0.9)
    aug = AugmentedGraph(kg)
    labels = sorted(kg.nodes())
    for a in range(num_answers):
        picks = rng.choice(len(labels), size=2, replace=False)
        aug.add_answer(f"ans{a}", {labels[int(i)]: 1 for i in picks})
    for q in range(num_queries):
        picks = rng.choice(len(labels), size=2, replace=False)
        aug.add_query(f"qry{q}", {labels[int(i)]: 1 for i in picks})

    votes = []
    for q in range(num_queries):
        ranked = rank_answers(aug, f"qry{q}", params=SimilarityParams(k=num_answers))
        answers = tuple(a for a, _ in ranked)
        if len(answers) < 2:
            continue
        best = answers[int(rng.integers(0, len(answers)))]
        votes.append(Vote(f"qry{q}", answers, best))
    return aug, votes


class TestEncoderContract:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_constraint_values_match_numeric(self, seed):
        """Every encoded constraint's value at x0 equals the scaled
        numeric similarity difference — for arbitrary graphs/votes."""
        aug, votes = random_workload(seed)
        if not votes:
            return
        try:
            encoded = encode_votes(
                aug, votes, use_deviations=False, margin=0.0
            )
        except SGPModelError:
            return  # nothing adjustable: a legal degenerate case
        values = encoded.problem.constraint_values(encoded.problem.x0)
        for value, vote_idx, vote in zip(
            values, encoded.constraint_votes,
            (encoded.votes[i] for i in encoded.constraint_votes),
        ):
            scores = inverse_pdistance(
                aug.graph, vote.query, vote.ranked_answers
            )
            best = scores[vote.best_answer]
            if best <= 0:
                continue
            rivals = [
                (scores[a] - best) / best for a in vote.others()
            ]
            # The constraint's value must be one of the rival gaps.
            assert any(value == pytest.approx(r, rel=1e-6, abs=1e-9)
                       for r in rivals)


class TestSolvedGraphInvariants:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_weights_stay_legal(self, seed):
        aug, votes = random_workload(seed)
        if not votes:
            return
        optimized, _ = solve_multi_vote(
            aug, votes, feasibility_filter=False
        )
        for edge in optimized.kg_edges():
            assert 0.0 < edge.weight <= 1.0 + 1e-9

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_omega_never_collapses(self, seed):
        """Optimization must not leave the vote set clearly worse off."""
        aug, votes = random_workload(seed)
        if not votes:
            return
        optimized, _ = solve_multi_vote(
            aug, votes, feasibility_filter=False
        )
        assert vote_omega_avg(optimized, votes) >= -1.0

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_lone_positive_vote_changes_nothing_needed(self, seed):
        """A single already-satisfied vote: rankings stay satisfied."""
        aug, votes = random_workload(seed)
        positives = [v for v in votes if v.is_positive]
        if not positives:
            return
        vote = positives[0]
        optimized, _ = solve_multi_vote(
            aug, [vote], feasibility_filter=False
        )
        scores = inverse_pdistance(
            optimized.graph, vote.query, vote.ranked_answers
        )
        best = scores[vote.best_answer]
        assert all(best >= scores[a] - 1e-12 for a in vote.others())
