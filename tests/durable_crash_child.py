"""Child process for the kill-mid-flush crash test (not a test module).

Streams the shared scenario's votes into a durable
:class:`~repro.optimize.online.OnlineOptimizer` and SIGKILLs itself in
the middle of a chosen flush — after the solver applied the batch but
*before* the checkpoint made it durable.  What survives on disk is
exactly what the WAL + earlier snapshots guarantee: every fsynced vote,
and the graph as of the last completed checkpoint.

Usage: ``python durable_crash_child.py WAL_DIR CRASH_AT_CHECKPOINT``
"""

import os
import signal
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from durable_scenario import BATCH_SIZE, build_scenario  # noqa: E402

from repro.optimize.online import OnlineOptimizer  # noqa: E402
from repro.persistence import DurableStore  # noqa: E402
from repro.votes.stream import CountPolicy  # noqa: E402


def main() -> None:
    wal_dir = sys.argv[1]
    crash_at = int(sys.argv[2])

    aug, votes = build_scenario()
    store = DurableStore(wal_dir)
    real_checkpoint = store.checkpoint
    calls = {"n": 0}

    def crashing_checkpoint(graph, last_applied_seq):
        calls["n"] += 1
        if calls["n"] == crash_at:
            # Die mid-flush, before this checkpoint persists anything.
            os.kill(os.getpid(), signal.SIGKILL)
        real_checkpoint(graph, last_applied_seq)

    store.checkpoint = crashing_checkpoint  # type: ignore[method-assign]

    online = OnlineOptimizer(aug, policy=CountPolicy(BATCH_SIZE), store=store)
    for vote in votes:
        online.submit(vote)
    # Only reached when crash_at exceeds the number of flushes.
    store.close()


if __name__ == "__main__":
    main()
