"""Unit + property tests for the NormalizeEdges step."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodeNotFoundError
from repro.graph import WeightedDiGraph, random_digraph
from repro.graph.normalize import normalize_edges, normalize_out_weights, out_weight_sums


@pytest.fixture
def graph():
    return WeightedDiGraph.from_edges(
        [("a", "b", 0.2), ("a", "c", 0.6), ("b", "c", 0.9)],
        strict=False,
    )


class TestNormalizeOutWeights:
    def test_normalizes_to_target(self, graph):
        normalize_out_weights(graph, target=1.0)
        assert graph.out_weight_sum("a") == pytest.approx(1.0)
        assert graph.out_weight_sum("b") == pytest.approx(1.0)

    def test_preserves_ratios(self, graph):
        normalize_out_weights(graph, target=1.0)
        assert graph.weight("a", "c") / graph.weight("a", "b") == pytest.approx(3.0)

    def test_selected_nodes_only(self, graph):
        normalize_out_weights(graph, nodes=["a"], target=1.0)
        assert graph.out_weight_sum("a") == pytest.approx(1.0)
        assert graph.out_weight_sum("b") == pytest.approx(0.9)

    def test_edge_filter(self, graph):
        # Only normalize a's edge to b; the edge to c is "fixed".
        normalize_out_weights(
            graph, nodes=["a"], target=0.4, edge_filter=lambda h, t: t == "b"
        )
        assert graph.weight("a", "b") == pytest.approx(0.4)
        assert graph.weight("a", "c") == pytest.approx(0.6)

    def test_sink_nodes_skipped(self, graph):
        normalize_out_weights(graph)  # c has no out-edges; must not raise
        assert graph.out_degree("c") == 0

    def test_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            normalize_out_weights(graph, nodes=["ghost"])

    def test_bad_target_raises(self, graph):
        with pytest.raises(ValueError):
            normalize_out_weights(graph, target=0.0)


class TestNormalizeEdges:
    def test_reference_sums_restored(self, graph):
        reference = out_weight_sums(graph)
        graph.set_weight("a", "b", 0.9)  # disturb the mass
        normalize_edges(graph, reference_sums=reference)
        assert graph.out_weight_sum("a") == pytest.approx(reference["a"])
        assert graph.out_weight_sum("b") == pytest.approx(reference["b"])

    def test_defaults_to_unit_mass(self, graph):
        normalize_edges(graph, nodes=["a"])
        assert graph.out_weight_sum("a") == pytest.approx(1.0)

    def test_out_weight_sums_with_filter(self, graph):
        sums = out_weight_sums(graph, edge_filter=lambda h, t: t != "c")
        assert sums == pytest.approx({"a": 0.2})

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_round_trip_mass(self, seed):
        """Perturb-then-normalize always restores recorded out-sums."""
        g = random_digraph(15, 2.0, seed=seed, out_mass=0.9)
        g.strict = False
        reference = out_weight_sums(g)
        for i, (h, t) in enumerate(list(g.edge_keys())):
            g.set_weight(h, t, 0.05 + (i % 7) * 0.1)
        normalize_edges(g, reference_sums=reference)
        for node, target in reference.items():
            assert g.out_weight_sum(node) == pytest.approx(target)
