"""Shared deterministic scenario for the durability/crash tests.

Imported both by the pytest process and by the kill-mid-flush child
subprocess (``durable_crash_child.py``), so the two sides agree on the
exact graph and vote stream without any file-based coordination.  Not
a test module.
"""

import numpy as np

from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.votes import GroundTruthOracle, generate_votes_from_oracle

#: CountPolicy batch size every durable test uses; recovery must be
#: configured identically for replay to reproduce batch boundaries.
BATCH_SIZE = 3


def build_scenario(seed=0, num_queries=8, num_answers=8):
    """A corrupted helpdesk graph plus an oracle-driven vote stream.

    Returns ``(deployed_aug, votes)``; fully seeded, so every process
    that calls this with the same arguments sees identical data.
    """
    kg, topics = helpdesk_graph(num_topics=3, entities_per_topic=6, seed=seed)
    entities = [e for members in topics.values() for e in members]
    noisy = perturb_weights(kg, noise=1.5, seed=seed + 1)

    def attach(base):
        aug = AugmentedGraph(base)
        rng = np.random.default_rng(seed + 2)
        for i in range(num_answers):
            picks = rng.choice(len(entities), size=3, replace=False)
            aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
        for i in range(num_queries):
            picks = rng.choice(len(entities), size=2, replace=False)
            aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
        return aug

    truth = attach(kg)
    deployed = attach(noisy)
    votes = generate_votes_from_oracle(
        deployed, GroundTruthOracle(truth), k=5, seed=seed + 3
    )
    return deployed, list(votes)


def kg_weights(aug):
    """``(head, tail) -> weight`` for every optimizable edge."""
    return {edge.key: edge.weight for edge in aug.kg_edges()}
