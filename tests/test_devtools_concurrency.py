"""The concurrency analyzer: R008-R011 each catch their seeded
violation on synthetic fixtures, the shipped tree is self-clean, and
the serve path provably cannot reach blocking I/O — verified both on
the real tree and by injecting an ``os.fsync`` and watching R010 fire.
"""

import shutil
import textwrap

import pytest

from repro.devtools.concurrency import (
    CONCURRENCY_RULES,
    analyze_paths,
    find_concurrency_violations,
)
from repro.utils.sync import SHARED_STATE, SharedState


def make_pkg(tmp_path, files):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    for name, source in files.items():
        (root / name).write_text(textwrap.dedent(source))
    return root


STATES = (
    SharedState(
        name="Store._items",
        owner="pkg.store",
        guard="lock:_lock",
        description="test state under a lock",
    ),
    SharedState(
        name="Store._cache",
        owner="pkg.store",
        guard="frozen",
        description="epoch-keyed frozen cache",
        rekey_apis=("__init__", "refresh"),
    ),
    SharedState(
        name="Store._count",
        owner="pkg.store",
        guard="owner:pkg.store",
        description="owner-confined counter",
        writers=("pkg.front:Front.bump",),
    ),
)


def rules_of(tmp_path, files, states=STATES):
    root = make_pkg(tmp_path, files)
    return [
        (v.rule, v.line)
        for v in find_concurrency_violations([root], shared_state=states)
    ]


STORE_HEADER = """
    import threading


    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []
            self._cache = {}
            self._count = 0
"""


# ----------------------------------------------------------------------
# R008: ownership and lock discipline
# ----------------------------------------------------------------------
class TestR008:
    def test_unlocked_write_fires(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def bad(self, v):
            self._items.append(v)
    """
        }
        assert [r for r, _ in rules_of(tmp_path, files)] == ["R008"]

    def test_locked_write_clean(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def good(self, v):
            with self._lock:
                self._items.append(v)
    """
        }
        assert rules_of(tmp_path, files) == []

    def test_constructor_store_is_exempt(self, tmp_path):
        # STORE_HEADER's __init__ assigns all three states bare — the
        # pre-publication exemption keeps that legal.
        assert rules_of(tmp_path, {"store.py": STORE_HEADER}) == []

    def test_cross_module_write_fires(self, tmp_path):
        files = {
            "store.py": STORE_HEADER,
            "other.py": """
    def poke(store, v):
        store._items.append(v)
    """,
        }
        assert [r for r, _ in rules_of(tmp_path, files)] == ["R008"]

    def test_declared_writer_is_allowed(self, tmp_path):
        files = {
            "store.py": STORE_HEADER,
            "front.py": """
    class Front:
        def bump(self, store):
            store._count += 1

        def smash(self, store):
            store._count = 0
    """,
        }
        found = rules_of(tmp_path, files)
        # bump is declared in writers; smash is not.
        assert [r for r, _ in found] == ["R008"]
        assert found[0][1] == 7  # the smash line

    def test_module_global_unlocked_write_fires(self, tmp_path):
        states = (
            SharedState(
                name="ring._buffer",
                owner="pkg.ring",
                guard="lock:_ring_lock",
                description="module-global ring",
                kind="module-global",
            ),
        )
        files = {
            "ring.py": """
    import threading

    _ring_lock = threading.Lock()
    _buffer = []


    def bad(item):
        _buffer.append(item)


    def good(item):
        with _ring_lock:
            _buffer.append(item)
    """
        }
        assert [
            r for r, _ in rules_of(tmp_path, files, states)
        ] == ["R008"]

    def test_local_shadow_of_global_name_clean(self, tmp_path):
        states = (
            SharedState(
                name="ring._buffer",
                owner="pkg.ring",
                guard="lock:_ring_lock",
                description="module-global ring",
                kind="module-global",
            ),
        )
        files = {
            "ring.py": """
    import threading

    _ring_lock = threading.Lock()
    _buffer = []


    def local_only():
        _buffer = []
        return _buffer
    """
        }
        assert rules_of(tmp_path, files, states) == []


# ----------------------------------------------------------------------
# R009: frozen escape analysis (the PR 5 cache-poison bug, statically)
# ----------------------------------------------------------------------
class TestR009:
    def test_writable_ndarray_store_fires(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def refresh(self, key, scores):
            # the poison bug: a writable buffer escapes into the cache
            self._cache[key] = scores
    """
        }
        assert [r for r, _ in rules_of(tmp_path, files)] == ["R009"]

    def test_frozen_store_clean(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def refresh(self, key, scores):
            scores.setflags(write=False)
            self._cache[key] = scores
    """
        }
        assert rules_of(tmp_path, files) == []

    def test_rekeying_frozen_value_clean(self, tmp_path):
        # Moving an already-frozen entry under a new key needs no
        # re-freeze: reads out of the frozen store stay frozen.
        files = {
            "store.py": STORE_HEADER
            + """
        def refresh(self, old, new):
            self._cache[new] = self._cache[old]
    """
        }
        assert rules_of(tmp_path, files) == []

    def test_alias_dict_store_fires(self, tmp_path):
        # Building a replacement dict that is later swapped in must
        # freeze every vector too.
        files = {
            "store.py": STORE_HEADER
            + """
        def refresh(self, entries):
            rebuilt = {}
            for key, vec in entries:
                rebuilt[key] = vec
            self._cache = rebuilt
    """
        }
        assert [r for r, _ in rules_of(tmp_path, files)] == ["R009"]


# ----------------------------------------------------------------------
# R010: serve-path purity
# ----------------------------------------------------------------------
SERVE_DECOS = """
    def serve_path(fn):
        return fn


    def serve_exempt(reason):
        def deco(fn):
            return fn
        return deco
"""


class TestR010:
    def test_blocking_fsync_on_serve_path_fires(self, tmp_path):
        files = {
            "serve.py": SERVE_DECOS
            + """

    import os


    def persist(fh):
        os.fsync(fh.fileno())


    @serve_path
    def answer(q, fh):
        persist(fh)
        return q
    """
        }
        found = rules_of(tmp_path, files, states=())
        assert [r for r, _ in found] == ["R010"]

    def test_violation_message_includes_call_chain(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "serve.py": textwrap.dedent(SERVE_DECOS)
                + textwrap.dedent(
                    """

    import time


    def nap():
        time.sleep(1)


    @serve_path
    def answer(q):
        nap()
        return q
    """
                )
            },
        )
        violations = find_concurrency_violations([root], shared_state=())
        assert len(violations) == 1
        assert "pkg.serve.answer -> pkg.serve.nap" in violations[0].message

    def test_serve_exempt_barrier_suppresses(self, tmp_path):
        files = {
            "serve.py": SERVE_DECOS
            + """

    import os


    @serve_exempt("accepted diagnostics cost")
    def dump(fh):
        os.fsync(fh.fileno())


    @serve_path
    def answer(q, fh):
        dump(fh)
        return q
    """
        }
        assert rules_of(tmp_path, files, states=()) == []

    def test_non_serve_safe_lock_acquisition_fires(self, tmp_path):
        states = (
            SharedState(
                name="Store._items",
                owner="pkg.serve",
                guard="lock:_big_lock",
                description="not serve-safe",
            ),
        )
        files = {
            "serve.py": SERVE_DECOS
            + """

    @serve_path
    def answer(self, q):
        with self._big_lock:
            return q
    """
        }
        assert [r for r, _ in rules_of(tmp_path, files, states)] == [
            "R010"
        ]

    def test_serve_safe_lock_acquisition_clean(self, tmp_path):
        states = (
            SharedState(
                name="Store._items",
                owner="pkg.serve",
                guard="lock:_big_lock",
                description="declared serve-safe",
                serve_safe=True,
            ),
        )
        files = {
            "serve.py": SERVE_DECOS
            + """

    @serve_path
    def answer(self, q):
        with self._big_lock:
            return q
    """
        }
        assert rules_of(tmp_path, files, states) == []


# ----------------------------------------------------------------------
# R011: cache re-key discipline
# ----------------------------------------------------------------------
class TestR011:
    def test_rekey_outside_allowlist_fires(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def sneaky(self, key, v):
            v.setflags(write=False)
            self._cache[key] = v
    """
        }
        assert [r for r, _ in rules_of(tmp_path, files)] == ["R011"]

    def test_rekey_in_declared_api_clean(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def refresh(self, key, v):
            v.setflags(write=False)
            self._cache[key] = v
    """
        }
        assert rules_of(tmp_path, files) == []

    def test_eviction_is_always_legal(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def evict(self, key):
            self._cache.pop(key, None)

        def drop_all(self):
            self._cache.clear()
    """
        }
        assert rules_of(tmp_path, files) == []


# ----------------------------------------------------------------------
# engine behaviors
# ----------------------------------------------------------------------
class TestEngine:
    def test_noqa_suppresses(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def bad(self, v):
            self._items.append(v)  # noqa: R008
    """
        }
        assert rules_of(tmp_path, files) == []

    def test_rules_filter(self, tmp_path):
        files = {
            "store.py": STORE_HEADER
            + """
        def bad(self, v):
            self._items.append(v)

        def sneaky(self, key, v):
            self._cache[key] = v
    """
        }
        root = make_pkg(tmp_path, files)
        only_r008 = find_concurrency_violations(
            [root], rules={"R008"}, shared_state=STATES
        )
        assert {v.rule for v in only_r008} == {"R008"}

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            analyze_paths(["does/not/exist"])

    def test_concurrency_rules_constant(self):
        assert CONCURRENCY_RULES == {"R008", "R009", "R010", "R011"}

    def test_report_render_and_json(self, tmp_path):
        import json

        root = make_pkg(tmp_path, {"store.py": STORE_HEADER})
        report = analyze_paths([root], shared_state=STATES)
        assert report.violations == []
        payload = report.to_json()
        json.dumps(payload)  # must be serializable
        assert {row["name"] for row in payload["inventory"]} == {
            s.name for s in STATES
        }
        rendered = report.render()
        assert "shared-state inventory" in rendered
        assert "Store._cache" in rendered


# ----------------------------------------------------------------------
# the gate itself: the shipped tree honors its own declarations
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_shipped_tree_is_clean(self):
        report = analyze_paths(["src"])
        assert report.violations == [], [
            f"{v.rule} {v.path}:{v.line} {v.message}"
            for v in report.violations
        ]

    def test_every_declared_state_sees_writes(self):
        # A declared state with zero observed write sites means the
        # declaration (or the matcher) has gone stale.
        report = analyze_paths(["src"])
        silent = [
            row["name"] for row in report.inventory if row["writes"] == 0
        ]
        assert silent == []

    def test_ask_is_a_serve_root_with_barrier_report(self):
        report = analyze_paths(["src"])
        assert "repro.qa.system.QASystem.ask" in report.serve["roots"]
        assert any(
            name.endswith("FlightRecorder.trigger")
            for name in report.serve["barriers"]
        )

    def test_injected_fsync_is_caught(self, tmp_path):
        # The negative control for the acceptance property: add one
        # os.fsync to the ranking path and R010 must fire.
        target = tmp_path / "repro"
        shutil.copytree("src/repro", target)
        ranked = target / "similarity" / "top_k.py"
        source = ranked.read_text()
        import ast

        fn = next(
            node
            for node in ast.walk(ast.parse(source))
            if isinstance(node, ast.FunctionDef)
            and node.name == "rank_answers"
        )
        lines = source.splitlines(keepends=True)
        lines.insert(
            fn.body[0].lineno - 1,
            "    import os as _os\n    _os.fsync(0)\n",
        )
        ranked.write_text("".join(lines))
        violations = find_concurrency_violations(
            [tmp_path], rules={"R010"}
        )
        assert any(
            v.rule == "R010" and "fsync" in v.message for v in violations
        ), violations


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCli:
    def test_analyze_src_is_clean(self, capsys):
        from repro.cli import main

        assert main(["analyze", "src"]) == 0
        out = capsys.readouterr().out
        assert "shared-state inventory" in out

    def test_analyze_json_format(self, capsys):
        import json

        from repro.cli import main

        assert main(["analyze", "src", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert payload["stats"]["functions"] > 0

    def test_analyze_output_file(self, tmp_path, capsys):
        import json

        from repro.cli import main

        report_path = tmp_path / "analysis.json"
        assert main(["analyze", "src", "--output", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["violations"] == []

    def test_analyze_unknown_rule_rejected(self, capsys):
        from repro.cli import main

        assert main(["analyze", "src", "--rules", "R099"]) != 0
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_runs_graph_rules(self, tmp_path, capsys):
        # lint with no rule filter now includes R008-R011 findings.
        from repro.cli import main

        pkg = make_pkg(
            tmp_path,
            {
                "serve.py": """
    import os


    def serve_path(fn):
        return fn


    @serve_path
    def answer(q):
        os.fsync(0)
        return q
    """
            },
        )
        assert main(["lint", str(pkg), "--rules", "R010"]) == 1
        out = capsys.readouterr().out
        assert "R010" in out


# ----------------------------------------------------------------------
# registry sanity
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registry_entries_validate(self):
        for state in SHARED_STATE:
            assert state.kind in ("attribute", "module-global")
            assert state.description

    def test_bad_guard_rejected(self):
        with pytest.raises(ValueError, match="guard"):
            SharedState(
                name="X._y", owner="pkg.x", guard="mutex", description="t"
            )

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SharedState(
                name="X._y",
                owner="pkg.x",
                guard="frozen",
                description="t",
                kind="thread-local",
            )
