"""The custom AST lint pass: every rule catches its seeded violation,
suppression and exemptions work, and the shipped source tree is clean.
"""

import textwrap

import pytest

from repro.devtools.lint import (
    RULES,
    LintViolation,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
)


def rules_of(source, **kwargs):
    return [v.rule for v in lint_source(textwrap.dedent(source), **kwargs)]


# ----------------------------------------------------------------------
# R001: CSR buffer mutation
# ----------------------------------------------------------------------
class TestR001:
    def test_subscript_assignment_fires(self):
        assert rules_of("matrix.data[3] = 0.5\n") == ["R001"]

    def test_aug_assignment_fires(self):
        assert rules_of("self._matrix.data[pos] *= 2.0\n") == ["R001"]

    def test_buffer_rebinding_fires(self):
        assert rules_of("m.indptr = new_indptr\n") == ["R001"]

    def test_indices_fires(self):
        assert rules_of("m.indices[0] = 7\n") == ["R001"]

    def test_unrelated_attribute_clean(self):
        assert rules_of("m.values[3] = 0.5\nself.data = {}\n") == []

    def test_engine_file_is_exempt(self):
        assert (
            rules_of(
                "m.data[3] = 0.5\n", path="src/repro/serving/engine.py"
            )
            == []
        )


# ----------------------------------------------------------------------
# R002: obs names must come from the catalog
# ----------------------------------------------------------------------
class TestR002:
    def test_unknown_span_fires(self):
        assert rules_of("with trace_span('qa.bogus'):\n    pass\n") == ["R002"]

    def test_known_span_clean(self):
        assert rules_of("with trace_span('qa.ask'):\n    pass\n") == []

    def test_unknown_counter_fires(self):
        assert rules_of("registry.counter('typo_total').inc()\n") == ["R002"]

    def test_known_counter_clean(self):
        assert rules_of("registry.counter('qa_asks_total').inc()\n") == []

    def test_unknown_histogram_fires(self):
        assert rules_of("r.histogram('wat_seconds').observe(1)\n") == ["R002"]

    def test_dynamic_name_not_flagged(self):
        # Only literal first arguments are checkable statically.
        assert rules_of("registry.counter(name).inc()\n") == []


# ----------------------------------------------------------------------
# R003: print in library code
# ----------------------------------------------------------------------
class TestR003:
    def test_print_fires(self):
        assert rules_of("print('debugging')\n") == ["R003"]

    def test_logging_clean(self):
        assert rules_of("import logging\nlogging.getLogger(__name__).info('x')\n") == []


# ----------------------------------------------------------------------
# R004: module-level / unseeded randomness
# ----------------------------------------------------------------------
class TestR004:
    def test_stdlib_random_import_fires(self):
        assert rules_of("import random\n") == ["R004"]

    def test_stdlib_random_from_import_fires(self):
        assert rules_of("from random import choice\n") == ["R004"]

    def test_legacy_global_state_fires(self):
        assert rules_of(
            """
            import numpy as np

            def f():
                return np.random.rand(3)
            """
        ) == ["R004"]

    def test_unseeded_default_rng_fires(self):
        assert rules_of(
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """
        ) == ["R004"]

    def test_module_level_rng_fires(self):
        assert rules_of(
            "import numpy as np\nRNG = np.random.default_rng(0)\n"
        ) == ["R004"]

    def test_seeded_rng_in_function_clean(self):
        assert rules_of(
            """
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed)
            """
        ) == []

    def test_from_import_unseeded_default_rng_fires(self):
        assert rules_of(
            """
            from numpy.random import default_rng

            def f():
                return default_rng()
            """
        ) == ["R004"]

    def test_from_import_seeded_default_rng_clean(self):
        assert rules_of(
            """
            from numpy.random import default_rng

            def f(seed):
                return default_rng(seed)
            """
        ) == []

    def test_from_import_aliased_unseeded_fires(self):
        assert rules_of(
            """
            from numpy.random import default_rng as mk

            def f():
                return mk()
            """
        ) == ["R004"]

    def test_generator_construction_fires_attribute_form(self):
        assert rules_of(
            """
            import numpy as np

            def f(bitgen):
                return np.random.Generator(bitgen)
            """
        ) == ["R004"]

    def test_generator_construction_fires_from_import_form(self):
        assert rules_of(
            """
            from numpy.random import Generator

            def f(bitgen):
                return Generator(bitgen)
            """
        ) == ["R004"]

    def test_generator_annotation_clean(self):
        # Type annotations mention Generator without constructing one.
        assert rules_of(
            """
            import numpy as np

            def f(rng: "np.random.Generator"):
                return rng
            """
        ) == []

    def test_rng_module_is_exempt(self):
        assert (
            rules_of("import random\n", path="src/repro/utils/rng.py") == []
        )


# ----------------------------------------------------------------------
# R005: raw time.time()
# ----------------------------------------------------------------------
class TestR005:
    def test_time_time_fires(self):
        assert rules_of(
            "import time\n\ndef f():\n    return time.time()\n"
        ) == ["R005"]

    def test_from_import_alias_fires(self):
        assert rules_of(
            "from time import time as now\n\ndef f():\n    return now()\n"
        ) == ["R005"]

    def test_perf_counter_clean(self):
        assert rules_of(
            "import time\n\ndef f():\n    return time.perf_counter()\n"
        ) == []

    def test_timing_module_is_exempt(self):
        assert (
            rules_of(
                "import time\n\ndef f():\n    return time.time()\n",
                path="src/repro/utils/timing.py",
            )
            == []
        )


# ----------------------------------------------------------------------
# R006: direct similarity-kernel calls outside similarity/
# ----------------------------------------------------------------------
class TestR006:
    def test_bare_kernel_call_fires(self):
        assert rules_of("scores = inverse_pdistance(g, q, targets)\n") == [
            "R006"
        ]

    def test_attribute_kernel_call_fires(self):
        assert rules_of(
            "import repro\n\nv = repro.ppr_vector(g, q)\n"
        ) == ["R006"]

    def test_batch_variant_fires(self):
        assert rules_of("inverse_pdistance_batch(g, qs, pool)\n") == ["R006"]

    def test_backend_resolution_clean(self):
        assert rules_of(
            """
            from repro.similarity.backend import resolve_backend

            def f(graph, query, targets, params):
                return resolve_backend(params).scores(
                    graph, query, targets, params=params
                )
            """
        ) == []

    def test_import_alone_clean(self):
        # Importing constants from the kernel module is fine; only
        # *calls* bypass the backend registry.
        assert rules_of(
            "from repro.similarity.inverse_pdistance import DEFAULT_MAX_LENGTH\n"
        ) == []

    def test_similarity_package_is_exempt(self):
        assert (
            rules_of(
                "inverse_pdistance(g, q, targets)\n",
                path="src/repro/similarity/backend.py",
            )
            == []
        )

    def test_relative_similarity_path_is_exempt(self):
        assert (
            rules_of(
                "ppr_scores = ppr_vector(g, q)\n",
                path="similarity/top_k.py",
            )
            == []
        )


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
class TestEngine:
    def test_noqa_bare_suppresses_everything(self):
        assert rules_of("print('x')  # noqa\n") == []

    def test_noqa_specific_rule_suppresses(self):
        assert rules_of("print('x')  # noqa: R003\n") == []

    def test_noqa_other_rule_does_not_suppress(self):
        assert rules_of("print('x')  # noqa: R001\n") == ["R003"]

    def test_rules_filter(self):
        source = "import random\nprint('x')\n"
        assert rules_of(source) == ["R004", "R003"] or rules_of(source) == [
            "R004",
            "R003",
        ]
        assert rules_of(source, rules={"R003"}) == ["R003"]

    def test_syntax_error_reported_not_raised(self):
        violations = lint_source("def broken(:\n")
        assert [v.rule for v in violations] == ["E999"]

    def test_violations_sorted_by_location(self):
        source = "print('b')\nimport random\n"
        violations = lint_source(source)
        assert [v.line for v in violations] == sorted(
            v.line for v in violations
        )

    def test_render_is_editor_clickable(self):
        violation = LintViolation("R003", "pkg/mod.py", 3, 0, "no print")
        assert violation.render() == "pkg/mod.py:3:0: R003 no print"

    def test_format_violations_clean(self):
        assert format_violations([]) == "lint: clean"

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["does/not/exist"])

    def test_lint_file_reads_disk(self, tmp_path):
        target = tmp_path / "sample.py"
        target.write_text("print('x')\n")
        assert [v.rule for v in lint_file(target)] == ["R003"]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("import random\n")
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        violations = lint_paths([tmp_path])
        assert [v.rule for v in violations] == ["R004"]

    def test_every_rule_has_a_description(self):
        assert set(RULES) == {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
            "R008", "R009", "R010", "R011",
        }
        assert all(RULES.values())

    def test_graph_rules_are_declared_rules(self):
        from repro.devtools.lint import GRAPH_RULES

        assert GRAPH_RULES == {"R008", "R009", "R010", "R011"}
        assert GRAPH_RULES <= set(RULES)

    def test_violations_to_json_shape(self):
        from repro.devtools.lint import violations_to_json

        payload = violations_to_json(
            [LintViolation("R003", "pkg/mod.py", 3, 0, "no print")]
        )
        assert payload["clean"] is False
        assert payload["count"] == 1
        assert payload["violations"][0] == {
            "rule": "R003",
            "path": "pkg/mod.py",
            "line": 3,
            "col": 0,
            "message": "no print",
        }
        assert violations_to_json([]) == {
            "clean": True,
            "count": 0,
            "violations": [],
        }


# ----------------------------------------------------------------------
# the gate itself
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_shipped_source_tree_is_clean(self):
        violations = lint_paths(["src"])
        assert violations == [], format_violations(violations)

    def test_obs_catalog_is_internally_consistent(self):
        from repro.obs.catalog import catalog_errors

        assert catalog_errors() == []

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["lint", "src"]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("print('x')\n")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "R003" in out

    def test_cli_lint_json_format(self, tmp_path, capsys):
        import json

        from repro.cli import main

        dirty = tmp_path / "dirty.py"
        dirty.write_text("print('x')\n")
        assert (
            main(["lint", str(dirty), "--rules", "R003", "--format", "json"])
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["violations"][0]["rule"] == "R003"
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert (
            main(["lint", str(clean), "--rules", "R003", "--format", "json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"clean": True, "count": 0, "violations": []}


# ----------------------------------------------------------------------
# R007: dead catalog entries (the inverse of R002)
# ----------------------------------------------------------------------
class TestR007:
    @staticmethod
    def _tree(tmp_path, source):
        (tmp_path / "mod.py").write_text(textwrap.dedent(source))
        return [tmp_path]

    def test_phantom_metric_fires(self, tmp_path):
        from repro.devtools.lint import find_dead_series

        paths = self._tree(
            tmp_path, 'registry.counter("qa_asks_total").inc()\n'
        )
        violations = find_dead_series(
            paths,
            metrics=["qa_asks_total", "phantom_series_total"],
            spans=[],
        )
        assert [v.rule for v in violations] == ["R007"]
        assert "phantom_series_total" in violations[0].message
        assert violations[0].path.endswith("catalog.py")

    def test_phantom_span_fires(self, tmp_path):
        from repro.devtools.lint import find_dead_series

        paths = self._tree(tmp_path, 'with trace_span("qa.ask"):\n    pass\n')
        violations = find_dead_series(
            paths, metrics=[], spans=["qa.ask", "ghost.span"]
        )
        assert [v.rule for v in violations] == ["R007"]
        assert "ghost.span" in violations[0].message

    def test_fully_emitted_catalog_is_clean(self, tmp_path):
        from repro.devtools.lint import find_dead_series

        paths = self._tree(
            tmp_path,
            '''
            with trace_span("qa.ask"):
                registry.counter("qa_asks_total").inc()
                registry.gauge("engine_cache_entries").set(1)
                registry.histogram("qa_ask_seconds").observe(0.1)
            ''',
        )
        assert find_dead_series(
            paths,
            metrics=["qa_asks_total", "engine_cache_entries", "qa_ask_seconds"],
            spans=["qa.ask"],
        ) == []

    def test_local_alias_idiom_counts_as_emitted(self, tmp_path):
        from repro.devtools.lint import collect_emitted_names

        paths = self._tree(
            tmp_path,
            '''
            counter = registry.counter
            counter("engine_serves_total", engine="0")
            ''',
        )
        metrics, spans = collect_emitted_names(paths)
        assert metrics == {"engine_serves_total"}
        assert spans == set()

    def test_dynamic_names_are_invisible(self, tmp_path):
        from repro.devtools.lint import collect_emitted_names

        paths = self._tree(
            tmp_path, 'registry.counter(f"made_{kind}_total").inc()\n'
        )
        metrics, _ = collect_emitted_names(paths)
        assert metrics == set()

    def test_shipped_catalog_has_no_dead_series(self):
        from repro.devtools.lint import find_dead_series

        violations = find_dead_series(["src"])
        assert violations == [], format_violations(violations)

    def test_cli_lint_runs_r007(self, tmp_path, capsys):
        from repro.cli import main

        # A clean file emits nothing, so every catalog entry is dead
        # from this tree's point of view — restricting to R007 must
        # fail loudly rather than report "clean".
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean), "--rules", "R007"]) == 1
        out = capsys.readouterr().out
        assert "R007" in out
        # And the shipped tree passes the same gate.
        assert main(["lint", "src", "--rules", "R007"]) == 0
