"""Unit + property tests for the similarity evaluators.

The central claims verified here:

- Theorem 1: the extended inverse P-distance converges to the PPR score
  as the pruning threshold L grows;
- the DP evaluator agrees with explicit walk enumeration;
- the Monte-Carlo simulator agrees with the exact evaluators within
  sampling error;
- the random-walk baseline produces the same scores as PPR (it is the
  same quantity, computed answer-by-answer).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError, EvaluationError, NodeNotFoundError
from repro.graph import AugmentedGraph, WeightedDiGraph, random_digraph
from repro.paths import enumerate_walks, walk_probability
from repro.serving import SimilarityParams
from repro.similarity import (
    inverse_pdistance,
    inverse_pdistance_single,
    monte_carlo_similarity,
    ppr_scores,
    ppr_vector,
    random_walk_similarity,
    rank_answers,
    rank_position,
    similarity_profile,
)
from repro.similarity.top_k import scores_to_ranked_list


def small_augmented(seed=3, n=12):
    kg = random_digraph(n, 2.0, seed=seed, out_mass=0.85)
    aug = AugmentedGraph(kg)
    labels = list(kg.nodes())
    aug.add_query("q", {labels[0]: 1, labels[1]: 1})
    aug.add_answer("a1", {labels[2]: 1})
    aug.add_answer("a2", {labels[3]: 2, labels[4]: 1})
    return aug


class TestPPR:
    def test_power_and_solve_agree(self):
        aug = small_augmented()
        by_power = ppr_vector(aug.graph, "q", method="power")
        by_solve = ppr_vector(aug.graph, "q", method="solve")
        for node in by_power:
            assert by_power[node] == pytest.approx(by_solve[node], abs=1e-9)

    def test_fixed_point_equation_holds(self):
        aug = small_augmented()
        c = 0.15
        pi = ppr_vector(aug.graph, "q", restart_prob=c, method="solve")
        graph = aug.graph
        for node in graph.nodes():
            incoming = sum(
                weight * pi[head] for head, weight in graph.predecessors(node).items()
            )
            restart = c if node == "q" else 0.0
            assert pi[node] == pytest.approx((1 - c) * incoming + restart, abs=1e-9)

    def test_mass_bounded_by_one(self):
        aug = small_augmented()
        pi = ppr_vector(aug.graph, "q")
        assert all(score >= 0 for score in pi.values())
        assert sum(pi.values()) <= 1.0 + 1e-9

    def test_query_gets_restart_mass(self):
        aug = small_augmented()
        pi = ppr_vector(aug.graph, "q", restart_prob=0.15)
        assert pi["q"] >= 0.15

    def test_scores_projection(self):
        aug = small_augmented()
        scores = ppr_scores(aug.graph, "q", ["a1", "a2"])
        full = ppr_vector(aug.graph, "q")
        assert scores == {"a1": full["a1"], "a2": full["a2"]}

    def test_missing_nodes_raise(self):
        aug = small_augmented()
        with pytest.raises(NodeNotFoundError):
            ppr_vector(aug.graph, "ghost")
        with pytest.raises(NodeNotFoundError):
            ppr_scores(aug.graph, "q", ["ghost"])

    def test_unknown_method(self):
        aug = small_augmented()
        with pytest.raises(ValueError):
            ppr_vector(aug.graph, "q", method="magic")

    def test_divergence_detected(self):
        # A 2-cycle with weight 2 edges blows up under power iteration.
        graph = WeightedDiGraph(strict=False)
        graph.add_edge("a", "b", 2.0)
        graph.add_edge("b", "a", 2.0)
        with pytest.raises(ConvergenceError):
            ppr_vector(graph, "a", method="power", max_iter=500)

    def test_bad_restart_prob(self):
        aug = small_augmented()
        with pytest.raises(ValueError):
            ppr_vector(aug.graph, "q", restart_prob=1.0)


class TestInversePDistance:
    def test_matches_enumeration(self, fig1_aug, fig1_expected_a3):
        value = inverse_pdistance_single(fig1_aug.graph, "q", "a3", max_length=5)
        assert value == pytest.approx(fig1_expected_a3)

    def test_unreachable_scores_zero(self, fig1_aug):
        fig1_aug.graph.add_node("island")
        scores = inverse_pdistance(fig1_aug.graph, "q", ["island"])
        assert scores["island"] == 0.0

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        length=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_dp_equals_walk_sum(self, seed, length):
        """The DP equals the explicit truncated walk sum of Eq. 7."""
        graph = random_digraph(9, 2.0, seed=seed, out_mass=0.9)
        graph.strict = False
        nodes = list(graph.nodes())
        source, target = nodes[0], nodes[-1]
        c = 0.15
        walks = enumerate_walks(graph, source, target, length)[target]
        expected = sum(
            walk_probability(graph, walk) * c * (1 - c) ** (len(walk) - 1)
            for walk in walks
        )
        value = inverse_pdistance_single(
            graph, source, target, max_length=length
        )
        assert value == pytest.approx(expected, rel=1e-10, abs=1e-15)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_theorem1_convergence(self, seed):
        """Φ_L -> π as L grows (Theorem 1), monotonically from below."""
        graph = random_digraph(10, 2.0, seed=seed, out_mass=0.9)
        nodes = list(graph.nodes())
        source, target = nodes[0], nodes[-1]
        exact = ppr_vector(graph, source, method="solve")[target]
        previous = -1.0
        for length in (2, 4, 8, 16, 64):
            value = inverse_pdistance_single(
                graph, source, target, max_length=length
            )
            assert value >= previous - 1e-15  # monotone non-decreasing
            previous = value
        assert previous == pytest.approx(exact, abs=1e-6)

    def test_profile_matches_individual_lengths(self, fig1_aug):
        profile = similarity_profile(fig1_aug.graph, "q", ["a3"], lengths=[2, 4, 5])
        for length, snapshot in profile.items():
            direct = inverse_pdistance(
                fig1_aug.graph, "q", ["a3"], max_length=length
            )
            assert snapshot["a3"] == pytest.approx(direct["a3"])

    def test_profile_bad_lengths(self, fig1_aug):
        with pytest.raises(ValueError):
            similarity_profile(fig1_aug.graph, "q", ["a3"], lengths=[0, 2])


class TestRandomWalkBaseline:
    def test_equals_ppr(self):
        aug = small_augmented()
        baseline = random_walk_similarity(aug.graph, "q", ["a1", "a2"])
        reference = ppr_scores(aug.graph, "q", ["a1", "a2"], method="solve")
        for answer in baseline:
            assert baseline[answer] == pytest.approx(reference[answer], abs=1e-9)

    def test_monte_carlo_agrees_with_exact(self):
        # MC sampling needs a sub-stochastic graph, so use the bare KG
        # (out-mass 0.85) rather than an augmented graph with unit links.
        graph = random_digraph(12, 2.0, seed=3, out_mass=0.85)
        nodes = list(graph.nodes())
        source, targets = nodes[0], [nodes[5], nodes[7]]
        exact = ppr_scores(graph, source, targets, method="solve")
        estimate = monte_carlo_similarity(
            graph, source, targets, num_walks=30_000, seed=7
        )
        for answer in exact:
            assert estimate[answer] == pytest.approx(exact[answer], abs=0.01)

    def test_monte_carlo_rejects_super_stochastic_graph(self):
        from repro.errors import SimilarityError

        aug = small_augmented()  # unit answer links => super-stochastic
        with pytest.raises(SimilarityError):
            monte_carlo_similarity(aug.graph, "q", ["a1"], num_walks=10)

    def test_monte_carlo_deterministic_with_seed(self):
        graph = random_digraph(12, 2.0, seed=3, out_mass=0.85)
        nodes = list(graph.nodes())
        e1 = monte_carlo_similarity(graph, nodes[0], [nodes[5]], num_walks=500, seed=1)
        e2 = monte_carlo_similarity(graph, nodes[0], [nodes[5]], num_walks=500, seed=1)
        assert e1 == e2

    def test_monte_carlo_bad_args(self):
        graph = random_digraph(5, 2.0, seed=3, out_mass=0.85)
        nodes = list(graph.nodes())
        with pytest.raises(ValueError):
            monte_carlo_similarity(graph, nodes[0], [nodes[1]], num_walks=0)


class TestTopK:
    def test_rank_answers_sorted_desc(self):
        aug = small_augmented()
        ranked = rank_answers(aug, "q", params=SimilarityParams(k=2))
        assert len(ranked) == 2
        assert ranked[0][1] >= ranked[1][1]

    def test_rank_answers_respects_k(self):
        aug = small_augmented()
        assert len(rank_answers(aug, "q", params=SimilarityParams(k=1))) == 1

    def test_rank_answers_non_query_rejected(self):
        aug = small_augmented()
        with pytest.raises(EvaluationError):
            rank_answers(aug, "a1")

    def test_rank_answers_bad_k(self):
        aug = small_augmented()
        with pytest.raises(ValueError):
            rank_answers(aug, "q", params=SimilarityParams(k=0))

    def test_rank_answers_legacy_kwargs_raise(self):
        aug = small_augmented()
        with pytest.raises(TypeError, match="SimilarityParams"):
            rank_answers(aug, "q", k=2)

    def test_rank_answers_explicit_answer_subset_ok(self):
        aug = small_augmented()
        ranked = rank_answers(aug, "q", params=SimilarityParams(k=5), answers=["a2"])
        assert [answer for answer, _ in ranked] == ["a2"]

    def test_rank_answers_rejects_entity_candidate(self):
        # Regression: entities score plausibly under inverse P-distance,
        # so an entity smuggled in via answers= used to pollute the
        # top-k silently.
        aug = small_augmented()
        entity = sorted(aug.entity_nodes)[0]
        with pytest.raises(EvaluationError, match=repr(entity)):
            rank_answers(aug, "q", params=SimilarityParams(k=5), answers=["a1", entity])

    def test_rank_answers_rejects_query_candidate(self):
        aug = small_augmented()
        with pytest.raises(EvaluationError, match="'q'"):
            rank_answers(aug, "q", params=SimilarityParams(k=5), answers=["q", "a1"])

    def test_rank_position(self):
        ranked = [("a", 0.9), ("b", 0.5), ("c", 0.1)]
        assert rank_position(ranked, "a") == 1
        assert rank_position(ranked, "c") == 3
        assert rank_position(["a", "b"], "b") == 2

    def test_rank_position_missing_raises(self):
        with pytest.raises(EvaluationError):
            rank_position([("a", 0.9)], "zzz")

    def test_deterministic_tie_break(self):
        ranked = scores_to_ranked_list({"b": 0.5, "a": 0.5, "c": 0.5})
        assert [answer for answer, _ in ranked] == ["a", "b", "c"]
