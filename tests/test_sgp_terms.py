"""Unit + property tests for the signomial algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SGPModelError
from repro.sgp import Signomial


def make_signomial():
    """2*x0^2*x1 - 3*x1 + 5"""
    return Signomial.from_terms(
        [(2.0, {0: 2, 1: 1}), (-3.0, {1: 1}), (5.0, {})]
    )


class TestConstruction:
    def test_constant(self):
        sig = Signomial.constant(4.2)
        assert sig.is_constant()
        assert sig.constant_value() == 4.2
        assert sig.evaluate({}) == 4.2

    def test_variable(self):
        sig = Signomial.variable(3)
        assert sig.evaluate({3: 2.5}) == 2.5
        assert sig.variables() == {3}

    def test_like_terms_merge(self):
        sig = Signomial()
        sig.add_term(1.0, {0: 1})
        sig.add_term(2.0, {0: 1})
        assert sig.num_terms == 1
        assert sig.evaluate({0: 3.0}) == 9.0

    def test_cancellation_removes_term(self):
        sig = Signomial()
        sig.add_term(1.5, {0: 2})
        sig.add_term(-1.5, {0: 2})
        assert sig.num_terms == 0
        assert sig.evaluate({0: 7.0}) == 0.0

    def test_zero_exponent_dropped(self):
        sig = Signomial.from_terms([(2.0, {0: 0, 1: 1})])
        assert sig.variables() == {1}

    def test_negative_var_id_rejected(self):
        with pytest.raises(SGPModelError):
            Signomial.from_terms([(1.0, {-1: 2})])

    def test_nonfinite_coeff_rejected(self):
        sig = Signomial()
        with pytest.raises(SGPModelError):
            sig.add_term(float("nan"), {0: 1})


class TestInspection:
    def test_posynomial_detection(self):
        assert Signomial.from_terms([(1.0, {0: 1}), (2.0, {1: 2})]).is_posynomial()
        assert not make_signomial().is_posynomial()

    def test_max_degree(self):
        assert make_signomial().max_degree() == 3.0
        assert Signomial.constant(1.0).max_degree() == 0.0

    def test_constant_value_raises_for_nonconstant(self):
        with pytest.raises(SGPModelError):
            make_signomial().constant_value()


class TestAlgebra:
    def test_add(self):
        total = make_signomial() + Signomial.variable(1) * 3.0
        # -3 x1 + 3 x1 cancels, leaving 2 x0^2 x1 + 5.
        assert total.num_terms == 2
        assert total.evaluate({0: 1.0, 1: 10.0}) == pytest.approx(2.0 * 10.0 + 5.0)

    def test_add_scalar(self):
        sig = Signomial.variable(0) + 2.0
        assert sig.evaluate({0: 1.0}) == 3.0

    def test_sub(self):
        diff = make_signomial() - make_signomial()
        assert diff.num_terms == 0

    def test_rsub(self):
        sig = 1.0 - Signomial.variable(0)
        assert sig.evaluate({0: 0.25}) == 0.75

    def test_neg(self):
        sig = -make_signomial()
        x = {0: 2.0, 1: 3.0}
        assert sig.evaluate(x) == -make_signomial().evaluate(x)

    def test_scalar_mul(self):
        sig = make_signomial() * 2.0
        x = {0: 1.5, 1: 0.5}
        assert sig.evaluate(x) == pytest.approx(2.0 * make_signomial().evaluate(x))

    def test_signomial_mul(self):
        a = Signomial.from_terms([(1.0, {0: 1}), (1.0, {})])  # x0 + 1
        b = Signomial.from_terms([(1.0, {0: 1}), (-1.0, {})])  # x0 - 1
        product = a * b  # x0^2 - 1
        assert product.num_terms == 2
        assert product.evaluate({0: 3.0}) == pytest.approx(8.0)

    def test_copy_is_independent(self):
        sig = make_signomial()
        clone = sig.copy()
        clone.add_term(1.0, {9: 1})
        assert 9 not in sig.variables()


class TestEvaluation:
    def test_evaluate_dict_and_array_agree(self):
        sig = make_signomial()
        as_dict = sig.evaluate({0: 1.5, 1: 2.5})
        as_array = sig.evaluate(np.array([1.5, 2.5]))
        assert as_dict == pytest.approx(as_array)

    def test_nonpositive_variable_rejected(self):
        sig = Signomial.variable(0)
        with pytest.raises(SGPModelError):
            sig.evaluate({0: 0.0})

    def test_gradient_matches_hand_computation(self):
        sig = make_signomial()  # 2 x0^2 x1 - 3 x1 + 5
        grad = sig.gradient({0: 2.0, 1: 3.0})
        assert grad[0] == pytest.approx(2 * 2 * 2.0 * 3.0)  # 4 x0 x1
        assert grad[1] == pytest.approx(2 * 4.0 - 3.0)  # 2 x0^2 - 3


class TestCompiled:
    def test_value_matches_exact(self):
        sig = make_signomial()
        compiled = sig.compile(2)
        x = np.array([1.3, 0.7])
        assert compiled.value(x) == pytest.approx(sig.evaluate(x))

    def test_grad_matches_exact(self):
        sig = make_signomial()
        compiled = sig.compile(2)
        x = np.array([1.3, 0.7])
        _, grad = compiled.value_and_grad(x)
        exact = sig.gradient(x)
        assert grad[0] == pytest.approx(exact[0])
        assert grad[1] == pytest.approx(exact[1])

    def test_empty_signomial(self):
        compiled = Signomial().compile(3)
        x = np.ones(3)
        value, grad = compiled.value_and_grad(x)
        assert value == 0.0
        assert np.all(grad == 0.0)

    def test_too_few_vars_rejected(self):
        with pytest.raises(SGPModelError):
            Signomial.variable(5).compile(3)

    def test_unused_extra_vars_ok(self):
        compiled = Signomial.variable(0).compile(10)
        assert compiled.value(np.full(10, 2.0)) == 2.0

    @given(
        coeffs=st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=1, max_size=6
        ),
        x=st.lists(
            st.floats(min_value=0.05, max_value=3.0), min_size=3, max_size=3
        ),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_compiled_matches_exact(self, coeffs, x, data):
        """Compiled (log-space) evaluation equals exact dict evaluation."""
        terms = []
        for coeff in coeffs:
            exponents = {
                var: data.draw(st.integers(min_value=0, max_value=3))
                for var in range(3)
            }
            terms.append((coeff, exponents))
        sig = Signomial.from_terms(terms)
        compiled = sig.compile(3)
        point = np.asarray(x)
        value, grad = compiled.value_and_grad(point)
        assert value == pytest.approx(sig.evaluate(point), rel=1e-9, abs=1e-9)
        exact_grad = sig.gradient(point)
        for var in range(3):
            assert grad[var] == pytest.approx(exact_grad.get(var, 0.0), rel=1e-9, abs=1e-9)

    @given(
        x=st.lists(st.floats(min_value=0.05, max_value=2.0), min_size=2, max_size=2)
    )
    @settings(max_examples=30, deadline=None)
    def test_property_finite_difference_gradient(self, x):
        """Analytic gradient agrees with central finite differences."""
        sig = make_signomial()
        compiled = sig.compile(2)
        point = np.asarray(x)
        _, grad = compiled.value_and_grad(point)
        eps = 1e-6
        for var in range(2):
            shift = np.zeros(2)
            shift[var] = eps
            numeric = (compiled.value(point + shift) - compiled.value(point - shift)) / (
                2 * eps
            )
            assert grad[var] == pytest.approx(numeric, rel=1e-4, abs=1e-6)
