"""Unit tests for the optimization objectives (Eq. 12, 16-19)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SGPModelError
from repro.optimize.objectives import (
    combined_objective,
    distance_objective,
    distance_signomial,
    sigmoid,
    sigmoid_deviation_objective,
    step_count,
)


class TestDistance:
    def test_signomial_matches_direct(self):
        x0 = [0.3, 0.7]
        sig = distance_signomial(x0)
        direct = distance_objective(x0, 2)
        for point in ([0.3, 0.7], [0.5, 0.5], [0.1, 0.9]):
            x = np.asarray(point)
            assert sig.evaluate(x) == pytest.approx(direct.value(x), abs=1e-12)

    def test_zero_at_start(self):
        x0 = [0.4, 0.6]
        assert distance_objective(x0, 2).value(np.asarray(x0)) == pytest.approx(0.0)

    def test_gradient(self):
        obj = distance_objective([0.5], 1)
        value, grad = obj.value_and_grad(np.array([0.8]))
        assert value == pytest.approx(0.09)
        assert grad[0] == pytest.approx(0.6)

    def test_subset_var_ids(self):
        """Distance over vars {0, 2} of a 4-var problem ignores the rest."""
        obj = distance_objective([0.2, 0.6], 4, var_ids=[0, 2])
        x = np.array([0.5, 99.0, 0.6, 77.0])
        value, grad = obj.value_and_grad(x)
        assert value == pytest.approx(0.09)
        assert grad[1] == 0.0 and grad[3] == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SGPModelError):
            distance_objective([0.1, 0.2], 4, var_ids=[0])
        with pytest.raises(SGPModelError):
            distance_signomial([0.1, 0.2], var_ids=[0])

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(SGPModelError):
            distance_objective([0.1], 1, var_ids=[5])


class TestSigmoid:
    def test_limits(self):
        assert sigmoid(1.0, w=300) == pytest.approx(1.0, abs=1e-9)
        assert sigmoid(-1.0, w=300) == pytest.approx(0.0, abs=1e-9)
        assert sigmoid(0.0, w=300) == pytest.approx(0.5)

    def test_paper_fig2_shape(self):
        """With w = 300 the sigmoid is step-like on [−1, 1] (Fig. 2)."""
        assert sigmoid(0.05, w=300) > 0.999
        assert sigmoid(-0.05, w=300) < 0.001

    def test_no_overflow(self):
        assert sigmoid(1e6, w=300) == pytest.approx(1.0, abs=1e-12)
        assert sigmoid(-1e6, w=300) == pytest.approx(0.0, abs=1e-100)

    def test_vectorized(self):
        values = sigmoid(np.array([-1.0, 0.0, 1.0]), w=10)
        assert values.shape == (3,)
        assert values[0] < values[1] < values[2]

    def test_step_count(self):
        assert step_count([-0.1, 0.0, 0.2, 3.0]) == 2
        assert step_count([]) == 0


class TestDeviationObjective:
    def test_counts_violations_smoothly(self):
        obj = sigmoid_deviation_objective([2, 3], 4, shift=1.0, w=300)
        # d' = shift => d = 0 => each sigmoid is 0.5.
        x = np.array([0.5, 0.5, 1.0, 1.0])
        value, grad = obj.value_and_grad(x)
        assert value == pytest.approx(1.0)
        assert grad[0] == 0.0 and grad[1] == 0.0
        assert grad[2] == pytest.approx(300 / 4)  # w L (1-L) at L = 0.5

    def test_saturated_deviations(self):
        obj = sigmoid_deviation_objective([1], 2, shift=1.0, w=300)
        satisfied = np.array([0.5, 0.5])   # d = −0.5
        violated = np.array([0.5, 1.5])    # d = +0.5
        assert obj.value(satisfied) == pytest.approx(0.0, abs=1e-9)
        assert obj.value(violated) == pytest.approx(1.0, abs=1e-9)

    def test_empty_deviation_block(self):
        obj = sigmoid_deviation_objective([], 3)
        value, grad = obj.value_and_grad(np.ones(3))
        assert value == 0.0
        assert np.all(grad == 0.0)

    def test_bad_w(self):
        with pytest.raises(SGPModelError):
            sigmoid_deviation_objective([0], 1, w=0.0)

    def test_out_of_range_ids(self):
        with pytest.raises(SGPModelError):
            sigmoid_deviation_objective([9], 2)

    @given(d=st.floats(min_value=-0.9, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_property_gradient_finite_difference(self, d):
        obj = sigmoid_deviation_objective([0], 1, shift=1.0, w=20)
        x = np.array([1.0 + d])
        _, grad = obj.value_and_grad(x)
        eps = 1e-6
        numeric = (obj.value(x + eps) - obj.value(x - eps)) / (2 * eps)
        assert grad[0] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


class TestCombined:
    def test_eq19_weighting(self):
        distance = distance_objective([0.5], 2, var_ids=[0])
        deviation = sigmoid_deviation_objective([1], 2, shift=1.0, w=300)
        combined = combined_objective(distance, deviation, lambda1=0.25, lambda2=0.75)
        x = np.array([0.8, 1.5])  # distance 0.09, deviation saturated at 1
        assert combined.value(x) == pytest.approx(0.25 * 0.09 + 0.75 * 1.0, abs=1e-6)

    def test_negative_weights_rejected(self):
        distance = distance_objective([0.5], 1)
        deviation = sigmoid_deviation_objective([], 1)
        with pytest.raises(SGPModelError):
            combined_objective(distance, deviation, lambda1=-1.0)
