"""Unit tests for the weight-change audit log."""

import pytest

from repro.errors import ReproError
from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.optimize import solve_multi_vote
from repro.optimize.audit import AuditLog
from repro.votes import Vote


@pytest.fixture
def aug():
    kg = WeightedDiGraph.from_edges(
        [("x", "y", 0.7), ("x", "z", 0.2)], strict=False
    )
    graph = AugmentedGraph(kg)
    graph.add_query("q", {"x": 1})
    graph.add_answer("a1", {"y": 1})
    graph.add_answer("a2", {"z": 1})
    return graph


def optimize_once(aug):
    vote = Vote("q", ("a1", "a2"), "a2")
    _, report = solve_multi_vote(
        aug, [vote], in_place=True, feasibility_filter=False
    )
    return report


class TestRecordAndQuery:
    def test_record_entry(self, aug):
        log = AuditLog()
        report = optimize_once(aug)
        entry = log.record(report.changed_edges, strategy="multi", num_votes=1)
        assert len(log) == 1
        assert entry.num_edges == len(report.changed_edges)
        assert entry.strategy == "multi"

    def test_edge_history(self, aug):
        log = AuditLog()
        for _ in range(2):
            report = optimize_once(aug)
            log.record(report.changed_edges, num_votes=1)
        history = log.edge_history("x", "y")
        assert len(history) >= 1
        # Each record's after equals the next record's before when the
        # same edge changes twice.
        for (i1, _b1, a1), (i2, b2, _a2) in zip(history, history[1:]):
            assert i1 < i2
            assert a1 == pytest.approx(b2)

    def test_total_drift(self, aug):
        log = AuditLog()
        report = optimize_once(aug)
        log.record(report.changed_edges)
        expected = sum(
            abs(after - before) for before, after in report.changed_edges.values()
        )
        assert log.total_drift() == pytest.approx(expected)


class TestRevert:
    def test_revert_restores_weights(self, aug):
        before = {e.key: e.weight for e in aug.kg_edges()}
        log = AuditLog()
        report = optimize_once(aug)
        log.record(report.changed_edges, num_votes=1)
        assert aug.kg_weight("x", "z") != pytest.approx(before[("x", "z")])

        writes = log.revert_last(aug)
        assert writes == len(report.changed_edges)
        for (head, tail), weight in before.items():
            assert aug.kg_weight(head, tail) == pytest.approx(weight)
        assert len(log) == 0

    def test_revert_multiple_passes_lifo(self, aug):
        original = {e.key: e.weight for e in aug.kg_edges()}
        log = AuditLog()
        for _ in range(3):
            report = optimize_once(aug)
            log.record(report.changed_edges)
        log.revert_last(aug, passes=3)
        for (head, tail), weight in original.items():
            assert aug.kg_weight(head, tail) == pytest.approx(weight)

    def test_revert_detects_divergence(self, aug):
        log = AuditLog()
        report = optimize_once(aug)
        log.record(report.changed_edges)
        # Out-of-band mutation invalidates the log's expectations.
        aug.set_kg_weight("x", "y", 0.111)
        with pytest.raises(ReproError):
            log.revert_last(aug)
        assert len(log) == 1  # the log stays consistent after the failure

    def test_revert_validation(self, aug):
        log = AuditLog()
        with pytest.raises(ReproError):
            log.revert_last(aug)
        with pytest.raises(ReproError):
            log.revert_last(aug, passes=0)


class TestPersistence:
    def test_round_trip(self, aug, tmp_path):
        log = AuditLog()
        report = optimize_once(aug)
        log.record(report.changed_edges, strategy="multi", num_votes=1)
        path = tmp_path / "audit.json"
        log.save(path)
        loaded = AuditLog.load(path)
        assert len(loaded) == 1
        assert loaded.entries[0].changes == log.entries[0].changes

    def test_loaded_log_can_revert(self, aug, tmp_path):
        before = {e.key: e.weight for e in aug.kg_edges()}
        log = AuditLog()
        report = optimize_once(aug)
        log.record(report.changed_edges)
        path = tmp_path / "audit.json"
        log.save(path)

        loaded = AuditLog.load(path)
        loaded.revert_last(aug)
        for (head, tail), weight in before.items():
            assert aug.kg_weight(head, tail) == pytest.approx(weight)

    def test_bad_files(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("{broken")
        with pytest.raises(ReproError):
            AuditLog.load(junk)
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"format": "other"}')
        with pytest.raises(ReproError):
            AuditLog.load(wrong)
