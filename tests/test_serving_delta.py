"""Tests for delta-propagation cache revalidation (repro/serving/delta.py).

The load-bearing property: after a sparse optimizer weight patch, the
engine's delta-corrected cached score vectors agree with a full cold
:func:`inverse_pdistance` recompute within the contract tolerance — and
the serve right after the patch is a cache *hit*, not a repropagation.
When the patch is too dense for localization (density fallback), the
engine cold-invalidates and results stay bitwise equal to the cold path.

The whole module runs with runtime contracts armed (see
``tests/conftest.py``), so every delta revalidation is additionally
checked against the engine's own reference DP at the seam.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.contracts import DELTA_SCORE_TOL, contracts_enabled
from repro.graph.augmented import AugmentedGraph
from repro.graph.generators import random_digraph
from repro.serving import (
    DeltaCorrector,
    DeltaFallbackError,
    SimilarityEngine,
    SimilarityParams,
)
from repro.similarity.inverse_pdistance import inverse_pdistance

PARAMS = SimilarityParams(k=5, max_length=6, restart_prob=0.2)


def build_aug(seed=3, num_entities=14, num_answers=4, num_queries=3):
    kg = random_digraph(num_entities, avg_degree=3.0, seed=seed, out_mass=0.9)
    aug = AugmentedGraph(kg)
    entities = sorted(kg.nodes())
    for i in range(num_answers):
        aug.add_answer(
            f"a{i}",
            {
                entities[(i + j) % len(entities)]: 1.0 + j
                for j in range(3)
            },
        )
    for i in range(num_queries):
        aug.add_query(
            f"q{i}",
            {
                entities[i]: 1.0,
                entities[(i + 5) % len(entities)]: 2.0,
            },
        )
    return aug, entities


def kg_edges_sorted(aug):
    return sorted(((e.head, e.tail) for e in aug.kg_edges()), key=repr)


def patch_edges(aug, edges, scale=0.7):
    """Scale a few knowledge-graph weights (keeps out-sums sub-stochastic)."""
    for head, tail in edges:
        aug.set_kg_weight(head, tail, aug.kg_weight(head, tail) * scale)


def assert_matches_cold(served, aug, query, targets, params=PARAMS):
    cold = inverse_pdistance(
        aug.graph,
        query,
        targets,
        max_length=params.max_length,
        restart_prob=params.restart_prob,
    )
    for target in targets:
        assert served[target] == pytest.approx(
            cold[target], abs=DELTA_SCORE_TOL, rel=DELTA_SCORE_TOL
        )


class TestDeltaRevalidation:
    def test_patch_keeps_cache_warm(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        hits_before = engine.stats().cache_hits

        patch_edges(aug, kg_edges_sorted(aug)[:4])
        served = engine.scores_for_query("q0", targets)

        stats = engine.stats()
        assert stats.cache_hits == hits_before + 1  # warm, not recomputed
        assert stats.delta_revalidations == 1
        assert stats.delta_entries_patched == 1
        assert stats.delta_fallbacks == 0
        assert_matches_cold(served, aug, "q0", targets)

    def test_all_cached_entries_revalidated(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        queries = sorted(aug.query_nodes, key=repr)
        for query in queries:
            engine.scores_for_query(query, targets)

        patch_edges(aug, kg_edges_sorted(aug)[:6], scale=0.5)
        for query in queries:
            served = engine.scores_for_query(query, targets)
            assert_matches_cold(served, aug, query, targets)

        stats = engine.stats()
        assert stats.delta_revalidations == 1
        assert stats.delta_entries_patched == len(queries)
        assert stats.cache_misses == len(queries)  # only the cold fills

    def test_repeated_patch_serve_cycles_stay_correct(self):
        aug, _ = build_aug(seed=9)
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        edges = kg_edges_sorted(aug)
        engine.scores_for_query("q1", targets)
        for round_index in range(5):
            chunk = edges[round_index::5][:3]
            patch_edges(aug, chunk, scale=0.7 + 0.05 * round_index)
            served = engine.scores_for_query("q1", targets)
            assert_matches_cold(served, aug, "q1", targets)
        stats = engine.stats()
        assert stats.delta_revalidations == 5
        assert stats.cache_misses == 1

    def test_batch_serve_hits_after_patch(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        queries = sorted(aug.query_nodes, key=repr)
        engine.score_batch(queries, targets)
        misses_before = engine.stats().cache_misses

        patch_edges(aug, kg_edges_sorted(aug)[:3])
        batch = engine.score_batch(queries, targets)

        assert engine.stats().cache_misses == misses_before
        for query in queries:
            assert_matches_cold(batch[query], aug, query, targets)

    def test_zero_delta_patch_rekeys_verbatim(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        before = engine.scores_for_query("q0", targets)
        edge = kg_edges_sorted(aug)[0]
        aug.set_kg_weight(*edge, aug.kg_weight(*edge))  # same value
        after = engine.scores_for_query("q0", targets)
        stats = engine.stats()
        assert stats.cache_hits == 1
        assert stats.delta_rekeys == 1
        assert stats.delta_revalidations == 0
        assert after == before  # carried verbatim, bitwise

    def test_answer_append_rekeys_cache(self):
        aug, entities = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        before = engine.scores_for_query("q0", targets)
        aug.add_answer("a_late", {entities[0]: 1.0, entities[3]: 2.0})
        # Same explicit targets: appending an answer row cannot change
        # any of these scores (answers have no out-edges).
        after = engine.scores_for_query("q0", targets)
        stats = engine.stats()
        assert stats.cache_hits == 1
        assert stats.delta_rekeys == 1
        assert after == before

    def test_patch_then_append_in_one_flush(self):
        aug, entities = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        # Both mutations buffered, applied in a single flush.
        patch_edges(aug, kg_edges_sorted(aug)[:3])
        aug.add_answer("a_late", {entities[1]: 1.0})
        served = engine.scores_for_query("q0", targets)
        stats = engine.stats()
        assert stats.cache_hits == 1
        assert stats.delta_revalidations == 1
        assert stats.delta_rekeys == 1
        assert_matches_cold(served, aug, "q0", targets)

    def test_disabled_engine_cold_invalidates(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS, delta_revalidation=False)
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        patch_edges(aug, kg_edges_sorted(aug)[:2])
        served = engine.scores_for_query("q0", targets)
        stats = engine.stats()
        assert stats.cache_hits == 0
        assert stats.cache_misses == 2
        assert stats.delta_revalidations == 0
        # Cold path is bitwise, not merely tolerance-equal.
        cold = inverse_pdistance(
            aug.graph,
            "q0",
            targets,
            max_length=PARAMS.max_length,
            restart_prob=PARAMS.restart_prob,
        )
        assert all(served[t] == cold[t] for t in targets)

    def test_density_fallback_cold_invalidates_bitwise(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(
            aug, params=PARAMS, delta_density_threshold=0.0
        )
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        patch_edges(aug, kg_edges_sorted(aug)[:2])
        served = engine.scores_for_query("q0", targets)
        stats = engine.stats()
        assert stats.delta_fallbacks == 1
        assert stats.delta_revalidations == 0
        assert stats.cache_misses == 2  # the fallback dropped the entry
        cold = inverse_pdistance(
            aug.graph,
            "q0",
            targets,
            max_length=PARAMS.max_length,
            restart_prob=PARAMS.restart_prob,
        )
        assert all(served[t] == cold[t] for t in targets)

    def test_revalidate_folds_burst_off_serve_path(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        patch_edges(aug, kg_edges_sorted(aug)[:5])
        engine.revalidate()  # what the optimizer flush paths call
        assert engine.stats().delta_revalidations == 1
        served = engine.scores_for_query("q0", targets)
        assert engine.stats().cache_hits == 1
        assert_matches_cold(served, aug, "q0", targets)


class TestCacheBugfixes:
    def test_cache_key_ignores_link_insertion_order(self):
        # Regression: tuple(links.items()) keyed on dict insertion
        # order, so permuted-but-identical out-links repropagated.
        aug, entities = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        links_fwd = {entities[0]: 0.4, entities[1]: 0.6}
        links_rev = {entities[1]: 0.6, entities[0]: 0.4}
        first = engine.scores(links_fwd)
        second = engine.scores(links_rev)
        stats = engine.stats()
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1
        assert second == first

    def test_cached_vectors_are_read_only(self):
        # Regression: _cache_get handed back the cached ndarray itself;
        # a caller mutating it poisoned every later hit for that key.
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        # The key embeds the matrix epoch, so build it after the serve.
        key = engine._cache_key(
            engine._seed_links("q0"), tuple(targets), PARAMS
        )
        cached = engine._cache_get(key)
        assert cached is not None
        assert not cached.flags.writeable
        with pytest.raises(ValueError):
            cached[0] = 123.0
        again = engine._cache_get(key)
        assert again[0] != 123.0

    def test_mutated_result_cannot_poison_cache(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        first = engine.scores_for_query("q0", targets)
        first[targets[0]] = 999.0  # the served dict is the caller's own
        second = engine.scores_for_query("q0", targets)
        assert second[targets[0]] != 999.0
        assert engine.stats().cache_hits == 1

    def test_revalidated_vectors_stay_read_only(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        patch_edges(aug, kg_edges_sorted(aug)[:3])
        engine.revalidate()
        key = engine._cache_key(
            engine._seed_links("q0"), tuple(targets), PARAMS
        )
        cached = engine._cache_get(key)
        assert cached is not None
        assert not cached.flags.writeable


class TestDeltaCorrectorUnit:
    def test_empty_patch_correction_is_zero(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        engine.scores_for_query("q0")  # force a build
        corrector = DeltaCorrector(
            engine._matrix,
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=float),
            max_length=PARAMS.max_length,
        )
        out = corrector.correction(
            np.array([0]),
            np.array([1.0]),
            np.array([1, 2]),
            max_length=PARAMS.max_length,
            restart_prob=PARAMS.restart_prob,
        )
        assert np.array_equal(out, np.zeros(2))

    def test_too_deep_entry_rejected(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        engine.scores_for_query("q0")
        corrector = DeltaCorrector(
            engine._matrix,
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([0.01]),
            max_length=3,
        )
        with pytest.raises(ValueError):
            corrector.correction(
                np.array([0]),
                np.array([1.0]),
                np.array([1]),
                max_length=9,
                restart_prob=0.2,
            )

    def test_zero_threshold_raises_fallback(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS)
        engine.scores_for_query("q0")
        with pytest.raises(DeltaFallbackError):
            DeltaCorrector(
                engine._matrix,
                np.array([0], dtype=np.int64),
                np.array([1], dtype=np.int64),
                np.array([0.01]),
                max_length=PARAMS.max_length,
                density_threshold=0.0,
            )


class TestDeltaProperty:
    """Satellite: hypothesis property across random graphs + patches."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rounds=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=10_000),
                    st.floats(min_value=0.3, max_value=0.999),
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=3,
        ),
    )
    def test_delta_equals_cold_across_random_patch_sequences(
        self, seed, rounds
    ):
        assert contracts_enabled()  # the suite runs REPRO_CONTRACTS-armed
        aug, _ = build_aug(seed=seed % 50, num_entities=12)
        engine = SimilarityEngine(aug, params=PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        queries = sorted(aug.query_nodes, key=repr)
        edges = kg_edges_sorted(aug)
        for query in queries:
            engine.scores_for_query(query, targets)
        for round_patches in rounds:
            for edge_pick, scale in round_patches:
                head, tail = edges[edge_pick % len(edges)]
                aug.set_kg_weight(
                    head, tail, aug.kg_weight(head, tail) * scale
                )
            for query in queries:
                served = engine.scores_for_query(query, targets)
                assert_matches_cold(served, aug, query, targets)
        # The LRU stayed warm the whole time: one miss per query, ever.
        assert engine.stats().cache_misses == len(queries)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        edge_pick=st.integers(min_value=0, max_value=10_000),
        scale=st.floats(min_value=0.3, max_value=0.999),
    )
    def test_forced_fallback_is_bitwise_cold(self, seed, edge_pick, scale):
        aug, _ = build_aug(seed=seed % 50, num_entities=12)
        engine = SimilarityEngine(
            aug, params=PARAMS, delta_density_threshold=0.0
        )
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        edges = kg_edges_sorted(aug)
        head, tail = edges[edge_pick % len(edges)]
        aug.set_kg_weight(head, tail, aug.kg_weight(head, tail) * scale)
        served = engine.scores_for_query("q0", targets)
        assert engine.stats().delta_fallbacks == 1
        cold = inverse_pdistance(
            aug.graph,
            "q0",
            targets,
            max_length=PARAMS.max_length,
            restart_prob=PARAMS.restart_prob,
        )
        assert all(served[t] == cold[t] for t in targets)
