"""Tests for the SLO watchdog (repro/obs/slo.py).

The math under test: bucket-interpolated quantile estimates, attainment
(interpolated fraction under the threshold), and error-budget burn —
plus the watchdog's gauge publication and its breach-transition trigger
into the flight recorder.
"""

import math

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import (
    LatencyObjective,
    SLOWatchdog,
    default_objectives,
    evaluate_objective,
    merge_histograms,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


ASK_P95 = LatencyObjective("ask-p95", "qa_ask_seconds", 0.95, 0.25)


class TestObjective:
    def test_quantile_must_be_strictly_inside_unit_interval(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                LatencyObjective("x", "qa_ask_seconds", bad, 0.25)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyObjective("x", "qa_ask_seconds", 0.95, 0.0)

    def test_default_objectives_have_unique_names(self):
        names = [o.name for o in default_objectives()]
        assert len(set(names)) == len(names)


class TestEvaluateObjective:
    def test_empty_histogram_is_ungraded(self):
        status = evaluate_objective(ASK_P95, (0.1, 1.0), [0, 0, 0])
        assert status.count == 0
        assert math.isnan(status.estimate)
        assert math.isnan(status.attainment)
        assert math.isnan(status.burn)
        assert not status.breached

    def test_all_fast_attains_fully(self):
        # 100 samples all in the first bucket (≤ 0.1s) against a 0.25s
        # threshold: the p95 estimate interpolates inside [0, 0.1].
        status = evaluate_objective(ASK_P95, (0.1, 1.0), [100, 100, 100])
        assert status.count == 100
        assert status.estimate <= 0.1
        assert status.attainment == pytest.approx(1.0)
        assert status.burn == pytest.approx(0.0)
        assert not status.breached

    def test_slow_tail_breaches(self):
        # 90 fast, 10 in (1.0, +Inf]: p95 lands past the last finite
        # bound, estimate = 1.0s > 0.25s threshold.
        status = evaluate_objective(ASK_P95, (0.1, 1.0), [90, 90, 100])
        assert status.breached
        assert status.estimate == pytest.approx(1.0)
        # attainment: threshold 0.25 interpolates inside (0.1, 1.0].
        assert 0.9 <= status.attainment < 1.0
        assert status.burn == pytest.approx(
            (1.0 - status.attainment) / 0.05, rel=1e-9
        )

    def test_burn_of_exactly_budgeted_tail_is_one(self):
        # 95% ≤ threshold bucket bound, 5% above: burn = 0.05 / 0.05 = 1.
        objective = LatencyObjective("x", "qa_ask_seconds", 0.95, 0.1)
        status = evaluate_objective(objective, (0.1, 1.0), [95, 100, 100])
        assert status.attainment == pytest.approx(0.95)
        assert status.burn == pytest.approx(1.0)

    def test_burn_guard_with_no_error_budget(self):
        # quantile == 1.0 cannot pass the validated constructor; forge
        # an objective to exercise evaluate_objective's division guard
        # directly (a p100 objective has no budget to divide by).
        objective = object.__new__(LatencyObjective)
        object.__setattr__(objective, "name", "p100")
        object.__setattr__(objective, "metric", "qa_ask_seconds")
        object.__setattr__(objective, "quantile", 1.0)
        object.__setattr__(objective, "threshold", 0.25)
        attained = evaluate_objective(objective, (0.1, 1.0), [100, 100, 100])
        assert attained.burn == 0.0
        missed = evaluate_objective(objective, (0.1, 1.0), [90, 90, 100])
        assert math.isinf(missed.burn)


class TestMergeHistograms:
    def test_empty_iterable_is_none(self):
        assert merge_histograms([]) is None

    def test_same_bounds_merge_counts(self, registry):
        a = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0), op="a")
        b = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0), op="b")
        a.observe(0.05)
        b.observe(0.5)
        b.observe(2.0)
        bounds, cumulative = merge_histograms([a, b])
        assert bounds == (0.1, 1.0)
        assert cumulative == [1, 2, 3]

    def test_mismatched_bounds_skipped(self, registry):
        a = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0), op="a")
        odd = registry.histogram("lat_seconds", buckets=(0.5,))
        a.observe(0.05)
        odd.observe(0.4)
        bounds, cumulative = merge_histograms([a, odd])
        assert bounds == (0.1, 1.0)
        assert cumulative == [1, 1, 1]  # the odd layout contributed nothing


class TestWatchdog:
    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            SLOWatchdog([ASK_P95, ASK_P95])

    def test_no_data_publishes_no_gauges(self, registry):
        watchdog = SLOWatchdog([ASK_P95], registry=registry)
        (status,) = watchdog.check()
        assert status.count == 0
        assert "slo_attainment_ratio" not in str(sorted(registry.snapshot()))

    def test_healthy_workload_sets_gauges(self, registry):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(50):
            h.observe(0.01)
        watchdog = SLOWatchdog([ASK_P95], registry=registry)
        (status,) = watchdog.check()
        assert not status.breached
        assert registry.gauge(
            "slo_attainment_ratio", slo="ask-p95"
        ).value == pytest.approx(1.0)
        assert registry.gauge(
            "slo_budget_burn", slo="ask-p95"
        ).value == pytest.approx(0.0)
        assert registry.gauge(
            "slo_latency_estimate_seconds", slo="ask-p95"
        ).value == status.estimate
        assert registry.counter("slo_breaches_total", slo="ask-p95").value == 0

    def test_breach_counts_and_triggers_once_per_transition(
        self, registry, tmp_path
    ):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(10):
            h.observe(5.0)  # everything lands past the threshold
        recorder = FlightRecorder(
            tmp_path / "flight", registry=registry, min_dump_interval=0.0
        )
        watchdog = SLOWatchdog([ASK_P95], registry=registry, recorder=recorder)

        (first,) = watchdog.check()
        (second,) = watchdog.check()
        assert first.breached and second.breached
        # The counter burns every poll while breached…
        assert registry.counter("slo_breaches_total", slo="ask-p95").value == 2
        # …but the bundle dumps only on the transition.
        bundles = list((tmp_path / "flight").glob("flight-*-slo_breach"))
        assert len(bundles) == 1
        kinds = [e.kind for e in recorder.events()]
        assert kinds.count("slo.breach") == 1

    def test_recovery_rearms_the_transition_trigger(self, registry, tmp_path):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(10):
            h.observe(5.0)
        recorder = FlightRecorder(
            tmp_path / "flight", registry=registry, min_dump_interval=0.0
        )
        watchdog = SLOWatchdog([ASK_P95], registry=registry, recorder=recorder)
        watchdog.check()  # breach #1 → bundle
        # A flood of fast requests pulls the p95 estimate back under.
        for _ in range(2000):
            h.observe(0.01)
        (healthy,) = watchdog.check()
        assert not healthy.breached
        for _ in range(50_000):
            h.observe(5.0)
        (rebreached,) = watchdog.check()
        assert rebreached.breached
        bundles = list((tmp_path / "flight").glob("flight-*-slo_breach"))
        assert len(bundles) == 2


class TestIntervalWindows:
    """The watchdog grades deltas between checks, not cumulative totals.

    Regression: histograms are cumulative, so a long healthy history
    used to dilute a fresh latency regression out of the p95 estimate —
    a service slow for minutes read as healthy because it had been fast
    for hours.
    """

    def test_regression_after_long_healthy_history_is_caught(self, registry):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(100_000):
            h.observe(0.01)
        watchdog = SLOWatchdog([ASK_P95], registry=registry)
        (healthy,) = watchdog.check()
        assert not healthy.breached
        # Every request since the last check is slow.  Cumulatively
        # that is 200 of 100200 samples — invisible to a p95; the
        # interval window sees 200 of 200.
        for _ in range(200):
            h.observe(5.0)
        (status,) = watchdog.check()
        assert status.breached
        assert status.count == 200

    def test_first_check_grades_full_cumulative_data(self, registry):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(50):
            h.observe(0.01)
        watchdog = SLOWatchdog([ASK_P95], registry=registry)
        (status,) = watchdog.check()
        assert status.count == 50

    def test_negative_delta_falls_back_to_fresh_cumulative(self, registry):
        # A replaced registry restarts counts from zero; the watchdog
        # must not grade a bogus negative window.
        watchdog = SLOWatchdog([ASK_P95], registry=registry)
        bounds = (0.1, 1.0)
        assert watchdog._interval_window("ask-p95", bounds, [10, 10, 10]) == [
            10,
            10,
            10,
        ]
        assert watchdog._interval_window("ask-p95", bounds, [10, 15, 20]) == [
            0,
            5,
            10,
        ]
        # Restart: cumulative counts drop below the snapshot.
        assert watchdog._interval_window("ask-p95", bounds, [3, 3, 4]) == [
            3,
            3,
            4,
        ]
        # The next interval is graded against the reset baseline.
        assert watchdog._interval_window("ask-p95", bounds, [3, 4, 6]) == [
            0,
            1,
            2,
        ]

    def test_bucket_layout_change_falls_back_to_cumulative(self, registry):
        watchdog = SLOWatchdog([ASK_P95], registry=registry)
        watchdog._interval_window("ask-p95", (0.1, 1.0), [5, 5, 5])
        assert watchdog._interval_window("ask-p95", (0.2, 2.0), [7, 7, 7]) == [
            7,
            7,
            7,
        ]

    def test_quiet_interval_keeps_last_gauges_and_verdict(self, registry):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(50):
            h.observe(0.01)
        watchdog = SLOWatchdog([ASK_P95], registry=registry)
        watchdog.check()
        (quiet,) = watchdog.check()  # no traffic since the last check
        assert quiet.count == 0
        assert not quiet.breached
        # Gauges keep their last real values; nothing was overwritten
        # with NaN and the breach counter did not move.
        assert registry.gauge(
            "slo_attainment_ratio", slo="ask-p95"
        ).value == pytest.approx(1.0)
        assert registry.counter("slo_breaches_total", slo="ask-p95").value == 0


class TestQuantileAccuracy:
    def test_estimate_within_one_bucket_width_of_exact(self, registry):
        # Seeded workload with uniform bucket widths: the interpolated
        # estimate must land within one bucket width of the exact
        # order-statistic quantile, for every graded quantile.
        rng = np.random.default_rng(42)
        samples = rng.gamma(shape=2.0, scale=0.05, size=2000)
        width = 0.05
        buckets = tuple(round(width * i, 10) for i in range(1, 21))  # 0.05..1.0
        h = registry.histogram("qa_ask_seconds", buckets=buckets)
        for s in samples:
            h.observe(float(min(s, 0.99)))  # keep everything in finite buckets
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(np.minimum(samples, 0.99), q))
            estimate = h.quantile(q)
            assert abs(estimate - exact) <= width + 1e-9, (
                f"q={q}: estimate {estimate:.4f} vs exact {exact:.4f}"
            )
