"""End-to-end observability: registry/EngineStats equivalence and traces.

Covers the PR's acceptance scenario: a single ``QASystem.ask()`` plus one
``optimize`` call must produce a nested trace (root span → propagate →
SGP solve with iteration counts and residuals) exportable as JSONL and
renderable as a console tree, with latency histograms for both serve and
solve, while ``EngineStats`` remains an exact view of the registry.
"""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    clear_traces,
    get_registry,
    last_trace,
    set_registry,
)
from repro.qa import QASystem, build_knowledge_graph, generate_helpdesk_corpus
from repro.serving import SimilarityParams


@pytest.fixture(autouse=True)
def fresh_registry():
    """Run every test against a throwaway process-wide registry."""
    previous = set_registry(MetricsRegistry())
    clear_traces()
    yield get_registry()
    set_registry(previous)
    clear_traces()


@pytest.fixture(scope="module")
def corpus():
    # The CLI demo's corpus: seed 0 is known to yield an encodable,
    # solvable negative vote (the SGP actually runs).
    return generate_helpdesk_corpus(seed=0)


@pytest.fixture
def system(corpus):
    kg = build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)
    system = QASystem(kg, corpus.vocabulary, params=SimilarityParams(k=8))
    system.add_documents(corpus.document_texts())
    return system


def _engine_value(registry, engine, name):
    return registry.value(name, engine=engine.engine_label)


class TestEngineStatsRegistryEquivalence:
    def test_mixed_workload(self, corpus, system, fresh_registry):
        """stats() and the registry agree after a realistic mixed run."""
        engine = system.engine
        questions = [q.text for q in corpus.train_pairs[:4]]

        # Query churn + repeated asks (cache misses then hits).
        for i, text in enumerate(questions):
            system.ask(text, question_id=f"w{i}")
        for i, text in enumerate(questions):
            system.ask(text, question_id=f"w{i}")

        # Weight patches: a vote and an optimization pass.
        answers = system.ask(questions[0], question_id="voted")
        system.vote("voted", answers[2][0])
        system.optimize(strategy="multi", feasibility_filter=False)

        # Answer appends: new documents attached after the first build.
        system.add_document("late_doc", questions[1])
        system.ask(questions[2], question_id="after_append")

        # A batched serve for good measure.
        system.ask_many({"b0": questions[0], "b1": questions[3]})

        stats = engine.stats()
        registry = fresh_registry
        expected = {
            "engine_builds_total": stats.builds,
            "engine_rebuilds_avoided_total": stats.rebuilds_avoided,
            "engine_weight_patches_total": stats.weight_patches,
            "engine_rows_appended_total": stats.rows_appended,
            "engine_query_events_ignored_total": stats.query_events_ignored,
            "engine_cache_hits_total": stats.cache_hits,
            "engine_cache_misses_total": stats.cache_misses,
            "engine_serves_total": stats.serves,
            "engine_batch_serves_total": stats.batch_serves,
            "engine_cache_entries": stats.cache_entries,
            "engine_graph_version": stats.graph_version,
        }
        for name, stat_value in expected.items():
            assert _engine_value(registry, engine, name) == stat_value, name

        build = _engine_value(registry, engine, "engine_build_seconds")
        assert build["sum"] == pytest.approx(stats.build_time)
        propagate = _engine_value(
            registry, engine, "engine_propagate_seconds"
        )
        assert propagate["sum"] == pytest.approx(stats.propagate_time)

        # The workload must actually have exercised every code path the
        # equivalence claims to cover.
        assert stats.builds >= 1
        assert stats.cache_hits >= 1 and stats.cache_misses >= 1
        assert stats.weight_patches >= 1
        assert stats.rows_appended >= 1
        assert stats.serves >= 1 and stats.batch_serves >= 1

    def test_two_engines_do_not_mix_series(self, corpus):
        kg = build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)
        a = QASystem(kg, corpus.vocabulary, params=SimilarityParams(k=4))
        b = QASystem(kg.copy(), corpus.vocabulary, params=SimilarityParams(k=4))
        a.add_documents(corpus.document_texts())
        b.add_documents(corpus.document_texts())
        assert a.engine.engine_label != b.engine.engine_label
        a.ask(corpus.train_pairs[0].text, question_id="qa")
        assert a.engine.stats().serves == 1
        assert b.engine.stats().serves == 0


class TestAcceptanceTrace:
    def test_ask_produces_nested_trace(self, corpus, system):
        system.ask(corpus.train_pairs[0].text, question_id="t0")
        trace = last_trace()
        assert trace.root.name == "qa.ask"
        assert trace.root.attrs["question_id"] == "t0"
        assert trace.find("engine.propagate") is not None

    def test_optimize_produces_solver_telemetry(self, corpus, system):
        answers = system.ask(corpus.train_pairs[0].text, question_id="t0")
        system.vote("t0", answers[2][0])
        system.optimize(strategy="multi", feasibility_filter=False)
        trace = last_trace()
        assert trace.root.name == "qa.optimize"
        names = trace.span_names()
        assert "optimize.multi_vote" in names
        assert "optimize.encode" in names
        solve = trace.find("sgp.solve")
        assert solve is not None
        assert solve.attrs["nit"] >= 1
        assert "max_residual" in solve.attrs
        assert "num_satisfied" in solve.attrs

    def test_trace_exports_as_jsonl_and_renders(self, corpus, system):
        answers = system.ask(corpus.train_pairs[0].text, question_id="t0")
        system.vote("t0", answers[2][0])
        system.optimize(strategy="multi", feasibility_filter=False)
        trace = last_trace()
        records = [json.loads(line) for line in trace.to_json_lines()]
        root = records[0]
        assert root["name"] == "qa.optimize" and root["parent_id"] is None
        solver_rows = [r for r in records if r["name"] == "sgp.solve"]
        assert solver_rows and solver_rows[0]["depth"] >= 1
        rendered = trace.render()
        assert rendered.splitlines()[0].startswith("qa.optimize")
        assert "  optimize.multi_vote" in rendered

    def test_latency_histograms_recorded(self, corpus, system, fresh_registry):
        answers = system.ask(corpus.train_pairs[0].text, question_id="t0")
        system.vote("t0", answers[2][0])
        system.optimize(strategy="multi", feasibility_filter=False)
        registry = fresh_registry
        ask = registry.value("qa_ask_seconds")
        assert ask["count"] >= 1 and ask["sum"] > 0
        solve = registry.value("sgp_solve_seconds")
        assert solve["count"] >= 1
        assert registry.value("optimize_runs_total", strategy="multi-vote") == 1
        deviations = registry.value("optimize_deviation_magnitude")
        assert deviations["count"] >= 1
