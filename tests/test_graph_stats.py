"""Unit tests for graph statistics and summaries."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph import WeightedDiGraph, random_digraph
from repro.graph.stats import (
    effective_branching_factor,
    out_degree_distribution,
    reachability_profile,
    summarize,
)


@pytest.fixture
def small():
    """q -> {a, b}; a -> c; isolated node i."""
    graph = WeightedDiGraph.from_edges(
        [("q", "a", 0.5), ("q", "b", 0.3), ("a", "c", 0.9)],
        strict=False,
    )
    graph.add_node("i")
    return graph


class TestSummarize:
    def test_counts(self, small):
        summary = summarize(small)
        assert summary.num_nodes == 5
        assert summary.num_edges == 3
        assert summary.max_out_degree == 2
        assert summary.max_in_degree == 1

    def test_sinks_and_sources(self, small):
        summary = summarize(small)
        # sinks: b, c, i; sources: q, i.
        assert summary.num_sinks == 3
        assert summary.num_sources == 2

    def test_weight_extremes(self, small):
        summary = summarize(small)
        assert summary.min_weight == 0.3
        assert summary.max_weight == 0.9
        assert summary.max_out_weight_sum == pytest.approx(0.9)

    def test_empty_graph(self):
        summary = summarize(WeightedDiGraph())
        assert summary.num_nodes == 0
        assert summary.min_weight == 0.0

    def test_as_row_length_matches(self, small):
        assert len(summarize(small).as_row()) == 10


class TestDegreeDistribution:
    def test_histogram(self, small):
        dist = out_degree_distribution(small)
        assert dist == {0: 3, 1: 1, 2: 1}

    def test_total_matches_nodes(self):
        graph = random_digraph(50, 3.0, seed=1)
        dist = out_degree_distribution(graph)
        assert sum(dist.values()) == 50


class TestReachability:
    def test_profile_levels(self, small):
        profile = reachability_profile(small, "q", max_depth=3)
        assert profile == {0: 1, 1: 2, 2: 1, 3: 0}

    def test_profile_respects_depth_cap(self, small):
        profile = reachability_profile(small, "q", max_depth=1)
        assert profile == {0: 1, 1: 2}

    def test_isolated_source(self, small):
        profile = reachability_profile(small, "i", max_depth=2)
        assert profile == {0: 1, 1: 0, 2: 0}

    def test_missing_node(self, small):
        with pytest.raises(NodeNotFoundError):
            reachability_profile(small, "ghost", 2)

    def test_negative_depth(self, small):
        with pytest.raises(ValueError):
            reachability_profile(small, "q", -1)

    def test_branching_factor_geometric_mean(self):
        assert effective_branching_factor({0: 1, 1: 3, 2: 9}) == pytest.approx(3.0)

    def test_branching_factor_ignores_dead_levels(self):
        assert effective_branching_factor({0: 1, 1: 2, 2: 0, 3: 0}) == pytest.approx(2.0)

    def test_branching_factor_degenerate(self):
        assert effective_branching_factor({0: 1}) == 0.0

    def test_branching_predicts_dense_vs_sparse(self):
        dense = random_digraph(300, 6.0, seed=2)
        sparse = random_digraph(300, 1.5, seed=2)
        node_d = next(iter(dense.nodes()))
        node_s = next(iter(sparse.nodes()))
        bf_dense = effective_branching_factor(
            reachability_profile(dense, node_d, 3)
        )
        bf_sparse = effective_branching_factor(
            reachability_profile(sparse, node_s, 3)
        )
        assert bf_dense > bf_sparse
