"""Unit tests for vote → SGP encoding."""

import numpy as np
import pytest

from repro.errors import SGPModelError
from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.optimize.encoder import DEVIATION_SHIFT, encode_votes
from repro.similarity import inverse_pdistance
from repro.votes import Vote


@pytest.fixture
def two_answer_aug():
    """x fans out to y (strong) and z (weak); a1 hangs off y, a2 off z."""
    kg = WeightedDiGraph.from_edges(
        [("x", "y", 0.7), ("x", "z", 0.2)], strict=False
    )
    aug = AugmentedGraph(kg)
    aug.add_query("q", {"x": 1})
    aug.add_answer("a1", {"y": 1})
    aug.add_answer("a2", {"z": 1})
    return aug


@pytest.fixture
def negative_vote():
    return Vote("q", ("a1", "a2"), "a2")


class TestEncodeStructure:
    def test_variables_are_adjustable_edges_only(self, two_answer_aug, negative_vote):
        encoded = encode_votes(two_answer_aug, [negative_vote], use_deviations=False)
        edges = set(encoded.variables.edges())
        assert edges == {("x", "y"), ("x", "z")}
        assert encoded.num_edge_vars == 2
        assert encoded.num_deviation_vars == 0

    def test_one_constraint_per_rival(self, two_answer_aug):
        vote = Vote("q", ("a1", "a2"), "a2")
        encoded = encode_votes(two_answer_aug, [vote], use_deviations=False)
        # k = 2 answers, one rival => one constraint.
        assert encoded.problem.num_constraints == 1
        assert encoded.constraint_votes == [0]

    def test_positive_vote_also_encodable(self, two_answer_aug):
        vote = Vote("q", ("a1", "a2"), "a1")  # confirm the top answer
        encoded = encode_votes(two_answer_aug, [vote], use_deviations=True)
        assert encoded.problem.num_constraints == 1

    def test_initial_point_is_current_weights(self, two_answer_aug, negative_vote):
        encoded = encode_votes(two_answer_aug, [negative_vote], use_deviations=False)
        values = encoded.edge_values(encoded.problem.x0)
        assert values[("x", "y")] == pytest.approx(0.7)
        assert values[("x", "z")] == pytest.approx(0.2)

    def test_deviation_block(self, two_answer_aug, negative_vote):
        encoded = encode_votes(two_answer_aug, [negative_vote], use_deviations=True)
        assert encoded.num_deviation_vars == 1
        dev_id = encoded.deviation_ids[0]
        assert encoded.problem.x0[dev_id] == pytest.approx(DEVIATION_SHIFT)
        # d' bounds translate to d in (−shift, +DEVIATION_MAX].
        assert encoded.problem.lower[dev_id] > 0
        assert encoded.problem.upper[dev_id] > 2 * DEVIATION_SHIFT

    def test_deviation_values_unshift(self, two_answer_aug, negative_vote):
        encoded = encode_votes(two_answer_aug, [negative_vote], use_deviations=True)
        x = encoded.problem.x0.copy()
        assert encoded.deviation_values(x)[0] == pytest.approx(0.0)
        x[encoded.deviation_ids[0]] = DEVIATION_SHIFT + 0.25
        assert encoded.deviation_values(x)[0] == pytest.approx(0.25)

    def test_empty_votes_rejected(self, two_answer_aug):
        with pytest.raises(SGPModelError):
            encode_votes(two_answer_aug, [])

    def test_unreachable_best_answer_skipped(self, two_answer_aug):
        kg = WeightedDiGraph.from_edges([("x", "y", 0.5)], strict=False)
        kg.add_node("island")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"island": 1})
        bad = Vote("q", ("a1", "a2"), "a2")
        good = Vote("q", ("a1", "a2"), "a1")
        encoded = encode_votes(aug, [bad, good], use_deviations=False)
        assert bad in encoded.skipped_votes
        assert encoded.problem.num_constraints == 1


class TestEncodeSemantics:
    def test_constraint_sign_matches_current_ranking(self, two_answer_aug, negative_vote):
        """At the current weights, a losing best answer violates the constraint."""
        encoded = encode_votes(
            two_answer_aug, [negative_vote], use_deviations=False, margin=0.0
        )
        values = encoded.problem.constraint_values(encoded.problem.x0)
        assert values[0] > 0  # a2 currently loses to a1

    def test_constraint_satisfied_for_positive_vote(self, two_answer_aug):
        vote = Vote("q", ("a1", "a2"), "a1")
        encoded = encode_votes(
            two_answer_aug, [vote], use_deviations=False, margin=0.0
        )
        values = encoded.problem.constraint_values(encoded.problem.x0)
        assert values[0] < 0  # a1 currently wins; constraint already holds

    def test_scaling_normalizes_magnitude(self, two_answer_aug, negative_vote):
        """Scaled constraint value = (S_other − S_best) / S_best at x0."""
        encoded = encode_votes(
            two_answer_aug,
            [negative_vote],
            use_deviations=False,
            margin=0.0,
            scale_constraints=True,
        )
        scores = inverse_pdistance(two_answer_aug.graph, "q", ["a1", "a2"])
        expected = (scores["a1"] - scores["a2"]) / scores["a2"]
        value = encoded.problem.constraint_values(encoded.problem.x0)[0]
        assert value == pytest.approx(expected, rel=1e-9)

    def test_unscaled_constraint_is_raw_difference(self, two_answer_aug, negative_vote):
        encoded = encode_votes(
            two_answer_aug,
            [negative_vote],
            use_deviations=False,
            margin=0.0,
            scale_constraints=False,
        )
        scores = inverse_pdistance(two_answer_aug.graph, "q", ["a1", "a2"])
        value = encoded.problem.constraint_values(encoded.problem.x0)[0]
        assert value == pytest.approx(scores["a1"] - scores["a2"], rel=1e-9)

    def test_deviation_absorbs_violation(self, two_answer_aug, negative_vote):
        """With d large enough, even a violated vote's constraint holds."""
        encoded = encode_votes(two_answer_aug, [negative_vote], use_deviations=True)
        x = encoded.problem.x0.copy()
        raw = encoded.problem.constraint_values(x)[0]
        x[encoded.deviation_ids[0]] += raw + 1e-6
        assert encoded.problem.constraint_values(x)[0] < 0

    def test_bad_bounds_rejected(self, two_answer_aug, negative_vote):
        with pytest.raises(SGPModelError):
            encode_votes(
                two_answer_aug, [negative_vote], lower=0.5, upper=0.1
            )

    def test_votes_with_no_adjustable_edges_rejected(self):
        """Query links straight to the answer's entity: nothing to tune."""
        kg = WeightedDiGraph(strict=False)
        kg.add_node("x")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"x": 1})
        vote = Vote("q", ("a1",), "a1")
        with pytest.raises(SGPModelError):
            encode_votes(aug, [vote])
