"""Unit tests for vote types, simulation, and feasibility filtering."""

import pytest

from repro.errors import VoteError
from repro.graph import AugmentedGraph, WeightedDiGraph, helpdesk_graph, random_digraph
from repro.graph.generators import perturb_weights
from repro.votes import (
    GroundTruthOracle,
    Vote,
    VoteSet,
    filter_feasible,
    generate_synthetic_votes,
    generate_votes_from_oracle,
    is_vote_feasible,
)


def build_augmented(seed=0, num_queries=6, num_answers=10):
    """Helpdesk KG with randomly attached queries and answers."""
    kg, topics = helpdesk_graph(num_topics=4, entities_per_topic=8, seed=seed)
    aug = AugmentedGraph(kg)
    entities = [e for members in topics.values() for e in members]
    import numpy as np

    rng = np.random.default_rng(seed)
    for i in range(num_answers):
        picks = rng.choice(len(entities), size=3, replace=False)
        aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
    for i in range(num_queries):
        picks = rng.choice(len(entities), size=2, replace=False)
        aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
    return aug


class TestVote:
    def test_positive_vote(self):
        vote = Vote("q", ("a", "b", "c"), "a")
        assert vote.is_positive and not vote.is_negative
        assert vote.best_rank == 1

    def test_negative_vote(self):
        vote = Vote("q", ("a", "b", "c"), "c")
        assert vote.is_negative
        assert vote.best_rank == 3
        assert vote.k == 3

    def test_others_excludes_best(self):
        vote = Vote("q", ("a", "b", "c"), "b")
        assert vote.others() == ("a", "c")

    def test_best_must_be_in_list(self):
        with pytest.raises(VoteError):
            Vote("q", ("a", "b"), "z")

    def test_empty_list_rejected(self):
        with pytest.raises(VoteError):
            Vote("q", (), "a")

    def test_duplicate_answers_rejected(self):
        with pytest.raises(VoteError):
            Vote("q", ("a", "a", "b"), "a")

    def test_frozen(self):
        vote = Vote("q", ("a", "b"), "a")
        with pytest.raises(AttributeError):
            vote.best_answer = "b"


class TestVoteSet:
    def test_partitions(self):
        votes = VoteSet.from_iterable(
            [
                Vote("q1", ("a", "b"), "a"),
                Vote("q2", ("a", "b"), "b"),
                Vote("q3", ("a", "b"), "b"),
            ]
        )
        assert votes.num_positive == 1
        assert votes.num_negative == 2
        assert len(votes.negative) == 2
        assert votes.negative[0].query == "q2"

    def test_add_validates_type(self):
        votes = VoteSet()
        with pytest.raises(VoteError):
            votes.add("not a vote")

    def test_subset(self):
        votes = VoteSet.from_iterable(
            [Vote(f"q{i}", ("a", "b"), "a") for i in range(5)]
        )
        sub = votes.subset([0, 3])
        assert [v.query for v in sub] == ["q0", "q3"]

    def test_iteration_and_indexing(self):
        vote = Vote("q", ("a",), "a")
        votes = VoteSet([vote])
        assert list(votes) == [vote]
        assert votes[0] is vote
        assert len(votes) == 1

    def test_queries(self):
        votes = VoteSet.from_iterable(
            [Vote("q1", ("a",), "a"), Vote("q1", ("a",), "a")]
        )
        assert votes.queries() == ["q1", "q1"]


class TestSyntheticVotes:
    def test_counts_and_kinds(self):
        aug = build_augmented()
        votes = generate_synthetic_votes(aug, k=5, negative_fraction=0.5, seed=1)
        assert len(votes) == len(aug.query_nodes)
        for vote in votes:
            assert vote.query in aug.query_nodes
            assert set(vote.ranked_answers) <= aug.answer_nodes
            assert vote.k <= 5

    def test_all_negative(self):
        aug = build_augmented()
        votes = generate_synthetic_votes(aug, k=5, negative_fraction=1.0, seed=2)
        assert votes.num_positive == 0
        assert all(v.best_rank >= 2 for v in votes)

    def test_all_positive(self):
        aug = build_augmented()
        votes = generate_synthetic_votes(aug, k=5, negative_fraction=0.0, seed=2)
        assert votes.num_negative == 0

    def test_average_negative_position(self):
        aug = build_augmented(num_queries=40, num_answers=30)
        votes = generate_synthetic_votes(
            aug, k=20, negative_fraction=1.0, avg_negative_position=6, seed=3
        )
        ranks = [v.best_rank for v in votes]
        assert 4.0 <= sum(ranks) / len(ranks) <= 8.0

    def test_deterministic_with_seed(self):
        aug = build_augmented()
        v1 = generate_synthetic_votes(aug, k=5, seed=7)
        v2 = generate_synthetic_votes(aug, k=5, seed=7)
        assert [v.best_answer for v in v1] == [v.best_answer for v in v2]

    def test_bad_parameters(self):
        aug = build_augmented()
        with pytest.raises(ValueError):
            generate_synthetic_votes(aug, negative_fraction=1.5)
        with pytest.raises(VoteError):
            generate_synthetic_votes(aug, avg_negative_position=1)


class TestOracleVotes:
    def test_oracle_votes_match_ground_truth(self):
        aug = build_augmented(seed=5)
        # The "truth" is a perturbed copy: its rankings differ, so some
        # votes come out negative.
        truth = aug.copy()
        noisy_kg = perturb_weights(truth.kg_view(), noise=1.5, seed=9)
        for edge in noisy_kg.edges():
            truth.set_kg_weight(edge.head, edge.tail, edge.weight)
        oracle = GroundTruthOracle(truth)
        votes = generate_votes_from_oracle(aug, oracle, k=6, seed=11)
        assert len(votes) == len(aug.query_nodes)
        for vote in votes:
            expected = oracle(vote.query, vote.ranked_answers)
            assert vote.best_answer == expected

    def test_error_rate_corrupts_votes(self):
        aug = build_augmented(seed=5)
        oracle = GroundTruthOracle(aug)  # truth == current: all positive
        clean = generate_votes_from_oracle(aug, oracle, k=6, error_rate=0.0, seed=1)
        noisy = generate_votes_from_oracle(aug, oracle, k=6, error_rate=1.0, seed=1)
        assert clean.num_negative == 0
        assert noisy.num_negative == len(noisy)

    def test_bad_oracle_rejected(self):
        aug = build_augmented(seed=5)
        with pytest.raises(VoteError):
            generate_votes_from_oracle(aug, lambda q, c: "nonexistent", k=4)


class TestFeasibility:
    def test_positive_votes_always_feasible(self):
        aug = build_augmented()
        votes = generate_synthetic_votes(aug, k=5, negative_fraction=0.0, seed=4)
        for vote in votes:
            assert is_vote_feasible(aug, vote)

    def test_unreachable_best_answer_infeasible(self):
        kg = WeightedDiGraph.from_edges([("x", "y", 0.5)], strict=False)
        kg.add_node("z")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a_good", {"y": 1})
        aug.add_answer("a_island", {"z": 1})  # z unreachable from x
        vote = Vote("q", ("a_good", "a_island"), "a_island")
        assert not is_vote_feasible(aug, vote, max_length=4)

    def test_reachable_swap_feasible(self):
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 0.7), ("x", "z", 0.2)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"z": 1})
        # a1 currently wins (0.7 vs 0.2); voting a2 best is feasible
        # because boosting x->z and cutting x->y flips the order.
        vote = Vote("q", ("a1", "a2"), "a2")
        assert is_vote_feasible(aug, vote, max_length=3)

    def test_filter_feasible_partitions(self):
        kg = WeightedDiGraph.from_edges([("x", "y", 0.5)], strict=False)
        kg.add_node("z")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a_good", {"y": 1})
        aug.add_answer("a_island", {"z": 1})
        good = Vote("q", ("a_good", "a_island"), "a_good")  # positive
        bad = Vote("q", ("a_good", "a_island"), "a_island")  # impossible
        kept, discarded = filter_feasible(aug, VoteSet([good, bad]))
        assert [v.best_answer for v in kept] == ["a_good"]
        assert [v.best_answer for v in discarded] == ["a_island"]

    def test_bad_shared_weight(self):
        aug = build_augmented()
        vote = Vote("q0", tuple(sorted(aug.answer_nodes, key=repr)[:3]),
                    sorted(aug.answer_nodes, key=repr)[1])
        with pytest.raises(ValueError):
            is_vote_feasible(aug, vote, shared_weight=1.0)
