"""The runtime contract checker: each contract fires on a seeded
violation, stays silent on valid data, and costs nothing when disabled.

The whole suite runs with contracts armed (``tests/conftest.py``), so
every other test doubles as a no-false-positive proof; this module adds
the direct positive/negative evidence per contract plus property-based
coverage that the optimizer's normalize path keeps the row-stochastic
contract green on random graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.contracts import (
    ContractViolation,
    check_finite_csr_data,
    check_monotone_deviations,
    check_posynomial,
    check_row_stochastic,
    check_weight_bounds,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
)
from repro.errors import ReproError
from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.graph.normalize import out_weight_sums
from repro.optimize.apply import apply_edge_weights
from repro.sgp.terms import Signomial


@pytest.fixture(autouse=True)
def _contracts_on():
    """Arm contracts for every test here, restoring the prior state.

    Restores in *both* directions: tests here flip the switch mid-test
    (e.g. ``test_disabled_checks_are_noops``), and leaving it off would
    silently disarm every contract seam for the rest of the suite.
    """
    was_enabled = contracts_enabled()
    enable_contracts()
    yield
    if was_enabled:
        enable_contracts()
    else:
        disable_contracts()


def _sub_stochastic_graph():
    return WeightedDiGraph.from_edges(
        [("a", "b", 0.4), ("a", "c", 0.5), ("b", "c", 1.0)]
    )


# ----------------------------------------------------------------------
# the switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_enable_disable_roundtrip(self):
        enable_contracts()
        assert contracts_enabled()
        disable_contracts()
        assert not contracts_enabled()
        enable_contracts()
        assert contracts_enabled()

    def test_disabled_checks_are_noops(self):
        disable_contracts()
        # Flagrant violations pass silently when the switch is off.
        check_weight_bounds(np.array([5.0]), 0.1, 1.0)
        check_monotone_deviations(np.array([np.inf]))
        check_posynomial([(-1.0, {0: 1.0})])
        check_finite_csr_data(np.array([np.nan]))

    def test_violation_is_repro_and_assertion_error(self):
        with pytest.raises(ContractViolation) as excinfo:
            check_weight_bounds(np.array([5.0]), 0.1, 1.0, seam="test")
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, AssertionError)
        assert "test" in str(excinfo.value)


# ----------------------------------------------------------------------
# check_row_stochastic
# ----------------------------------------------------------------------
class TestRowStochastic:
    def test_valid_graph_passes(self):
        check_row_stochastic(_sub_stochastic_graph())

    def test_mass_above_one_fires(self):
        graph = WeightedDiGraph.from_edges(
            [("a", "b", 0.9), ("a", "c", 0.9)], strict=False
        )
        with pytest.raises(ContractViolation, match="exceeds 1"):
            check_row_stochastic(graph, seam="seeded")

    def test_expected_reference_mismatch_fires(self):
        graph = _sub_stochastic_graph()
        with pytest.raises(ContractViolation, match="drifted"):
            check_row_stochastic(
                graph, nodes=["a"], expected={"a": 0.5}, seam="seeded"
            )

    def test_expected_reference_match_passes(self):
        graph = _sub_stochastic_graph()
        check_row_stochastic(graph, nodes=["a"], expected={"a": 0.9})

    def test_edge_filter_excludes_mass(self):
        graph = WeightedDiGraph.from_edges(
            [("a", "b", 0.9), ("a", "qlink", 0.9)], strict=False
        )
        with pytest.raises(ContractViolation):
            check_row_stochastic(graph, seam="seeded")
        # Filtering out the non-KG edge restores validity.
        check_row_stochastic(
            graph, edge_filter=lambda head, tail: tail != "qlink"
        )


# ----------------------------------------------------------------------
# check_weight_bounds
# ----------------------------------------------------------------------
class TestWeightBounds:
    def test_inside_box_passes(self):
        check_weight_bounds(np.array([0.2, 0.5, 1.0]), 0.1, 1.0)

    def test_below_lower_fires(self):
        with pytest.raises(ContractViolation, match="below"):
            check_weight_bounds(np.array([0.05]), 0.1, 1.0, seam="seeded")

    def test_above_upper_fires(self):
        with pytest.raises(ContractViolation, match="above"):
            check_weight_bounds(np.array([1.5]), 0.1, 1.0, seam="seeded")

    def test_non_finite_fires(self):
        with pytest.raises(ContractViolation, match="not finite"):
            check_weight_bounds(np.array([np.nan]), 0.1, 1.0, seam="seeded")

    def test_non_positive_lower_fires(self):
        with pytest.raises(ContractViolation, match="strictly positive"):
            check_weight_bounds(np.array([0.5]), 0.0, 1.0, seam="seeded")

    def test_inverted_bounds_fire(self):
        with pytest.raises(ContractViolation, match="inverted"):
            check_weight_bounds(np.array([0.5]), 0.9, 0.1, seam="seeded")

    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=16),
        st.floats(1e-6, 0.4),
        st.floats(0.6, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_clipping_always_satisfies_box(self, values, lower, upper):
        x = np.clip(np.asarray(values), lower, upper)
        check_weight_bounds(x, lower, upper)


# ----------------------------------------------------------------------
# check_posynomial
# ----------------------------------------------------------------------
class TestPosynomial:
    def test_valid_signomial_passes(self):
        sig = Signomial()
        sig.add_term(2.0, {0: 1.0, 1: -0.5})
        sig.add_term(0.3, {})
        check_posynomial(sig)

    def test_negative_coefficient_fires(self):
        with pytest.raises(ContractViolation, match="posynomial validity"):
            check_posynomial([(-1.0, {0: 1.0})], seam="seeded")

    def test_zero_coefficient_fires(self):
        with pytest.raises(ContractViolation, match="posynomial validity"):
            check_posynomial([(0.0, {})], seam="seeded")

    def test_non_finite_exponent_fires(self):
        with pytest.raises(ContractViolation, match="exponent"):
            check_posynomial([(1.0, {0: float("inf")})], seam="seeded")


# ----------------------------------------------------------------------
# check_monotone_deviations
# ----------------------------------------------------------------------
class TestDeviations:
    def test_small_deviations_pass(self):
        check_monotone_deviations(np.array([-0.3, 0.0, 0.7]))

    def test_empty_passes(self):
        check_monotone_deviations(np.zeros(0))

    def test_beyond_cap_fires(self):
        with pytest.raises(ContractViolation, match="exceeds the encoder cap"):
            check_monotone_deviations(np.array([2e6]), seam="seeded")

    def test_non_finite_fires(self):
        with pytest.raises(ContractViolation, match="not finite"):
            check_monotone_deviations(np.array([np.nan]), seam="seeded")


# ----------------------------------------------------------------------
# check_finite_csr_data
# ----------------------------------------------------------------------
class TestCsrData:
    def test_positive_buffer_passes(self):
        check_finite_csr_data(np.array([0.1, 0.9, 1.0]))

    def test_nan_entry_fires(self):
        with pytest.raises(ContractViolation, match="CSR data"):
            check_finite_csr_data(np.array([0.1, np.nan]), seam="seeded")

    def test_zero_entry_fires(self):
        with pytest.raises(ContractViolation, match="CSR data"):
            check_finite_csr_data(np.array([0.0]), seam="seeded")

    def test_positions_scope_the_check(self):
        data = np.array([np.nan, 0.5, 0.7])
        # Only the patched positions are inspected...
        check_finite_csr_data(data, positions=[1, 2])
        # ...and a bad patched position still fires.
        with pytest.raises(ContractViolation):
            check_finite_csr_data(data, positions=[0], seam="seeded")


# ----------------------------------------------------------------------
# property: the optimizer's normalize path keeps the contract green
# ----------------------------------------------------------------------
@st.composite
def _graph_and_patch(draw):
    """A small augmented graph plus a random patch of its KG weights."""
    num_nodes = draw(st.integers(3, 7))
    nodes = [f"n{i}" for i in range(num_nodes)]
    edges = []
    for head_idx, head in enumerate(nodes):
        num_out = draw(st.integers(1, min(3, num_nodes - 1)))
        tails = draw(
            st.permutations(
                [n for n in nodes if n != head]
            ).map(lambda p, k=num_out: p[:k])
        )
        raw = [draw(st.floats(0.05, 1.0)) for _ in tails]
        mass = draw(st.floats(0.3, 1.0))
        scale = mass / sum(raw)
        edges.extend(
            (head, tail, weight * scale) for tail, weight in zip(tails, raw)
        )
    patch = {
        (head, tail): draw(st.floats(0.01, 2.0))
        for head, tail, _ in edges
        if draw(st.booleans())
    }
    return edges, patch


class TestNormalizePathProperty:
    @given(_graph_and_patch())
    @settings(max_examples=40, deadline=None)
    def test_apply_edge_weights_preserves_mass(self, graph_and_patch):
        edges, patch = graph_and_patch
        kg = WeightedDiGraph.from_edges(edges, strict=False)
        aug = AugmentedGraph(kg)
        before = out_weight_sums(
            aug.graph,
            {head for head, _ in patch},
            edge_filter=aug.is_kg_edge,
        )
        # The row-stochastic contract runs inside apply_edge_weights
        # (contracts are armed by the autouse fixture): no raise means
        # NormalizeEdges conserved every touched node's mass.
        apply_edge_weights(aug, patch, normalize=True)
        after = out_weight_sums(
            aug.graph, before.keys(), edge_filter=aug.is_kg_edge
        )
        for node, mass in before.items():
            assert after[node] == pytest.approx(mass, rel=1e-9)

    def test_engine_patch_contract_fires_on_corruption(self):
        """A seeded NaN reaching the engine's patch path is caught."""
        from repro.serving.engine import SimilarityEngine

        kg = _sub_stochastic_graph()
        aug = AugmentedGraph(kg)
        aug.add_answer("ans", {"c": 1})
        aug.add_query("q", {"a": 1})
        engine = SimilarityEngine(aug)
        engine.scores_for_query("q", ["ans"])  # build the matrix
        kg.set_weight("a", "b", 0.40001)  # valid in-place weight patch
        engine.scores_for_query("q", ["ans"])  # flushes the patch: must pass
        with pytest.raises(ContractViolation):
            # Corrupt the cached buffer directly (bypassing the graph's
            # own validation) and force a re-check.
            engine._matrix.data[0] = np.nan  # noqa - test-only corruption
            check_finite_csr_data(engine._matrix.data, seam="seeded")
