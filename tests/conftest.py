"""Shared fixtures: the paper's Fig. 1 worked example and small graphs."""

import os

import pytest

from repro.graph import AugmentedGraph, WeightedDiGraph

# Run the whole suite with runtime contracts armed (unless the caller
# explicitly disabled them): the tier-1 tests double as the contracts'
# no-false-positive proof.  Set REPRO_CONTRACTS=0 to measure baselines.
if os.environ.get("REPRO_CONTRACTS", "") not in ("0", "false", "no", "off"):
    from repro.devtools.contracts import enable_contracts

    enable_contracts()


@pytest.fixture
def fig1_kg():
    """The entity graph of the paper's Fig. 1 / Section IV-A example.

    Edge weights are the ones used in the worked similarity computation
    for S(v_q, v_a3): Outbox->Email 0.3, Outbox->SendMessage 0.5,
    Email->Outbox 0.4, Email->SendMessage 0.6, SendMessage->Outlook 0.3.
    """
    return WeightedDiGraph.from_edges(
        [
            ("Outbox", "Email", 0.3),
            ("Outbox", "SendMessage", 0.5),
            ("Email", "Outbox", 0.4),
            ("Email", "SendMessage", 0.6),
            ("SendMessage", "Outlook", 0.3),
        ],
        strict=False,
    )


@pytest.fixture
def fig1_aug(fig1_kg):
    """Fig. 1 knowledge graph augmented with the example query and answer.

    The query links to Outbox and Email with weight 0.33 each (the paper
    rounds 1/3 to 0.33 and we follow it so the worked numbers match);
    answer a3 hangs off Outlook with weight 1.
    """
    aug = AugmentedGraph(fig1_kg)
    # add_query normalizes counts; equal counts give 0.5 each, so instead
    # attach with explicit counts then rescale to the paper's 0.33.
    aug.add_query("q", {"Outbox": 1, "Email": 1})
    graph = aug.graph
    graph.set_weight("q", "Outbox", 0.33)
    graph.set_weight("q", "Email", 0.33)
    aug.add_answer("a3", {"Outlook": 1})
    return aug


@pytest.fixture
def fig1_expected_a3():
    """Hand-computed S(v_q, v_a3) truncated at L = 5 (Section IV-A).

    Exactly four walks of at most five edges reach a3; the paper lists
    all four (its trailing "+ ..." covers longer, pruned walks).
    """
    c = 0.15
    return (
        (0.33 * 0.3 * 0.6 * 0.3 * 1.0) * c * (1 - c) ** 5
        + (0.33 * 0.5 * 0.3 * 1.0) * c * (1 - c) ** 4
        + (0.33 * 0.4 * 0.5 * 0.3 * 1.0) * c * (1 - c) ** 5
        + (0.33 * 0.6 * 0.3 * 1.0) * c * (1 - c) ** 4
    )
