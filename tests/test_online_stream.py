"""Unit + integration tests for batching policies and the online loop."""

import numpy as np
import pytest

from repro.errors import VoteError
from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.optimize.online import OnlineOptimizer
from repro.votes import GroundTruthOracle, Vote, generate_votes_from_oracle
from repro.votes.stream import ConflictPolicy, CountPolicy, NegativeCountPolicy


def make_vote(i, negative=True, query=None):
    answers = ("a1", "a2", "a3")
    best = "a2" if negative else "a1"
    return Vote(query=query or f"q{i}", ranked_answers=answers, best_answer=best)


class TestCountPolicy:
    def test_triggers_at_threshold(self):
        policy = CountPolicy(batch_size=3)
        votes = [make_vote(i) for i in range(2)]
        assert not policy.should_optimize(votes)
        votes.append(make_vote(2))
        assert policy.should_optimize(votes)

    def test_invalid(self):
        with pytest.raises(VoteError):
            CountPolicy(batch_size=0)


class TestNegativeCountPolicy:
    def test_positives_do_not_trigger(self):
        policy = NegativeCountPolicy(negative_votes=2)
        votes = [make_vote(i, negative=False) for i in range(10)]
        assert not policy.should_optimize(votes)

    def test_negatives_trigger(self):
        policy = NegativeCountPolicy(negative_votes=2)
        votes = [make_vote(0, negative=False), make_vote(1), make_vote(2)]
        assert policy.should_optimize(votes)

    def test_invalid(self):
        with pytest.raises(VoteError):
            NegativeCountPolicy(negative_votes=0)


class TestConflictPolicy:
    def test_conflict_triggers_immediately(self):
        policy = ConflictPolicy(max_pending=100)
        agree = [make_vote(0, query="same"), make_vote(1, query="same")]
        assert not policy.should_optimize(agree)
        conflicting = agree + [make_vote(2, negative=False, query="same")]
        assert policy.should_optimize(conflicting)

    def test_backlog_fallback(self):
        policy = ConflictPolicy(max_pending=3)
        votes = [make_vote(i) for i in range(3)]  # distinct queries
        assert policy.should_optimize(votes)

    def test_invalid(self):
        with pytest.raises(VoteError):
            ConflictPolicy(max_pending=0)


class TestGeneratorInputs:
    """Policies must work on one-shot iterators without over-draining.

    Regression: ``should_optimize`` used to count with
    ``sum(1 for _ in pending)``, which silently exhausted a generator —
    the caller's votes were gone even when the policy said "not yet".
    """

    @staticmethod
    def counting_iter(votes, consumed):
        for vote in votes:
            consumed.append(vote)
            yield vote

    def test_count_policy_accepts_generator(self):
        policy = CountPolicy(batch_size=3)
        votes = [make_vote(i) for i in range(5)]
        assert policy.should_optimize(v for v in votes)
        assert not policy.should_optimize(v for v in votes[:2])

    def test_count_policy_stops_at_decision(self):
        policy = CountPolicy(batch_size=3)
        votes = [make_vote(i) for i in range(10)]
        consumed = []
        assert policy.should_optimize(self.counting_iter(votes, consumed))
        # Early exit: the iterator is drained no further than needed.
        assert len(consumed) == 3

    def test_count_policy_does_not_drain_voteset(self):
        policy = CountPolicy(batch_size=5)
        pending = [make_vote(i) for i in range(3)]
        assert not policy.should_optimize(pending)
        # A second consultation sees the same votes (lists/VoteSets are
        # not consumed).
        assert not policy.should_optimize(pending)
        assert len(pending) == 3

    def test_negative_policy_accepts_generator(self):
        policy = NegativeCountPolicy(negative_votes=2)
        votes = [make_vote(0, negative=False), make_vote(1), make_vote(2)]
        assert policy.should_optimize(v for v in votes)
        assert not policy.should_optimize(
            v for v in votes if not v.is_negative
        )

    def test_negative_policy_stops_at_decision(self):
        policy = NegativeCountPolicy(negative_votes=2)
        votes = [make_vote(i) for i in range(10)]  # all negative
        consumed = []
        assert policy.should_optimize(self.counting_iter(votes, consumed))
        assert len(consumed) == 2

    def test_conflict_policy_accepts_generator(self):
        policy = ConflictPolicy(max_pending=100)
        votes = [
            make_vote(0, query="same"),
            make_vote(1, negative=False, query="same"),
            make_vote(2, query="other"),
        ]
        consumed = []
        assert policy.should_optimize(self.counting_iter(votes, consumed))
        # The conflict sits at vote 2; vote 3 is never pulled.
        assert len(consumed) == 2

    def test_conflict_policy_backlog_on_generator(self):
        policy = ConflictPolicy(max_pending=3)
        votes = [make_vote(i) for i in range(5)]  # distinct queries
        assert policy.should_optimize(v for v in votes)
        assert not policy.should_optimize(v for v in votes[:2])


@pytest.fixture
def streaming_setup():
    """Corrupted helpdesk graph + an oracle-driven vote stream."""
    kg, topics = helpdesk_graph(num_topics=4, entities_per_topic=8, seed=0)
    entities = [e for members in topics.values() for e in members]
    noisy = perturb_weights(kg, noise=1.5, seed=1)

    def attach(base):
        aug = AugmentedGraph(base)
        rng = np.random.default_rng(42)
        for i in range(10):
            picks = rng.choice(len(entities), size=3, replace=False)
            aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
        for i in range(12):
            picks = rng.choice(len(entities), size=2, replace=False)
            aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
        return aug

    truth = attach(kg)
    deployed = attach(noisy)
    votes = generate_votes_from_oracle(
        deployed, GroundTruthOracle(truth), k=6, seed=3
    )
    return deployed, list(votes)


class TestOnlineOptimizer:
    def test_batches_fire_by_policy(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(deployed, policy=CountPolicy(batch_size=4))
        outcomes = [online.submit(v) for v in votes]
        fired = [o for o in outcomes if o is not None]
        assert len(fired) == len(votes) // 4
        assert online.total_votes_processed == len(fired) * 4

    def test_flush_consumes_remainder(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(deployed, policy=CountPolicy(batch_size=100))
        for vote in votes:
            online.submit(vote)
        outcome = online.flush()
        assert outcome is not None
        assert outcome.num_votes == len(votes)
        assert len(online.pending) == 0

    def test_flush_empty_is_noop(self, streaming_setup):
        deployed, _ = streaming_setup
        online = OnlineOptimizer(deployed)
        assert online.flush() is None

    def test_submit_validates_type(self, streaming_setup):
        deployed, _ = streaming_setup
        online = OnlineOptimizer(deployed)
        with pytest.raises(VoteError):
            online.submit("not a vote")

    def test_strategy_escalation(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(
            deployed,
            policy=CountPolicy(batch_size=len(votes)),
            split_merge_threshold=4,
        )
        for vote in votes:
            outcome = online.submit(vote)
        assert outcome is not None
        assert outcome.strategy == "split-merge"

    def test_small_batches_use_multi(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(
            deployed,
            policy=CountPolicy(batch_size=3),
            split_merge_threshold=10,
        )
        outcome = None
        for vote in votes[:3]:
            outcome = online.submit(vote)
        assert outcome is not None
        assert outcome.strategy == "multi"

    def test_history_and_trajectory(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(deployed, policy=CountPolicy(batch_size=4))
        for vote in votes:
            online.submit(vote)
        assert len(online.omega_trajectory()) == len(online.history)
        for outcome in online.history:
            assert outcome.num_votes == 4
            assert outcome.elapsed > 0

    def test_graph_actually_improves(self, streaming_setup):
        """Streamed optimization must help the negative votes it saw."""
        from repro.eval.harness import rerank_vote

        deployed, votes = streaming_setup
        negatives = [v for v in votes if v.is_negative]
        if not negatives:
            pytest.skip("no negative votes in this stream")
        online = OnlineOptimizer(deployed, policy=CountPolicy(batch_size=4))
        for vote in votes:
            online.submit(vote)
        online.flush()
        improved = sum(
            rerank_vote(deployed, v) < v.best_rank for v in negatives
        )
        degraded = sum(
            rerank_vote(deployed, v) > v.best_rank for v in negatives
        )
        assert improved >= degraded
