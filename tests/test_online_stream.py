"""Unit + integration tests for batching policies and the online loop."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import VoteError
from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.optimize.online import OnlineOptimizer
from repro.votes import GroundTruthOracle, Vote, generate_votes_from_oracle
from repro.votes.stream import ConflictPolicy, CountPolicy, NegativeCountPolicy


def make_vote(i, negative=True, query=None):
    answers = ("a1", "a2", "a3")
    best = "a2" if negative else "a1"
    return Vote(query=query or f"q{i}", ranked_answers=answers, best_answer=best)


class TestCountPolicy:
    def test_triggers_at_threshold(self):
        policy = CountPolicy(batch_size=3)
        votes = [make_vote(i) for i in range(2)]
        assert not policy.should_optimize(votes)
        votes.append(make_vote(2))
        assert policy.should_optimize(votes)

    def test_invalid(self):
        with pytest.raises(VoteError):
            CountPolicy(batch_size=0)


class TestNegativeCountPolicy:
    def test_positives_do_not_trigger(self):
        policy = NegativeCountPolicy(negative_votes=2)
        votes = [make_vote(i, negative=False) for i in range(10)]
        assert not policy.should_optimize(votes)

    def test_negatives_trigger(self):
        policy = NegativeCountPolicy(negative_votes=2)
        votes = [make_vote(0, negative=False), make_vote(1), make_vote(2)]
        assert policy.should_optimize(votes)

    def test_invalid(self):
        with pytest.raises(VoteError):
            NegativeCountPolicy(negative_votes=0)


class TestConflictPolicy:
    def test_conflict_triggers_immediately(self):
        policy = ConflictPolicy(max_pending=100)
        agree = [make_vote(0, query="same"), make_vote(1, query="same")]
        assert not policy.should_optimize(agree)
        conflicting = agree + [make_vote(2, negative=False, query="same")]
        assert policy.should_optimize(conflicting)

    def test_backlog_fallback(self):
        policy = ConflictPolicy(max_pending=3)
        votes = [make_vote(i) for i in range(3)]  # distinct queries
        assert policy.should_optimize(votes)

    def test_invalid(self):
        with pytest.raises(VoteError):
            ConflictPolicy(max_pending=0)


class TestGeneratorInputs:
    """Policies must work on one-shot iterators without over-draining.

    Regression: ``should_optimize`` used to count with
    ``sum(1 for _ in pending)``, which silently exhausted a generator —
    the caller's votes were gone even when the policy said "not yet".
    """

    @staticmethod
    def counting_iter(votes, consumed):
        for vote in votes:
            consumed.append(vote)
            yield vote

    def test_count_policy_accepts_generator(self):
        policy = CountPolicy(batch_size=3)
        votes = [make_vote(i) for i in range(5)]
        assert policy.should_optimize(v for v in votes)
        assert not policy.should_optimize(v for v in votes[:2])

    def test_count_policy_stops_at_decision(self):
        policy = CountPolicy(batch_size=3)
        votes = [make_vote(i) for i in range(10)]
        consumed = []
        assert policy.should_optimize(self.counting_iter(votes, consumed))
        # Early exit: the iterator is drained no further than needed.
        assert len(consumed) == 3

    def test_count_policy_does_not_drain_voteset(self):
        policy = CountPolicy(batch_size=5)
        pending = [make_vote(i) for i in range(3)]
        assert not policy.should_optimize(pending)
        # A second consultation sees the same votes (lists/VoteSets are
        # not consumed).
        assert not policy.should_optimize(pending)
        assert len(pending) == 3

    def test_negative_policy_accepts_generator(self):
        policy = NegativeCountPolicy(negative_votes=2)
        votes = [make_vote(0, negative=False), make_vote(1), make_vote(2)]
        assert policy.should_optimize(v for v in votes)
        assert not policy.should_optimize(
            v for v in votes if not v.is_negative
        )

    def test_negative_policy_stops_at_decision(self):
        policy = NegativeCountPolicy(negative_votes=2)
        votes = [make_vote(i) for i in range(10)]  # all negative
        consumed = []
        assert policy.should_optimize(self.counting_iter(votes, consumed))
        assert len(consumed) == 2

    def test_conflict_policy_accepts_generator(self):
        policy = ConflictPolicy(max_pending=100)
        votes = [
            make_vote(0, query="same"),
            make_vote(1, negative=False, query="same"),
            make_vote(2, query="other"),
        ]
        consumed = []
        assert policy.should_optimize(self.counting_iter(votes, consumed))
        # The conflict sits at vote 2; vote 3 is never pulled.
        assert len(consumed) == 2

    def test_conflict_policy_backlog_on_generator(self):
        policy = ConflictPolicy(max_pending=3)
        votes = [make_vote(i) for i in range(5)]  # distinct queries
        assert policy.should_optimize(v for v in votes)
        assert not policy.should_optimize(v for v in votes[:2])


#: (is_negative, query-bucket) specs; few query buckets so conflicts
#: actually occur in generated sequences.
_VOTE_SPECS = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=3)),
    max_size=25,
)


class TestPolicyConsumptionProperty:
    """``should_optimize`` never over-consumes a one-shot iterator.

    For every policy and any vote sequence, the number of items pulled
    from a generator equals exactly what the decision requires: up to
    the triggering vote on a positive decision, the whole stream on a
    negative one (a negative verdict needs to see everything).
    """

    @staticmethod
    def _votes(specs):
        return [
            make_vote(i, negative=neg, query=f"q{q}")
            for i, (neg, q) in enumerate(specs)
        ]

    @staticmethod
    def _consult(policy, votes):
        consumed = []

        def one_shot():
            for vote in votes:
                consumed.append(vote)
                yield vote

        return policy.should_optimize(one_shot()), consumed

    @given(specs=_VOTE_SPECS, batch_size=st.integers(1, 8))
    def test_count_policy(self, specs, batch_size):
        votes = self._votes(specs)
        decision, consumed = self._consult(CountPolicy(batch_size), votes)
        assert decision == (len(votes) >= batch_size)
        assert len(consumed) == min(len(votes), batch_size)

    @given(specs=_VOTE_SPECS, negative_votes=st.integers(1, 8))
    def test_negative_policy(self, specs, negative_votes):
        votes = self._votes(specs)
        decision, consumed = self._consult(
            NegativeCountPolicy(negative_votes), votes
        )
        negative_positions = [
            i for i, v in enumerate(votes, start=1) if v.is_negative
        ]
        if len(negative_positions) >= negative_votes:
            assert decision
            assert len(consumed) == negative_positions[negative_votes - 1]
        else:
            assert not decision
            assert len(consumed) == len(votes)

    @given(specs=_VOTE_SPECS, max_pending=st.integers(1, 8))
    def test_conflict_policy(self, specs, max_pending):
        votes = self._votes(specs)
        decision, consumed = self._consult(ConflictPolicy(max_pending), votes)
        best_by_query: dict = {}
        expected, needed = False, len(votes)
        for i, vote in enumerate(votes, start=1):
            seen = best_by_query.setdefault(vote.query, vote.best_answer)
            if seen != vote.best_answer or i >= max_pending:
                expected, needed = True, i
                break
        assert decision == expected
        assert len(consumed) == needed


@pytest.fixture
def streaming_setup():
    """Corrupted helpdesk graph + an oracle-driven vote stream."""
    kg, topics = helpdesk_graph(num_topics=4, entities_per_topic=8, seed=0)
    entities = [e for members in topics.values() for e in members]
    noisy = perturb_weights(kg, noise=1.5, seed=1)

    def attach(base):
        aug = AugmentedGraph(base)
        rng = np.random.default_rng(42)
        for i in range(10):
            picks = rng.choice(len(entities), size=3, replace=False)
            aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
        for i in range(12):
            picks = rng.choice(len(entities), size=2, replace=False)
            aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
        return aug

    truth = attach(kg)
    deployed = attach(noisy)
    votes = generate_votes_from_oracle(
        deployed, GroundTruthOracle(truth), k=6, seed=3
    )
    return deployed, list(votes)


class TestOnlineOptimizer:
    def test_batches_fire_by_policy(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(deployed, policy=CountPolicy(batch_size=4))
        outcomes = [online.submit(v) for v in votes]
        fired = [o for o in outcomes if o is not None]
        assert len(fired) == len(votes) // 4
        assert online.total_votes_processed == len(fired) * 4

    def test_flush_consumes_remainder(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(deployed, policy=CountPolicy(batch_size=100))
        for vote in votes:
            online.submit(vote)
        outcome = online.flush()
        assert outcome is not None
        assert outcome.num_votes == len(votes)
        assert len(online.pending) == 0

    def test_flush_empty_is_noop(self, streaming_setup):
        deployed, _ = streaming_setup
        online = OnlineOptimizer(deployed)
        assert online.flush() is None

    def test_submit_validates_type(self, streaming_setup):
        deployed, _ = streaming_setup
        online = OnlineOptimizer(deployed)
        with pytest.raises(VoteError):
            online.submit("not a vote")

    def test_strategy_escalation(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(
            deployed,
            policy=CountPolicy(batch_size=len(votes)),
            split_merge_threshold=4,
        )
        for vote in votes:
            outcome = online.submit(vote)
        assert outcome is not None
        assert outcome.strategy == "split-merge"

    def test_small_batches_use_multi(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(
            deployed,
            policy=CountPolicy(batch_size=3),
            split_merge_threshold=10,
        )
        outcome = None
        for vote in votes[:3]:
            outcome = online.submit(vote)
        assert outcome is not None
        assert outcome.strategy == "multi"

    def test_history_and_trajectory(self, streaming_setup):
        deployed, votes = streaming_setup
        online = OnlineOptimizer(deployed, policy=CountPolicy(batch_size=4))
        for vote in votes:
            online.submit(vote)
        assert len(online.omega_trajectory()) == len(online.history)
        for outcome in online.history:
            assert outcome.num_votes == 4
            assert outcome.elapsed > 0

    def test_graph_actually_improves(self, streaming_setup):
        """Streamed optimization must help the negative votes it saw."""
        from repro.eval.harness import rerank_vote

        deployed, votes = streaming_setup
        negatives = [v for v in votes if v.is_negative]
        if not negatives:
            pytest.skip("no negative votes in this stream")
        online = OnlineOptimizer(deployed, policy=CountPolicy(batch_size=4))
        for vote in votes:
            online.submit(vote)
        online.flush()
        improved = sum(
            rerank_vote(deployed, v) < v.best_rank for v in negatives
        )
        degraded = sum(
            rerank_vote(deployed, v) > v.best_rank for v in negatives
        )
        assert improved >= degraded
