"""Unit tests for the corpus generator and entity extraction."""

import pytest

from repro.errors import CorpusError
from repro.qa import EntityVocabulary, generate_helpdesk_corpus, tokenize
from repro.qa.corpus import Document, QAPair


class TestTokenize:
    def test_lowercase_and_split(self):
        assert tokenize("Refund NOT arriving!") == ["refund", "not", "arriving"]

    def test_keeps_digits_and_underscores(self):
        assert tokenize("cart_3 item2") == ["cart_3", "item2"]

    def test_empty(self):
        assert tokenize("...") == []


class TestEntityVocabulary:
    def test_basic_extraction(self):
        vocab = EntityVocabulary(["refund", "cart"])
        counts = vocab.extract("my refund for the cart refund")
        assert counts == {"refund": 2, "cart": 1}

    def test_case_insensitive(self):
        vocab = EntityVocabulary(["Outlook"])
        assert vocab.extract("OUTLOOK crashed") == {"Outlook": 1}

    def test_multiword_longest_match(self):
        vocab = EntityVocabulary(["send", "send message"])
        counts = vocab.extract("please send message now, then send")
        assert counts == {"send message": 1, "send": 1}

    def test_no_overlapping_matches(self):
        vocab = EntityVocabulary(["send message", "message queue"])
        counts = vocab.extract("send message queue")
        # "send message" consumes "message"; "queue" alone matches nothing.
        assert counts == {"send message": 1}

    def test_unknown_tokens_ignored(self):
        vocab = EntityVocabulary(["refund"])
        assert vocab.extract("totally unrelated text") == {}

    def test_contains_and_len(self):
        vocab = EntityVocabulary(["refund", "cart"])
        assert "refund" in vocab
        assert "REFUND" in vocab
        assert "ghost" not in vocab
        assert len(vocab) == 2

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(CorpusError):
            EntityVocabulary([])

    def test_tokenless_entity_rejected(self):
        with pytest.raises(CorpusError):
            EntityVocabulary(["!!!"])

    def test_colliding_entities_rejected(self):
        with pytest.raises(CorpusError):
            EntityVocabulary(["Send-Message", "send message"])

    def test_extract_many(self):
        vocab = EntityVocabulary(["a1", "b2"])
        results = vocab.extract_many(["a1 b2", "b2 b2"])
        assert results[0] == {"a1": 1, "b2": 1}
        assert results[1] == {"b2": 2}


class TestHelpdeskCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_helpdesk_corpus(
            num_topics=4,
            entities_per_topic=6,
            docs_per_topic=3,
            num_train_questions=20,
            num_test_questions=10,
            seed=5,
        )

    def test_shapes(self, corpus):
        assert len(corpus.topics) == 4
        assert len(corpus.documents) == 12
        assert len(corpus.train_pairs) <= 20
        assert len(corpus.test_pairs) <= 10
        assert len(corpus.vocabulary) == 24

    def test_documents_have_entities(self, corpus):
        for doc in corpus.documents:
            assert corpus.vocabulary.extract(doc.text), doc.doc_id

    def test_documents_focus_on_their_topic(self, corpus):
        for doc in corpus.documents:
            counts = corpus.vocabulary.extract(doc.text)
            own = sum(
                c for e, c in counts.items() if e in corpus.topics[doc.topic]
            )
            assert own == sum(counts.values())  # docs only use own-topic terms

    def test_questions_reference_existing_docs(self, corpus):
        doc_ids = {doc.doc_id for doc in corpus.documents}
        for pair in corpus.train_pairs + corpus.test_pairs:
            assert pair.best_doc in doc_ids

    def test_questions_mostly_match_their_doc_topic(self, corpus):
        doc_by_id = {doc.doc_id: doc for doc in corpus.documents}
        matched = 0
        total = 0
        for pair in corpus.train_pairs:
            counts = corpus.vocabulary.extract(pair.text)
            if not counts:
                continue
            topic = doc_by_id[pair.best_doc].topic
            own = sum(c for e, c in counts.items() if e in corpus.topics[topic])
            total += sum(counts.values())
            matched += own
        assert matched / total > 0.6  # cross-topic noise is the minority

    def test_deterministic(self):
        c1 = generate_helpdesk_corpus(num_topics=3, entities_per_topic=4, seed=9)
        c2 = generate_helpdesk_corpus(num_topics=3, entities_per_topic=4, seed=9)
        assert [d.text for d in c1.documents] == [d.text for d in c2.documents]
        assert [p.text for p in c1.train_pairs] == [p.text for p in c2.train_pairs]

    def test_document_texts_mapping(self, corpus):
        texts = corpus.document_texts()
        assert len(texts) == len(corpus.documents)
        assert texts[corpus.documents[0].doc_id] == corpus.documents[0].text

    def test_invalid_parameters(self):
        with pytest.raises(CorpusError):
            generate_helpdesk_corpus(num_topics=1)
        with pytest.raises(CorpusError):
            generate_helpdesk_corpus(docs_per_topic=0)

    def test_many_topics_fall_back_to_generic_names(self):
        corpus = generate_helpdesk_corpus(
            num_topics=20, entities_per_topic=2, docs_per_topic=1,
            num_train_questions=2, num_test_questions=1, seed=0,
        )
        assert len(corpus.topics) == 20
