"""The push propagation backend and the backend registry.

Three layers are covered here:

- the registry seam (``register_backend`` / ``get_backend`` round-trips,
  unknown names, shadowing protection);
- the push kernel itself against the dense reference — the paper's
  Fig. 1 worked example, exact mode, and a hypothesis property that
  push agrees with dense within the derived error budget on random
  graphs;
- the serving engine's push path — cache hits, the rekey-vs-repush
  decision under weight patches, answer appends, and the refusal of
  graph-only backends — with the runtime contracts armed (conftest),
  so every engine-served push vector is checked against a cold dense
  recompute.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    EvaluationError,
    NodeNotFoundError,
    UnknownBackendError,
)
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import WeightedDiGraph
from repro.graph.generators import random_digraph
from repro.serving import SimilarityEngine, SimilarityParams
from repro.similarity.backend import (
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.similarity.inverse_pdistance import inverse_pdistance
from repro.similarity.push import (
    PropagationResult,
    amplification_bound,
    out_adjacency,
    push_propagate,
    remaining_gain,
)

#: Float-comparison slop on top of the analytic error budget: push and
#: dense sum the same products in different orders.
FP_SLOP = 1e-12

PUSH_PARAMS = SimilarityParams(
    k=5, max_length=6, restart_prob=0.2, backend="push"
)


def build_aug(seed=3, num_entities=12):
    kg = random_digraph(num_entities, avg_degree=3.0, seed=seed, out_mass=0.9)
    aug = AugmentedGraph(kg)
    entities = sorted(kg.nodes())
    for i in range(4):
        aug.add_answer(
            f"a{i}",
            {entities[(i + j) % len(entities)]: 1.0 + j for j in range(3)},
        )
    for i in range(3):
        aug.add_query(
            f"q{i}",
            {entities[i]: 1.0, entities[(i + 5) % len(entities)]: 2.0},
        )
    return aug, entities


def assert_push_matches_dense(aug, params):
    """Each attached query: |push − dense| ≤ ε per target, both APIs."""
    targets = sorted(aug.answer_nodes, key=repr)
    queries = sorted(aug.query_nodes, key=repr)
    budget = params.push_tolerance + FP_SLOP
    push = get_backend("push")
    dense = get_backend("dense")
    batch = push.scores_batch(aug.graph, queries, targets, params=params)
    for query in queries:
        got = push.scores(aug.graph, query, targets, params=params)
        want = dense.scores(aug.graph, query, targets, params=params)
        for target in targets:
            assert got[target] == pytest.approx(want[target], abs=budget)
            assert batch[query][target] == pytest.approx(
                want[target], abs=budget
            )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class _ToyBackend:
    name = "toy"
    supports_matrix = False

    def scores(self, graph, source, targets, *, params):
        return {t: 0.0 for t in targets}

    def scores_batch(self, graph, sources, targets, *, params):
        return {s: {t: 0.0 for t in targets} for s in sources}

    def propagate(self, *args, **kwargs):
        raise NotImplementedError


class TestRegistry:
    def test_builtin_backends_present(self):
        assert {"dense", "push", "ppr", "random_walk"} <= set(
            available_backends()
        )

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownBackendError, match="no_such_kernel"):
            get_backend("no_such_kernel")

    def test_register_round_trip(self):
        backend = _ToyBackend()
        try:
            assert register_backend(backend) is backend
            assert get_backend("toy") is backend
            assert "toy" in available_backends()
            assert resolve_backend("toy") is backend
            assert (
                resolve_backend(SimilarityParams(backend="toy")) is backend
            )
        finally:
            assert unregister_backend("toy") is backend
        with pytest.raises(UnknownBackendError):
            get_backend("toy")

    def test_reregistering_same_object_is_noop(self):
        backend = _ToyBackend()
        try:
            register_backend(backend)
            register_backend(backend)  # same object: fine
        finally:
            unregister_backend("toy")

    def test_shadowing_requires_replace(self):
        first, second = _ToyBackend(), _ToyBackend()
        try:
            register_backend(first)
            with pytest.raises(ValueError, match="already registered"):
                register_backend(second)
            assert register_backend(second, replace=True) is second
            assert get_backend("toy") is second
        finally:
            unregister_backend("toy")

    def test_nameless_backend_rejected(self):
        class Nameless:
            pass

        with pytest.raises(ValueError, match="name"):
            register_backend(Nameless())

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownBackendError):
            unregister_backend("never_registered")

    def test_unknown_backend_via_params(self):
        params = SimilarityParams(backend="not_yet_registered")
        with pytest.raises(UnknownBackendError):
            resolve_backend(params)


# ----------------------------------------------------------------------
# the push kernel against the dense reference
# ----------------------------------------------------------------------
class TestPushKernel:
    def test_fig1_worked_example(self, fig1_aug, fig1_expected_a3):
        params = SimilarityParams(
            max_length=5, restart_prob=0.15, backend="push"
        )
        scores = get_backend("push").scores(
            fig1_aug.graph, "q", ["a3"], params=params
        )
        assert scores["a3"] == pytest.approx(fig1_expected_a3, rel=1e-12)

    def test_exact_mode_matches_dense_tightly(self):
        aug, _ = build_aug()
        assert_push_matches_dense(
            aug, PUSH_PARAMS.replace(push_tolerance=0.0)
        )

    def test_coarse_tolerance_still_within_budget(self):
        aug, _ = build_aug()
        assert_push_matches_dense(
            aug, PUSH_PARAMS.replace(push_tolerance=1e-3)
        )

    def test_max_length_one_scores_only_direct_links(self, fig1_aug):
        params = SimilarityParams(
            max_length=1, restart_prob=0.15, backend="push"
        )
        graph = fig1_aug.graph
        scores = get_backend("push").scores(
            graph, "q", ["Outbox", "Email", "a3"], params=params
        )
        c = 0.15
        assert scores["Outbox"] == pytest.approx(0.33 * c * (1 - c))
        assert scores["Email"] == pytest.approx(0.33 * c * (1 - c))
        assert scores["a3"] == 0.0

    def test_unknown_source_or_target_raises(self, fig1_aug):
        push = get_backend("push")
        params = SimilarityParams(backend="push")
        with pytest.raises(NodeNotFoundError):
            push.scores(fig1_aug.graph, "ghost", ["a3"], params=params)
        with pytest.raises(NodeNotFoundError):
            push.scores(fig1_aug.graph, "q", ["ghost"], params=params)

    def test_error_bound_accounting(self):
        aug, _ = build_aug()
        graph = aug.graph
        matrix = graph.adjacency_matrix()
        out_matrix = out_adjacency(matrix)
        index = graph.node_index()
        successors = graph.successors("q0")
        seed_idx = np.array([index[n] for n in successors], dtype=np.int64)
        seed_weights = np.array(list(successors.values()))
        target_idx = np.array(
            [index[a] for a in sorted(aug.answer_nodes, key=repr)],
            dtype=np.int64,
        )
        tolerance = 1e-4
        result = push_propagate(
            out_matrix,
            seed_idx,
            seed_weights,
            target_idx,
            max_length=6,
            restart_prob=0.2,
            tolerance=tolerance,
        )
        exact = push_propagate(
            out_matrix,
            seed_idx,
            seed_weights,
            target_idx,
            max_length=6,
            restart_prob=0.2,
            tolerance=0.0,
        )
        assert 0.0 <= result.error_bound <= tolerance
        assert exact.error_bound == 0.0
        assert np.all(
            np.abs(result.scores - exact.scores)
            <= result.error_bound + FP_SLOP
        )
        assert result.edges_touched <= exact.edges_touched
        assert result.touched_nodes is not None
        assert result.rho >= 1.0

    def test_validation(self):
        out_matrix = out_adjacency(
            WeightedDiGraph.from_edges([("a", "b", 0.5)]).adjacency_matrix()
        )
        seed = np.array([0], dtype=np.int64)
        weights = np.array([1.0])
        targets = np.array([1], dtype=np.int64)
        with pytest.raises(ValueError):
            push_propagate(
                out_matrix, seed, weights, targets,
                max_length=0, restart_prob=0.15,
            )
        with pytest.raises(ValueError):
            push_propagate(
                out_matrix, seed, weights, targets,
                max_length=5, restart_prob=1.0,
            )
        with pytest.raises(ValueError):
            push_propagate(
                out_matrix, seed, weights, targets,
                max_length=5, restart_prob=0.15, tolerance=-1e-9,
            )
        with pytest.raises(ValueError):
            push_propagate(
                out_matrix, seed, weights, targets,
                max_length=5, restart_prob=0.15, rho=0.5,
            )

    def test_remaining_gain_zero_at_last_level(self):
        assert (
            remaining_gain(4, max_length=5, restart_prob=0.15, rho=1.0)
            == 0.0
        )

    def test_amplification_bound_floor(self):
        sub = WeightedDiGraph.from_edges([("a", "b", 0.3)])
        assert amplification_bound(
            out_adjacency(sub.adjacency_matrix())
        ) == 1.0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_entities=st.integers(min_value=5, max_value=25),
        tolerance=st.sampled_from([0.0, 1e-12, 1e-8, 1e-4]),
        max_length=st.integers(min_value=1, max_value=7),
    )
    def test_push_matches_dense_within_budget(
        self, seed, num_entities, tolerance, max_length
    ):
        aug, _ = build_aug(seed=seed, num_entities=num_entities)
        assert_push_matches_dense(
            aug,
            PUSH_PARAMS.replace(
                push_tolerance=tolerance, max_length=max_length
            ),
        )


# ----------------------------------------------------------------------
# the serving engine's push path
# ----------------------------------------------------------------------
def two_component_aug():
    """Queries live in one component; the other is never touched.

    Component 1 (``A → B → C``, plus a back-edge) carries the query and
    the answer; component 2 (``X ↔ Y``) exists so a weight patch can be
    provably disjoint from every served push's touched set.
    """
    kg = WeightedDiGraph.from_edges(
        [
            ("A", "B", 0.5),
            ("B", "C", 0.4),
            ("C", "A", 0.3),
            ("X", "Y", 0.6),
            ("Y", "X", 0.6),
        ],
        strict=False,
    )
    aug = AugmentedGraph(kg)
    aug.add_query("q", {"A": 1.0})
    aug.add_answer("ans", {"C": 1.0})
    return aug


class TestEnginePush:
    def test_served_scores_match_cold_dense(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PUSH_PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        budget = PUSH_PARAMS.push_tolerance + FP_SLOP
        for query in sorted(aug.query_nodes, key=repr):
            served = engine.scores_for_query(query, targets)
            cold = inverse_pdistance(
                aug.graph, query, targets, params=PUSH_PARAMS
            )
            for target in targets:
                assert served[target] == pytest.approx(
                    cold[target], abs=budget
                )
        assert engine.stats().push_serves == len(aug.query_nodes)
        assert engine.stats().push_edges_touched > 0
        engine.close()

    def test_cache_hit_skips_push(self):
        aug = two_component_aug()
        engine = SimilarityEngine(aug, params=PUSH_PARAMS)
        first = engine.scores_for_query("q", ["ans"])
        second = engine.scores_for_query("q", ["ans"])
        assert first == second
        stats = engine.stats()
        assert stats.push_serves == 1
        assert stats.cache_hits == 1
        engine.close()

    def test_disjoint_patch_rekeys_cached_push(self):
        aug = two_component_aug()
        engine = SimilarityEngine(aug, params=PUSH_PARAMS)
        before = engine.scores_for_query("q", ["ans"])
        # Lowering a weight keeps ρ valid; X is unreachable from q.
        aug.graph.set_weight("X", "Y", 0.1)
        after = engine.scores_for_query("q", ["ans"])
        assert after == before  # carried verbatim, not recomputed
        stats = engine.stats()
        assert stats.push_rekeys == 1
        assert stats.push_repushes == 0
        assert stats.push_serves == 1
        engine.close()

    def test_intersecting_patch_repushes(self):
        aug = two_component_aug()
        engine = SimilarityEngine(aug, params=PUSH_PARAMS)
        engine.scores_for_query("q", ["ans"])
        aug.graph.set_weight("B", "C", 0.2)
        served = engine.scores_for_query("q", ["ans"])
        cold = inverse_pdistance(
            aug.graph, "q", ["ans"], params=PUSH_PARAMS
        )
        assert served["ans"] == pytest.approx(
            cold["ans"], abs=PUSH_PARAMS.push_tolerance + FP_SLOP
        )
        stats = engine.stats()
        assert stats.push_repushes == 1
        assert stats.push_serves == 1  # the repair is not a serve
        engine.close()

    def test_answer_append_keeps_push_cache_valid(self):
        aug, entities = build_aug()
        engine = SimilarityEngine(aug, params=PUSH_PARAMS)
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        aug.add_answer("a_new", {entities[0]: 1.0})
        served = engine.scores_for_query(
            "q0", targets + ["a_new"]
        )
        cold = inverse_pdistance(
            aug.graph, "q0", targets + ["a_new"], params=PUSH_PARAMS
        )
        for target in targets + ["a_new"]:
            assert served[target] == pytest.approx(
                cold[target], abs=PUSH_PARAMS.push_tolerance + FP_SLOP
            )
        engine.close()

    def test_graph_only_backend_refused(self):
        aug = two_component_aug()
        engine = SimilarityEngine(aug, params=PUSH_PARAMS)
        with pytest.raises(EvaluationError, match="matrix-level"):
            engine.scores_for_query(
                "q", ["ans"], params=SimilarityParams(backend="ppr")
            )
        engine.close()

    def test_batch_routes_through_push(self):
        aug, _ = build_aug()
        engine = SimilarityEngine(aug, params=PUSH_PARAMS)
        queries = sorted(aug.query_nodes, key=repr)
        targets = sorted(aug.answer_nodes, key=repr)
        batch = engine.score_batch(queries, targets)
        budget = PUSH_PARAMS.push_tolerance + FP_SLOP
        for query in queries:
            cold = inverse_pdistance(
                aug.graph, query, targets, params=PUSH_PARAMS
            )
            for target in targets:
                assert batch[query][target] == pytest.approx(
                    cold[target], abs=budget
                )
        assert engine.stats().push_serves == len(queries)
        engine.close()

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        tolerance=st.sampled_from([0.0, 1e-8, 1e-4]),
        patches=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.floats(min_value=0.05, max_value=0.9),
            ),
            max_size=3,
        ),
    )
    def test_push_survives_patch_sequences(self, seed, tolerance, patches):
        """Engine-served push tracks the mutating graph within budget.

        Each step patches one KG edge (chosen pseudo-randomly from the
        patch seed), re-serves every query, and compares against a cold
        dense recompute on the *current* graph.  Contracts are armed by
        conftest, so the engine additionally self-checks every push.
        """
        aug, _ = build_aug(seed=seed, num_entities=10)
        params = PUSH_PARAMS.replace(push_tolerance=tolerance)
        budget = tolerance + FP_SLOP
        engine = SimilarityEngine(aug, params=params)
        queries = sorted(aug.query_nodes, key=repr)
        targets = sorted(aug.answer_nodes, key=repr)
        kg_edges = sorted(
            (
                (e.tail, e.head)
                for e in aug.graph.edges()
                if aug.is_kg_edge(e.tail, e.head)
            ),
        )
        try:
            for step, (edge_pick, weight) in enumerate(
                [(None, None)] + patches
            ):
                if edge_pick is not None and kg_edges:
                    tail, head = kg_edges[edge_pick % len(kg_edges)]
                    aug.graph.set_weight(tail, head, weight)
                for query in queries:
                    served = engine.scores_for_query(query, targets)
                    cold = inverse_pdistance(
                        aug.graph, query, targets, params=params
                    )
                    for target in targets:
                        assert served[target] == pytest.approx(
                            cold[target], abs=budget
                        ), f"step {step}, query {query}"
        finally:
            engine.close()
