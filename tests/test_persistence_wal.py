"""Unit tests for the durability layer: WAL, snapshots, durable store."""

import json
import logging

import pytest

from repro.errors import PersistenceError
from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.obs import MetricsRegistry
from repro.persistence import DurableStore, SnapshotStore, VoteWAL, WalRecord
from repro.persistence.wal import vote_from_payload, vote_to_payload
from repro.votes import Vote


def tiny_aug(weight=0.5):
    kg = WeightedDiGraph.from_edges(
        [("x", "y", weight), ("x", "z", 0.25)], strict=False
    )
    aug = AugmentedGraph(kg)
    aug.add_query("q", {"x": 1})
    aug.add_answer("a1", {"y": 1})
    aug.add_answer("a2", {"z": 1})
    return aug


def make_vote(i=0, weight=1.0):
    return Vote(
        query=f"q{i}", ranked_answers=("a1", "a2"), best_answer="a2",
        weight=weight,
    )


class TestVotePayload:
    def test_round_trip_preserves_every_field(self):
        vote = make_vote(3, weight=2.5)
        rebuilt = vote_from_payload(vote_to_payload(vote))
        assert rebuilt == vote
        assert rebuilt.weight == 2.5
        assert rebuilt.ranked_answers == ("a1", "a2")

    def test_default_weight_backfilled(self):
        payload = vote_to_payload(make_vote())
        del payload["weight"]
        assert vote_from_payload(payload).weight == 1.0

    def test_non_scalar_node_id_rejected(self):
        vote = Vote(query=("q", 1), ranked_answers=("a1", "a2"),
                    best_answer="a2")
        with pytest.raises(PersistenceError, match="JSON-serializable"):
            vote_to_payload(vote)

    def test_malformed_payload_rejected(self):
        with pytest.raises(PersistenceError, match="malformed"):
            vote_from_payload({"query": "q"})


class TestVoteWAL:
    def test_append_assigns_monotonic_seqs(self, tmp_path):
        with VoteWAL(tmp_path / "votes.wal") as wal:
            seqs = [wal.append(make_vote(i)) for i in range(3)]
            assert seqs == [1, 2, 3]
            assert wal.last_seq == 3
            assert len(wal) == 3

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "votes.wal"
        with VoteWAL(path) as wal:
            for i in range(2):
                wal.append(make_vote(i))
        with VoteWAL(path) as wal:
            assert wal.last_seq == 2
            assert wal.append(make_vote(9)) == 3
            assert [r.vote.query for r in wal.records()] == ["q0", "q1", "q9"]

    def test_records_after_seq_filters(self, tmp_path):
        with VoteWAL(tmp_path / "votes.wal") as wal:
            for i in range(4):
                wal.append(make_vote(i))
            tail = wal.records(after_seq=2)
            assert [r.seq for r in tail] == [3, 4]

    def test_torn_unterminated_tail_is_truncated(self, tmp_path):
        path = tmp_path / "votes.wal"
        with VoteWAL(path) as wal:
            wal.append(make_vote(0))
            wal.append(make_vote(1))
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 3, "vote": {"query"')
        registry = MetricsRegistry()
        with VoteWAL(path, registry=registry) as wal:
            assert wal.last_seq == 2
            assert registry.value("wal_torn_records_total") == 1
            # The torn bytes are gone from disk, not just ignored.
            assert not path.read_bytes().endswith(b'"query"')
            assert wal.append(make_vote(2)) == 3

    def test_torn_terminated_garbage_tail_is_truncated(self, tmp_path, caplog):
        path = tmp_path / "votes.wal"
        with VoteWAL(path) as wal:
            wal.append(make_vote(0))
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
        with caplog.at_level(logging.WARNING, logger="repro.persistence.wal"):
            with VoteWAL(path) as wal:
                assert wal.last_seq == 1
                assert len(wal) == 1
        # A terminated record may have been fsynced and acknowledged
        # before rotting, so discarding it is loud, not just a counter.
        assert "unparsable final" in caplog.text

    def test_ensure_seq_at_least_advances_never_rewinds(self, tmp_path):
        with VoteWAL(tmp_path / "votes.wal") as wal:
            wal.append(make_vote(0))
            wal.ensure_seq_at_least(5)
            assert wal.last_seq == 5
            assert wal.append(make_vote(1)) == 6
            wal.ensure_seq_at_least(2)  # lower floor: no rewind
            assert wal.append(make_vote(2)) == 7
            with pytest.raises(PersistenceError, match="≥ 0"):
                wal.ensure_seq_at_least(-1)

    def test_corruption_before_tail_is_fatal(self, tmp_path):
        path = tmp_path / "votes.wal"
        with VoteWAL(path) as wal:
            wal.append(make_vote(0))
            wal.append(make_vote(1))
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"garbage\n" + lines[1])
        with pytest.raises(PersistenceError, match="corrupt WAL record"):
            VoteWAL(path)

    def test_backwards_sequence_is_fatal(self, tmp_path):
        path = tmp_path / "votes.wal"
        record = {"seq": 5, "vote": vote_to_payload(make_vote())}
        earlier = {"seq": 2, "vote": vote_to_payload(make_vote(1))}
        path.write_bytes(
            json.dumps(record).encode() + b"\n"
            + json.dumps(earlier).encode() + b"\n"
        )
        with pytest.raises(PersistenceError, match="backwards"):
            VoteWAL(path)

    def test_rotate_drops_covered_records_keeps_counter(self, tmp_path):
        path = tmp_path / "votes.wal"
        with VoteWAL(path) as wal:
            for i in range(4):
                wal.append(make_vote(i))
            assert wal.rotate(up_to_seq=3) == 1
            assert [r.seq for r in wal.records()] == [4]
            # Sequence numbers never rewind after rotation.
            assert wal.append(make_vote(9)) == 5
        with VoteWAL(path) as wal:
            assert [r.seq for r in wal.records()] == [4, 5]

    def test_append_after_close_raises(self, tmp_path):
        wal = VoteWAL(tmp_path / "votes.wal")
        wal.close()
        with pytest.raises(PersistenceError, match="closed"):
            wal.append(make_vote())


class TestSnapshotStore:
    def test_write_then_latest_round_trips(self, tmp_path):
        store = SnapshotStore(tmp_path)
        aug = tiny_aug(weight=0.7)
        path = store.write(aug, last_applied_seq=12)
        assert path.name == f"snapshot-{12:016d}.json"
        loaded, seq = store.latest()
        assert seq == 12
        assert loaded.kg_weight("x", "y") == 0.7

    def test_prune_keeps_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (1, 2, 3):
            store.write(tiny_aug(), last_applied_seq=seq)
        names = sorted(p.name for p in tmp_path.glob("snapshot-*.json"))
        assert names == [
            f"snapshot-{2:016d}.json", f"snapshot-{3:016d}.json",
        ]

    def test_invalid_newest_snapshot_is_skipped(self, tmp_path):
        registry = MetricsRegistry()
        store = SnapshotStore(tmp_path, registry=registry)
        store.write(tiny_aug(weight=0.6), last_applied_seq=5)
        (tmp_path / f"snapshot-{9:016d}.json").write_text("{not json")
        loaded, seq = store.latest()
        assert seq == 5
        assert loaded.kg_weight("x", "y") == 0.6
        assert registry.value("snapshot_invalid_total") == 1

    def test_structurally_broken_newest_snapshot_is_skipped(self, tmp_path):
        """A snapshot whose body raises KeyError (not GraphError) is skipped."""
        registry = MetricsRegistry()
        store = SnapshotStore(tmp_path, registry=registry)
        store.write(tiny_aug(weight=0.6), last_applied_seq=5)
        # Valid header and meta, but no graph keys: load raises KeyError.
        (tmp_path / f"snapshot-{9:016d}.json").write_text(json.dumps({
            "format": "repro-augmented-graph", "version": 1,
            "meta": {"last_applied_seq": 9},
        }))
        loaded, seq = store.latest()
        assert seq == 5
        assert loaded.kg_weight("x", "y") == 0.6
        assert registry.value("snapshot_invalid_total") == 1

    def test_mis_shaped_edges_snapshot_is_skipped(self, tmp_path):
        """Edge entries that do not unpack to [head, tail, weight]."""
        store = SnapshotStore(tmp_path)
        good = store.write(tiny_aug(weight=0.6), last_applied_seq=5)
        payload = json.loads(good.read_text())
        payload["edges"] = [["x"]]  # ValueError on unpack
        (tmp_path / f"snapshot-{9:016d}.json").write_text(json.dumps(payload))
        loaded, seq = store.latest()
        assert seq == 5

    def test_boolean_meta_seq_is_invalid(self, tmp_path):
        """bool is an int subclass; True must not pass as sequence 1."""
        registry = MetricsRegistry()
        store = SnapshotStore(tmp_path, registry=registry)
        store.write(tiny_aug(weight=0.6), last_applied_seq=5)
        newer = store.write(tiny_aug(weight=0.8), last_applied_seq=7)
        payload = json.loads(newer.read_text())
        payload["meta"]["last_applied_seq"] = True
        newer.write_text(json.dumps(payload))
        loaded, seq = store.latest()
        assert seq == 5
        assert loaded.kg_weight("x", "y") == 0.6
        assert registry.value("snapshot_invalid_total") == 1

    def test_newest_seq_from_file_names(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.newest_seq() == 0
        store.write(tiny_aug(), last_applied_seq=5)
        store.write(tiny_aug(), last_applied_seq=9)
        assert store.newest_seq() == 9

    def test_no_snapshot_returns_none(self, tmp_path):
        assert SnapshotStore(tmp_path).latest() is None

    def test_invalid_keep_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            SnapshotStore(tmp_path, keep=0)

    def test_negative_seq_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            SnapshotStore(tmp_path).write(tiny_aug(), last_applied_seq=-1)


class TestDurableStore:
    def test_checkpoint_snapshots_and_rotates(self, tmp_path):
        with DurableStore(tmp_path) as store:
            for i in range(3):
                store.log_vote(make_vote(i))
            store.checkpoint(tiny_aug(), last_applied_seq=2)
            assert [r.seq for r in store.wal.records()] == [3]
            assert store.snapshots.latest()[1] == 2

    def test_recover_returns_snapshot_plus_tail(self, tmp_path):
        registry = MetricsRegistry()
        with DurableStore(tmp_path, registry=registry) as store:
            for i in range(4):
                store.log_vote(make_vote(i))
            store.checkpoint(tiny_aug(weight=0.9), last_applied_seq=2)
        with DurableStore(tmp_path, registry=registry) as store:
            state = store.recover()
            assert state.snapshot_seq == 2
            assert state.aug.kg_weight("x", "y") == 0.9
            assert [r.seq for r in state.tail] == [3, 4]
            assert all(isinstance(r, WalRecord) for r in state.tail)
            assert registry.value("snapshot_recoveries_total") == 1
            assert registry.value("wal_replayed_total") == 2

    def test_recover_without_snapshot(self, tmp_path):
        with DurableStore(tmp_path) as store:
            store.log_vote(make_vote())
            state = store.recover()
            assert state.aug is None
            assert state.snapshot_seq == 0
            assert len(state.tail) == 1

    def test_seq_counter_survives_draining_checkpoint(self, tmp_path):
        """Restart after a WAL-draining checkpoint must not reuse sequences.

        The counter lives in the log's records; a checkpoint that
        rotates the WAL empty leaves nothing to seed it from, so the
        store must re-seed from the newest snapshot or post-restart
        votes get sequences <= snapshot_seq and recovery filters them
        out as already applied (the old high-severity bug).
        """
        with DurableStore(tmp_path) as store:
            for i in range(3):
                store.log_vote(make_vote(i))
            store.checkpoint(tiny_aug(), last_applied_seq=3)
            assert store.wal.records() == []  # the WAL drained fully
        with DurableStore(tmp_path) as store:
            assert store.wal.last_seq == 3
            assert store.log_vote(make_vote(9)) == 4
            state = store.recover()
            assert [r.seq for r in state.tail] == [4]
            assert state.tail[0].vote.query == "q9"

    def test_unrotated_wal_is_filtered_by_snapshot_seq(self, tmp_path):
        """A crash between snapshot write and WAL rotation is harmless."""
        with DurableStore(tmp_path) as store:
            for i in range(3):
                store.log_vote(make_vote(i))
            # Snapshot made durable, but the rotation "never happened".
            store.snapshots.write(tiny_aug(), last_applied_seq=3)
        with DurableStore(tmp_path) as store:
            state = store.recover()
            assert state.snapshot_seq == 3
            assert state.tail == ()
