"""Unit tests for bounded walk enumeration."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph import WeightedDiGraph
from repro.paths import count_walks, enumerate_walks, walk_probability
from repro.paths.walks import iter_walks


@pytest.fixture
def diamond():
    """q -> {b, c} -> d, plus a back-edge d -> b creating cycles."""
    return WeightedDiGraph.from_edges(
        [
            ("q", "b", 0.5),
            ("q", "c", 0.5),
            ("b", "d", 0.8),
            ("c", "d", 0.6),
            ("d", "b", 0.2),
        ],
        strict=False,
    )


class TestEnumerateWalks:
    def test_simple_paths(self, diamond):
        walks = enumerate_walks(diamond, "q", "d", max_length=2)["d"]
        assert sorted(walks) == [("q", "b", "d"), ("q", "c", "d")]

    def test_cyclic_walks_included(self, diamond):
        walks = enumerate_walks(diamond, "q", "d", max_length=4)["d"]
        # Length-4 walks revisit d through the d -> b back-edge.
        assert ("q", "b", "d", "b", "d") in walks
        assert ("q", "c", "d", "b", "d") in walks
        assert len(walks) == 4

    def test_walk_through_target_counted_per_arrival(self, diamond):
        # Every prefix ending at the target is a distinct walk.
        walks = enumerate_walks(diamond, "q", "b", max_length=4)["b"]
        assert ("q", "b") in walks
        assert ("q", "b", "d", "b") in walks
        assert ("q", "c", "d", "b") in walks
        assert len(walks) == 3

    def test_multiple_targets_share_enumeration(self, diamond):
        walks = enumerate_walks(diamond, "q", ["b", "c", "d"], max_length=2)
        assert len(walks["b"]) == 1
        assert len(walks["c"]) == 1
        assert len(walks["d"]) == 2

    def test_unreachable_target_empty(self, diamond):
        diamond.add_node("island")
        walks = enumerate_walks(diamond, "q", "island", max_length=5)
        assert walks["island"] == []

    def test_source_not_counted_as_zero_length_walk(self, diamond):
        walks = enumerate_walks(diamond, "q", "q", max_length=3)["q"]
        assert all(len(w) > 1 for w in walks)

    def test_missing_nodes_raise(self, diamond):
        with pytest.raises(NodeNotFoundError):
            enumerate_walks(diamond, "ghost", "d", 3)
        with pytest.raises(NodeNotFoundError):
            enumerate_walks(diamond, "q", "ghost", 3)

    def test_bad_length_raises(self, diamond):
        with pytest.raises(ValueError):
            enumerate_walks(diamond, "q", "d", 0)


class TestWalkProbability:
    def test_product_of_weights(self, diamond):
        assert walk_probability(diamond, ("q", "b", "d")) == pytest.approx(0.4)

    def test_cyclic_walk(self, diamond):
        prob = walk_probability(diamond, ("q", "b", "d", "b", "d"))
        assert prob == pytest.approx(0.5 * 0.8 * 0.2 * 0.8)

    def test_too_short_walk_raises(self, diamond):
        with pytest.raises(ValueError):
            walk_probability(diamond, ("q",))


class TestCountAndIter:
    def test_count_matches_enumeration(self, diamond):
        assert count_walks(diamond, "q", "d", 4) == 4

    def test_iter_walks_lazy(self, diamond):
        gen = iter_walks(diamond, "q", "d", 4)
        first = next(gen)
        assert first[0] == "q" and first[-1] == "d"
        remaining = list(gen)
        assert len(remaining) == 3

    def test_iter_and_enumerate_agree(self, diamond):
        eager = set(enumerate_walks(diamond, "q", "d", 5)["d"])
        lazy = set(iter_walks(diamond, "q", "d", 5))
        assert eager == lazy


class TestFig1Example:
    def test_exactly_four_short_walks_to_a3(self, fig1_aug):
        walks = enumerate_walks(fig1_aug.graph, "q", "a3", max_length=5)["a3"]
        assert len(walks) == 4
        assert ("q", "Outbox", "SendMessage", "Outlook", "a3") in walks
        assert ("q", "Email", "SendMessage", "Outlook", "a3") in walks
        assert ("q", "Outbox", "Email", "SendMessage", "Outlook", "a3") in walks
        assert ("q", "Email", "Outbox", "SendMessage", "Outlook", "a3") in walks

    def test_walk_sum_matches_paper_arithmetic(self, fig1_aug, fig1_expected_a3):
        c = 0.15
        walks = enumerate_walks(fig1_aug.graph, "q", "a3", max_length=5)["a3"]
        total = sum(
            walk_probability(fig1_aug.graph, walk) * c * (1 - c) ** (len(walk) - 1)
            for walk in walks
        )
        assert total == pytest.approx(fig1_expected_a3)
