"""Unit + property tests for significance testing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval.significance import BootstrapResult, paired_bootstrap, sign_test


class TestPairedBootstrap:
    def test_clear_improvement_is_significant(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0.2, 0.5, size=60)
        b = a + rng.uniform(0.1, 0.3, size=60)
        result = paired_bootstrap(a, b, seed=1)
        assert result.significant
        assert result.p_value < 0.01
        assert result.mean_difference > 0
        assert result.wins == 60

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0.2, 0.8, size=60)
        b = a + rng.normal(0, 0.001, size=60)  # pure noise
        result = paired_bootstrap(a, b, seed=3)
        assert not result.significant or result.p_value > 0.001

    def test_degradation_yields_high_p(self):
        a = np.linspace(0.5, 0.9, 40)
        b = a - 0.2
        result = paired_bootstrap(a, b, seed=4)
        assert result.p_value > 0.95
        assert result.losses == 40

    def test_counts(self):
        result = paired_bootstrap([0.1, 0.5, 0.5], [0.2, 0.4, 0.5], seed=0)
        assert (result.wins, result.losses, result.ties) == (1, 1, 1)

    def test_deterministic_with_seed(self):
        a, b = [0.1, 0.2, 0.3], [0.2, 0.25, 0.35]
        r1 = paired_bootstrap(a, b, seed=9)
        r2 = paired_bootstrap(a, b, seed=9)
        assert r1 == r2

    def test_validation(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap([], [])
        with pytest.raises(EvaluationError):
            paired_bootstrap([0.1], [0.1, 0.2])
        with pytest.raises(EvaluationError):
            paired_bootstrap([0.1], [0.2], num_samples=0)

    @given(
        scores=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=30
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_property_p_value_in_unit_interval(self, scores):
        result = paired_bootstrap(
            scores, list(reversed(scores)), num_samples=200, seed=0
        )
        assert 0.0 <= result.p_value <= 1.0


class TestSignTest:
    def test_balanced_is_insignificant(self):
        assert sign_test(5, 5) > 0.5

    def test_lopsided_is_significant(self):
        assert sign_test(19, 1) < 0.001

    def test_exact_small_case(self):
        # P(X >= 2) for X ~ Binomial(2, 0.5) = 0.25.
        assert sign_test(2, 0) == pytest.approx(0.25)

    def test_no_observations(self):
        assert sign_test(0, 0) == 1.0

    def test_validation(self):
        with pytest.raises(EvaluationError):
            sign_test(-1, 3)

    def test_monotone_in_wins(self):
        p_values = [sign_test(w, 10 - w) for w in range(11)]
        assert p_values == sorted(p_values, reverse=True)
