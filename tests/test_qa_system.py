"""Unit + integration tests for the KG builder, IR baseline, and QASystem."""

import pytest

from repro.errors import CorpusError, EvaluationError, VoteError
from repro.qa import (
    EntityVocabulary,
    QASystem,
    build_knowledge_graph,
    cooccurrence_counts,
    generate_helpdesk_corpus,
    ir_rank,
    ir_scores,
)
from repro.serving import SimilarityParams


@pytest.fixture(scope="module")
def corpus():
    return generate_helpdesk_corpus(
        num_topics=4,
        entities_per_topic=6,
        docs_per_topic=3,
        num_train_questions=25,
        num_test_questions=12,
        seed=7,
    )


@pytest.fixture(scope="module")
def kg(corpus):
    return build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)


class TestCooccurrence:
    def test_counts(self):
        occurrences, cooccurrences = cooccurrence_counts(
            [{"a": 2, "b": 1}, {"a": 1, "c": 3}]
        )
        assert occurrences == {"a": 3, "b": 1, "c": 3}
        assert cooccurrences[("a", "b")] == 1  # min(2, 1)
        assert cooccurrences[("b", "a")] == 1
        assert cooccurrences[("a", "c")] == 1  # min(1, 3)
        assert ("b", "c") not in cooccurrences  # never share a document

    def test_zero_counts_ignored(self):
        occurrences, cooccurrences = cooccurrence_counts([{"a": 0, "b": 2}])
        assert "a" not in occurrences
        assert not cooccurrences


class TestBuildKnowledgeGraph:
    def test_nodes_are_entities(self, corpus, kg):
        assert set(kg.nodes()) <= corpus.vocabulary.entities

    def test_edges_follow_cooccurrence(self, kg):
        # Every edge must have its reverse (co-occurrence is symmetric
        # before conditioning).
        for edge in kg.edges():
            assert kg.has_edge(edge.tail, edge.head)

    def test_out_mass_normalized(self, kg):
        for node in kg.nodes():
            if kg.out_degree(node):
                assert kg.out_weight_sum(node) == pytest.approx(0.9)

    def test_unnormalized_conditional_probabilities(self, corpus):
        raw = build_knowledge_graph(
            corpus.document_texts(), corpus.vocabulary, normalize=False
        )
        for edge in raw.edges():
            assert 0 < edge.weight <= 1.0 + 1e-9

    def test_min_cooccurrence_prunes(self, corpus):
        dense = build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)
        sparse = build_knowledge_graph(
            corpus.document_texts(), corpus.vocabulary, min_cooccurrence=4
        )
        assert sparse.num_edges < dense.num_edges

    def test_bad_min_cooccurrence(self, corpus):
        with pytest.raises(CorpusError):
            build_knowledge_graph(
                corpus.document_texts(), corpus.vocabulary, min_cooccurrence=0
            )


class TestIRBaseline:
    def test_matching_doc_ranks_first(self):
        vocab = EntityVocabulary(["refund", "cart", "coupon"])
        docs = {
            "d_refund": "refund refund policy refund",
            "d_cart": "cart cart item",
        }
        ranked = ir_rank("where is my refund", docs, vocab)
        assert ranked[0][0] == "d_refund"
        assert ranked[0][1] > ranked[1][1]

    def test_overlap_mode(self):
        vocab = EntityVocabulary(["a1", "b2"])
        docs = {"d1": "a1 b2", "d2": "a1"}
        scores = ir_scores("a1 b2", docs, vocab, mode="overlap")
        assert scores["d1"] == 2.0
        assert scores["d2"] == 1.0

    def test_no_entities_scores_zero(self):
        vocab = EntityVocabulary(["refund"])
        scores = ir_scores("nothing relevant", {"d": "also nothing"}, vocab)
        assert scores["d"] == 0.0

    def test_k_truncation_and_tie_break(self):
        vocab = EntityVocabulary(["x9"])
        docs = {"b": "x9", "a": "x9", "c": "nope"}
        ranked = ir_rank("x9", docs, vocab, k=2)
        assert [doc for doc, _ in ranked] == ["a", "b"]  # ties by id

    def test_unknown_mode(self):
        vocab = EntityVocabulary(["x9"])
        with pytest.raises(EvaluationError):
            ir_scores("x9", {}, vocab, mode="bm25")


class TestQASystem:
    @pytest.fixture
    def system(self, corpus, kg):
        qa = QASystem(kg, corpus.vocabulary, params=SimilarityParams(k=8))
        attached = qa.add_documents(corpus.document_texts())
        assert len(attached) == len(corpus.documents)
        return qa

    def test_ask_returns_ranked_list(self, system, corpus):
        question = corpus.train_pairs[0]
        answers = system.ask(question.text, question_id="q0")
        assert 1 <= len(answers) <= 8
        scores = [score for _, score in answers]
        assert scores == sorted(scores, reverse=True)

    def test_ask_without_entities_rejected(self, system):
        with pytest.raises(CorpusError):
            system.ask("completely unrelated words only")

    def test_vote_roundtrip(self, system, corpus):
        question = corpus.train_pairs[0]
        answers = system.ask(question.text, question_id="qv")
        vote = system.vote("qv", answers[-1][0])
        assert vote.is_negative or len(answers) == 1
        assert len(system.pending_votes) == 1

    def test_vote_requires_shown_list(self, system):
        with pytest.raises(VoteError):
            system.vote("never_asked", "doc_x")

    def test_vote_requires_shown_answer(self, system, corpus):
        question = corpus.train_pairs[0]
        system.ask(question.text, question_id="qx")
        with pytest.raises(VoteError):
            system.vote("qx", "not_a_shown_doc")

    def test_optimize_requires_votes(self, system):
        with pytest.raises(VoteError):
            system.optimize()

    def test_optimize_unknown_strategy(self, system, corpus):
        question = corpus.train_pairs[0]
        answers = system.ask(question.text, question_id="qs")
        system.vote("qs", answers[0][0])
        with pytest.raises(ValueError):
            system.optimize(strategy="quantum")

    @pytest.mark.parametrize("strategy", ["multi", "single", "split-merge"])
    def test_optimize_strategies_run(self, system, corpus, strategy):
        question = corpus.train_pairs[1]
        answers = system.ask(question.text, question_id=f"q_{strategy}")
        if len(answers) < 2:
            pytest.skip("need at least two answers for a negative vote")
        system.vote(f"q_{strategy}", answers[1][0])
        report = system.optimize(strategy=strategy)
        assert report is not None
        assert len(system.pending_votes) == 0  # votes were consumed

    def test_optimize_promotes_voted_answer(self, system, corpus):
        """The headline behaviour: after a negative vote + optimize, the
        voted answer ranks strictly higher on the same question.

        The feasibility filter is disabled here: same-topic documents
        share identical path edge sets, and the paper's extreme-condition
        judgment (which assigns one constant to all shared edges) cannot
        distinguish them even though per-edge optimization can.
        """
        question = corpus.train_pairs[2]
        answers = system.ask(question.text, question_id="q_promote")
        if len(answers) < 3:
            pytest.skip("need a few answers")
        target = answers[2][0]
        system.vote("q_promote", target)
        system.optimize(strategy="multi", feasibility_filter=False)
        reranked = system.ask(question.text, question_id="q_promote_after")
        new_rank = next(
            i for i, (doc, _) in enumerate(reranked, start=1) if doc == target
        )
        assert new_rank < 3

    def test_evaluate(self, system, corpus):
        questions = {p.question_id: p.text for p in corpus.test_pairs}
        pairs = {p.question_id: p.best_doc for p in corpus.test_pairs}
        result = system.evaluate(questions, pairs)
        assert 0 < result.mrr <= 1
        assert 0 < result.map_score <= 1
        assert result.hits[10] >= result.hits[1]
        # Evaluation must not leave test queries behind.
        assert all(
            not str(q).startswith("test_q") for q in system.augmented_graph.query_nodes
        )

    def test_evaluate_unlinkable_rejected(self, system):
        with pytest.raises(EvaluationError):
            system.evaluate({"tq": "no entities here"}, {"tq": "doc_x"})

    def test_document_without_entities_not_attached(self, system):
        assert not system.add_document("empty_doc", "nothing relevant at all")

    def test_bad_k(self, kg, corpus):
        with pytest.raises(ValueError):
            QASystem(kg, corpus.vocabulary, params=SimilarityParams(k=0))

    def test_legacy_kwargs_raise(self, kg, corpus):
        with pytest.raises(TypeError, match="SimilarityParams"):
            QASystem(kg, corpus.vocabulary, k=8)
