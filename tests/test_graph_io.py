"""Unit tests for edge-list and JSON graph I/O."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    load_edge_list,
    load_json_graph,
    random_digraph,
    save_edge_list,
    save_json_graph,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        graph = random_digraph(30, 3.0, seed=4)
        path = tmp_path / "graph.tsv"
        save_edge_list(graph, path, header="test graph")
        loaded = load_edge_list(path, normalize=False)
        assert {(e.head, e.tail) for e in loaded.edges()} == {
            (e.head, e.tail) for e in graph.edges()
        }
        for edge in graph.edges():
            assert loaded.weight(edge.head, edge.tail) == pytest.approx(edge.weight)

    def test_konect_format_with_comments(self, tmp_path):
        path = tmp_path / "out.example"
        path.write_text(
            "% sym unweighted\n"
            "% 3 3 3\n"
            "1 2\n"
            "2 3 0.5\n"
            "# trailing comment\n"
            "3 1 2.0\n"
        )
        graph = load_edge_list(path, normalize=False)
        assert graph.num_edges == 3
        assert graph.weight("1", "2") == 1.0  # default weight
        assert graph.weight("2", "3") == 0.5

    def test_normalization_on_load(self, tmp_path):
        path = tmp_path / "out.example"
        path.write_text("a b 3\na c 1\nb c 5\n")
        graph = load_edge_list(path, normalize=True, out_mass=1.0)
        assert graph.out_weight_sum("a") == pytest.approx(1.0)
        assert graph.weight("a", "b") == pytest.approx(0.75)
        assert graph.out_weight_sum("b") == pytest.approx(1.0)

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "loops.tsv"
        path.write_text("a a 1\na b 1\n")
        graph = load_edge_list(path, normalize=False)
        assert not graph.has_edge("a", "a")
        assert graph.has_edge("a", "b")

    def test_nonpositive_weights_skipped(self, tmp_path):
        path = tmp_path / "zero.tsv"
        path.write_text("a b 0\nb c 1\n")
        graph = load_edge_list(path, normalize=False)
        assert not graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only_one_column\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_bad_weight_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a b not_a_number\n")
        with pytest.raises(GraphError):
            load_edge_list(path)


class TestJson:
    def test_round_trip_exact(self, tmp_path):
        graph = random_digraph(25, 2.5, seed=8)
        path = tmp_path / "graph.json"
        save_json_graph(graph, path)
        loaded = load_json_graph(path)
        assert list(loaded.nodes()) == list(graph.nodes())
        for edge in graph.edges():
            assert loaded.weight(edge.head, edge.tail) == edge.weight  # bit-exact

    def test_preserves_isolated_nodes(self, tmp_path):
        graph = random_digraph(5, 1.0, seed=0)
        graph.add_node("isolated")
        path = tmp_path / "graph.json"
        save_json_graph(graph, path)
        loaded = load_json_graph(path)
        assert loaded.has_node("isolated")

    def test_bad_payload_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a graph"}')
        with pytest.raises(GraphError):
            load_json_graph(path)
