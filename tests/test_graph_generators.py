"""Unit + property tests for graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import KONECT_STATS, WeightedDiGraph, helpdesk_graph, konect_like, random_digraph
from repro.graph.generators import perturb_weights


class TestRandomDigraph:
    def test_node_and_edge_counts(self):
        graph = random_digraph(200, 4.0, seed=1)
        assert graph.num_nodes == 200
        # Poisson(4) truncated to [1, n-1]: the mean degree is near 4.
        assert 2.5 <= graph.average_degree() <= 5.5

    def test_deterministic_for_seed(self):
        g1 = random_digraph(50, 3.0, seed=42)
        g2 = random_digraph(50, 3.0, seed=42)
        assert {(e.head, e.tail, e.weight) for e in g1.edges()} == {
            (e.head, e.tail, e.weight) for e in g2.edges()
        }

    def test_different_seeds_differ(self):
        g1 = random_digraph(50, 3.0, seed=1)
        g2 = random_digraph(50, 3.0, seed=2)
        assert {(e.head, e.tail) for e in g1.edges()} != {
            (e.head, e.tail) for e in g2.edges()
        }

    def test_out_mass_normalization(self):
        graph = random_digraph(80, 3.0, seed=7, out_mass=0.8)
        for node in graph.nodes():
            if graph.out_degree(node):
                assert graph.out_weight_sum(node) == pytest.approx(0.8)

    def test_no_self_loops(self):
        graph = random_digraph(60, 5.0, seed=3)
        assert all(e.head != e.tail for e in graph.edges())

    def test_single_node(self):
        graph = random_digraph(1, 3.0, seed=0)
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    @pytest.mark.parametrize("bad_n", [0, -5])
    def test_bad_node_count(self, bad_n):
        with pytest.raises(ValueError):
            random_digraph(bad_n, 2.0)

    def test_bad_out_mass(self):
        with pytest.raises(ValueError):
            random_digraph(10, 2.0, out_mass=1.5)

    @given(
        n=st.integers(min_value=2, max_value=40),
        degree=st.floats(min_value=0.5, max_value=6.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_valid_transition_graph(self, n, degree, seed):
        """Generated graphs always satisfy the probabilistic invariants."""
        graph = random_digraph(n, degree, seed=seed)
        for node in graph.nodes():
            assert graph.out_weight_sum(node) <= 1.0 + 1e-9
            for weight in graph.successors(node).values():
                assert 0.0 < weight <= 1.0


class TestKonectLike:
    @pytest.mark.parametrize("name", sorted(KONECT_STATS))
    def test_scaled_statistics(self, name):
        graph = konect_like(name, seed=5, scale=0.02)
        expected_nodes = max(2, round(KONECT_STATS[name]["nodes"] * 0.02))
        assert graph.num_nodes == expected_nodes
        # Degree is preserved in expectation (Poisson sampling adds noise).
        target_degree = KONECT_STATS[name]["edges"] / KONECT_STATS[name]["nodes"]
        assert graph.average_degree() == pytest.approx(target_degree, rel=0.5)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            konect_like("facebook")

    def test_case_insensitive(self):
        graph = konect_like("TWITTER", seed=1, scale=0.01)
        assert graph.num_nodes > 0


class TestHelpdeskGraph:
    def test_topics_and_membership(self):
        graph, topics = helpdesk_graph(num_topics=4, entities_per_topic=6, seed=11)
        assert len(topics) == 4
        assert graph.num_nodes == 24
        for topic, members in topics.items():
            assert len(members) == 6
            for member in members:
                assert graph.has_node(member)
                assert member.startswith(topic)

    def test_every_node_has_out_edges(self):
        graph, _ = helpdesk_graph(num_topics=3, entities_per_topic=8, seed=2)
        for node in graph.nodes():
            assert graph.out_degree(node) >= 1

    def test_out_mass(self):
        graph, _ = helpdesk_graph(num_topics=3, entities_per_topic=5, seed=2,
                                  out_mass=0.85)
        for node in graph.nodes():
            assert graph.out_weight_sum(node) == pytest.approx(0.85)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            helpdesk_graph(num_topics=0)
        with pytest.raises(ValueError):
            helpdesk_graph(entities_per_topic=1)


class TestPerturbWeights:
    def test_preserves_structure(self):
        graph = random_digraph(40, 3.0, seed=9)
        noisy = perturb_weights(graph, noise=0.5, seed=10)
        assert set(noisy.edge_keys()) == set(graph.edge_keys())

    def test_renormalize_preserves_out_sums(self):
        graph = random_digraph(40, 3.0, seed=9)
        noisy = perturb_weights(graph, noise=0.5, seed=10, renormalize=True)
        for node in graph.nodes():
            if graph.out_degree(node):
                assert noisy.out_weight_sum(node) == pytest.approx(
                    graph.out_weight_sum(node)
                )

    def test_changes_relative_weights(self):
        graph = random_digraph(40, 3.0, seed=9)
        noisy = perturb_weights(graph, noise=0.5, seed=10)
        diffs = [
            abs(noisy.weight(h, t) - graph.weight(h, t))
            for h, t in graph.edge_keys()
        ]
        assert max(diffs) > 1e-6

    def test_zero_noise_is_identity(self):
        graph = random_digraph(20, 3.0, seed=9)
        noisy = perturb_weights(graph, noise=0.0, seed=1)
        for h, t in graph.edge_keys():
            assert noisy.weight(h, t) == pytest.approx(graph.weight(h, t))

    def test_original_untouched(self):
        graph = random_digraph(20, 3.0, seed=9)
        before = {(h, t): graph.weight(h, t) for h, t in graph.edge_keys()}
        perturb_weights(graph, noise=0.7, seed=1)
        after = {(h, t): graph.weight(h, t) for h, t in graph.edge_keys()}
        assert before == after

    def test_negative_noise_rejected(self):
        graph = random_digraph(5, 2.0, seed=0)
        with pytest.raises(ValueError):
            perturb_weights(graph, noise=-0.1)
