"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_to_prometheus,
    set_registry,
    summary_table,
    write_metrics_json,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("events_total")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("events_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("cache_entries")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == pytest.approx(12.0)


class TestHistogram:
    def test_observe_buckets(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        # raw: one ≤0.1, two in (0.1, 1.0], one above
        assert h.counts == [1, 2, 1]
        assert h.cumulative_counts() == [1, 3, 4]

    def test_boundary_lands_in_lower_bucket(self, registry):
        h = registry.histogram("b_seconds", buckets=(0.1, 1.0))
        h.observe(0.1)  # le semantics: exactly on the bound counts in it
        assert h.cumulative_counts()[0] == 1

    def test_snapshot_value_shape(self, registry):
        h = registry.histogram("s_seconds", buckets=(0.1,))
        h.observe(0.2)
        snap = h.snapshot_value()
        assert snap == {"count": 1, "sum": 0.2, "buckets": {"0.1": 0, "+Inf": 1}}

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h1_seconds", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            registry.histogram("h3_seconds", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("hits_total") is registry.counter("hits_total")

    def test_labels_make_distinct_series(self, registry):
        a = registry.counter("hits_total", engine="0")
        b = registry.counter("hits_total", engine="1")
        assert a is not b
        a.inc()
        assert registry.value("hits_total", engine="0") == 1
        assert registry.value("hits_total", engine="1") == 0

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("x_total", a="1", b="2")
        b = registry.counter("x_total", b="2", a="1")
        assert a is b

    def test_type_conflict_raises(self, registry):
        registry.counter("thing_total")
        with pytest.raises(TypeError):
            registry.gauge("thing_total")
        # same name under different labels must also keep one type
        with pytest.raises(TypeError):
            registry.gauge("thing_total", engine="1")

    def test_snapshot_is_json_serializable(self, registry):
        registry.counter("c_total").inc()
        registry.gauge("g").set(2)
        registry.histogram("h_seconds").observe(0.01)
        dumped = json.dumps(registry.snapshot())
        assert '"c_total"' in dumped

    def test_value_of_unknown_series_is_none(self, registry):
        assert registry.value("nope_total") is None

    def test_clear(self, registry):
        registry.counter("c_total").inc()
        registry.clear()
        assert len(registry) == 0
        # the name is reusable, even as a different type
        registry.gauge("c_total")

    def test_histogram_default_buckets(self, registry):
        h = registry.histogram("lat_seconds")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS


class TestDefaultRegistry:
    def test_set_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            assert set_registry(previous) is mine
        assert get_registry() is previous

    def test_set_registry_type_checked(self):
        with pytest.raises(TypeError):
            set_registry({})


class TestExporters:
    def test_prometheus_text(self, registry):
        registry.counter("hits_total", engine="0").inc(3)
        registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = metrics_to_prometheus(registry)
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{engine="0"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_summary_table(self, registry):
        registry.counter("hits_total").inc(2)
        registry.histogram("lat_seconds", buckets=(0.1,)).observe(0.05)
        registry.histogram("dev_magnitude", buckets=(0.1,)).observe(0.05)
        table = summary_table(registry, title="cost breakdown")
        assert "cost breakdown" in table
        assert "hits_total" in table
        assert "n=1" in table and "ms" in table  # latency gets time units
        assert "dev_magnitude" in table

    def test_write_metrics_json(self, registry, tmp_path):
        registry.counter("c_total").inc()
        path = tmp_path / "metrics.json"
        snapshot = write_metrics_json(path, registry)
        assert json.loads(path.read_text()) == snapshot
        assert snapshot["c_total"] == 1


class TestQuantiles:
    """Bucket-interpolated quantiles and attainment on Histogram."""

    def test_empty_histogram_is_nan(self, registry):
        import math

        h = registry.histogram("q_seconds", buckets=(0.1, 1.0))
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.fraction_le(0.2))

    def test_out_of_range_quantile_rejected(self, registry):
        h = registry.histogram("q_seconds", buckets=(0.1,))
        h.observe(0.05)
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                h.quantile(bad)

    def test_linear_interpolation_within_bucket(self, registry):
        # 10 samples in (0.1, 0.2]: the median interpolates to the
        # bucket midpoint, p100 to the bucket's upper bound.
        h = registry.histogram("q_seconds", buckets=(0.1, 0.2, 0.4))
        for _ in range(10):
            h.observe(0.15)
        assert h.quantile(0.5) == pytest.approx(0.15)
        assert h.quantile(1.0) == pytest.approx(0.2)

    def test_rank_in_inf_bucket_clamps_to_last_bound(self, registry):
        h = registry.histogram("q_seconds", buckets=(0.1, 1.0))
        for _ in range(10):
            h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(1.0)

    def test_fraction_le_exact_on_bucket_bound(self, registry):
        h = registry.histogram("q_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.fraction_le(0.1) == pytest.approx(0.5)  # le semantics
        assert h.fraction_le(1.0) == pytest.approx(0.75)

    def test_fraction_le_interpolates_inside_bucket(self, registry):
        h = registry.histogram("q_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5):
            h.observe(v)
        # Halfway through the (0.1, 1.0] bucket: 0.5 + 0.5 * (0.45/0.9)
        assert h.fraction_le(0.55) == pytest.approx(0.75)

    def test_inf_samples_count_as_above_any_threshold(self, registry):
        h = registry.histogram("q_seconds", buckets=(0.1,))
        h.observe(0.05)
        h.observe(99.0)
        assert h.fraction_le(10.0) == pytest.approx(0.5)


class TestPrometheusRoundTrip:
    """Satellite: HELP/TYPE metadata + escaping, verified by a
    hand-written parser of the exposition text."""

    @staticmethod
    def _parse(text):
        """Minimal exposition parser: {name: {"type", "help", "samples"}}
        with samples as {(sample_name, frozen labels): value}."""
        families = {}
        for line in text.splitlines():
            if line.startswith("# HELP "):
                _, _, rest = line.partition("# HELP ")
                name, _, help_text = rest.partition(" ")
                help_text = (
                    help_text.replace("\\n", "\n").replace("\\\\", "\\")
                )
                families.setdefault(name, {"samples": {}})["help"] = help_text
            elif line.startswith("# TYPE "):
                _, _, rest = line.partition("# TYPE ")
                name, _, kind = rest.partition(" ")
                families.setdefault(name, {"samples": {}})["type"] = kind
            elif line:
                if "{" in line:
                    sample_name = line[: line.index("{")]
                    inner = line[line.index("{") + 1 : line.rindex("}")]
                    value = float(line[line.rindex("}") + 1 :])
                    labels = {}
                    for part in inner.split('",'):
                        k, _, v = part.partition('="')
                        v = v.rstrip('"')
                        labels[k] = (
                            v.replace("\\n", "\n")
                            .replace('\\"', '"')
                            .replace("\\\\", "\\")
                        )
                else:
                    sample_name, _, raw = line.partition(" ")
                    labels = {}
                    value = float(raw)
                family = sample_name
                for suffix in ("_bucket", "_sum", "_count"):
                    if family.endswith(suffix) and family[: -len(suffix)] in families:
                        family = family[: -len(suffix)]
                families[family]["samples"][
                    (sample_name, frozenset(labels.items()))
                ] = value
        return families

    def test_help_and_type_emitted_for_every_family(self, registry):
        registry.counter("qa_asks_total").inc()
        registry.gauge("engine_cache_entries", engine="0").set(4)
        registry.histogram("qa_ask_seconds", buckets=(0.1,)).observe(0.05)
        families = self._parse(metrics_to_prometheus(registry))
        assert families["qa_asks_total"]["type"] == "counter"
        assert families["engine_cache_entries"]["type"] == "gauge"
        assert families["qa_ask_seconds"]["type"] == "histogram"
        for family in families.values():
            assert family["help"]  # never empty, catalog or generated

    def test_catalog_help_text_is_used(self, registry):
        from repro.obs.catalog import METRIC_HELP

        registry.counter("qa_asks_total").inc()
        families = self._parse(metrics_to_prometheus(registry))
        assert families["qa_asks_total"]["help"] == METRIC_HELP["qa_asks_total"]

    def test_label_values_escape_and_round_trip(self, registry):
        nasty = 'back\\slash "quote"\nnewline'
        registry.counter("qa_asks_total", source=nasty).inc(7)
        text = metrics_to_prometheus(registry)
        assert "\n" not in text.split("qa_asks_total{")[1].split("}")[0]
        families = self._parse(text)
        ((_, labels), value), = families["qa_asks_total"]["samples"].items()
        assert dict(labels) == {"source": nasty}
        assert value == 7

    def test_histogram_samples_round_trip(self, registry):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        families = self._parse(metrics_to_prometheus(registry))
        samples = families["qa_ask_seconds"]["samples"]
        assert samples[("qa_ask_seconds_bucket", frozenset({("le", "0.1")}))] == 1
        assert samples[("qa_ask_seconds_bucket", frozenset({("le", "1")}))] == 2
        assert samples[("qa_ask_seconds_bucket", frozenset({("le", "+Inf")}))] == 3
        assert samples[("qa_ask_seconds_count", frozenset())] == 3


class TestExporterEdgeCases:
    """Satellite: zero-observation histograms and label-heavy registries
    through summary_table / write_metrics_json."""

    def test_zero_observation_histogram_summary(self, registry):
        registry.histogram("lat_seconds", buckets=(0.1,))
        registry.histogram("dev_magnitude", buckets=(0.1,))
        table = summary_table(registry)
        assert "n=0" in table  # no ZeroDivisionError on the mean
        assert "lat_seconds" in table and "dev_magnitude" in table

    def test_zero_observation_histogram_json_and_prometheus(
        self, registry, tmp_path
    ):
        registry.histogram("lat_seconds", buckets=(0.1,))
        snapshot = write_metrics_json(tmp_path / "m.json", registry)
        assert snapshot["lat_seconds"] == {
            "count": 0,
            "sum": 0.0,
            "buckets": {"0.1": 0, "+Inf": 0},
        }
        text = metrics_to_prometheus(registry)
        assert 'lat_seconds_bucket{le="+Inf"} 0' in text
        assert "lat_seconds_count 0" in text

    def test_label_heavy_registry_summary_and_json(self, registry, tmp_path):
        for engine in range(4):
            for backend in ("dense", "push"):
                registry.counter(
                    "engine_serves_total",
                    engine=str(engine),
                    backend=backend,
                ).inc(engine + 1)
        registry.histogram(
            "qa_ask_seconds", buckets=(0.1,), tenant="a", region="eu", op="ask"
        ).observe(0.05)

        table = summary_table(registry)
        assert 'engine_serves_total{backend="dense",engine="3"}' in table
        assert table.count("engine_serves_total") == 8

        snapshot = write_metrics_json(tmp_path / "m.json", registry)
        assert len(snapshot) == 9
        # Series keys sort labels, so the snapshot is stable and the
        # file parses back to exactly the snapshot.
        key = 'qa_ask_seconds{op="ask",region="eu",tenant="a"}'
        assert snapshot[key]["count"] == 1
        assert json.loads((tmp_path / "m.json").read_text()) == snapshot
