"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_to_prometheus,
    set_registry,
    summary_table,
    write_metrics_json,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("events_total")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("events_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("cache_entries")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == pytest.approx(12.0)


class TestHistogram:
    def test_observe_buckets(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        # raw: one ≤0.1, two in (0.1, 1.0], one above
        assert h.counts == [1, 2, 1]
        assert h.cumulative_counts() == [1, 3, 4]

    def test_boundary_lands_in_lower_bucket(self, registry):
        h = registry.histogram("b_seconds", buckets=(0.1, 1.0))
        h.observe(0.1)  # le semantics: exactly on the bound counts in it
        assert h.cumulative_counts()[0] == 1

    def test_snapshot_value_shape(self, registry):
        h = registry.histogram("s_seconds", buckets=(0.1,))
        h.observe(0.2)
        snap = h.snapshot_value()
        assert snap == {"count": 1, "sum": 0.2, "buckets": {"0.1": 0, "+Inf": 1}}

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h1_seconds", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            registry.histogram("h3_seconds", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("hits_total") is registry.counter("hits_total")

    def test_labels_make_distinct_series(self, registry):
        a = registry.counter("hits_total", engine="0")
        b = registry.counter("hits_total", engine="1")
        assert a is not b
        a.inc()
        assert registry.value("hits_total", engine="0") == 1
        assert registry.value("hits_total", engine="1") == 0

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("x_total", a="1", b="2")
        b = registry.counter("x_total", b="2", a="1")
        assert a is b

    def test_type_conflict_raises(self, registry):
        registry.counter("thing_total")
        with pytest.raises(TypeError):
            registry.gauge("thing_total")
        # same name under different labels must also keep one type
        with pytest.raises(TypeError):
            registry.gauge("thing_total", engine="1")

    def test_snapshot_is_json_serializable(self, registry):
        registry.counter("c_total").inc()
        registry.gauge("g").set(2)
        registry.histogram("h_seconds").observe(0.01)
        dumped = json.dumps(registry.snapshot())
        assert '"c_total"' in dumped

    def test_value_of_unknown_series_is_none(self, registry):
        assert registry.value("nope_total") is None

    def test_clear(self, registry):
        registry.counter("c_total").inc()
        registry.clear()
        assert len(registry) == 0
        # the name is reusable, even as a different type
        registry.gauge("c_total")

    def test_histogram_default_buckets(self, registry):
        h = registry.histogram("lat_seconds")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS


class TestDefaultRegistry:
    def test_set_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            assert set_registry(previous) is mine
        assert get_registry() is previous

    def test_set_registry_type_checked(self):
        with pytest.raises(TypeError):
            set_registry({})


class TestExporters:
    def test_prometheus_text(self, registry):
        registry.counter("hits_total", engine="0").inc(3)
        registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = metrics_to_prometheus(registry)
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{engine="0"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_summary_table(self, registry):
        registry.counter("hits_total").inc(2)
        registry.histogram("lat_seconds", buckets=(0.1,)).observe(0.05)
        registry.histogram("dev_magnitude", buckets=(0.1,)).observe(0.05)
        table = summary_table(registry, title="cost breakdown")
        assert "cost breakdown" in table
        assert "hits_total" in table
        assert "n=1" in table and "ms" in table  # latency gets time units
        assert "dev_magnitude" in table

    def test_write_metrics_json(self, registry, tmp_path):
        registry.counter("c_total").inc()
        path = tmp_path / "metrics.json"
        snapshot = write_metrics_json(path, registry)
        assert json.loads(path.read_text()) == snapshot
        assert snapshot["c_total"] == 1
