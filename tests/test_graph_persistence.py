"""Unit tests for augmented-graph persistence."""

import json

import pytest

from repro.errors import GraphError
from repro.graph import AugmentedGraph, WeightedDiGraph, helpdesk_graph
from repro.graph.persistence import load_augmented_graph, save_augmented_graph
from repro.optimize import solve_multi_vote
from repro.similarity import inverse_pdistance
from repro.votes import Vote


@pytest.fixture
def aug():
    kg, topics = helpdesk_graph(num_topics=3, entities_per_topic=5, seed=2)
    graph = AugmentedGraph(kg)
    entities = [e for members in topics.values() for e in members]
    graph.add_query("q1", {entities[0]: 1, entities[1]: 2})
    graph.add_answer("ans1", {entities[2]: 1})
    graph.add_answer("ans2", {entities[3]: 1, entities[4]: 3})
    return graph


class TestRoundTrip:
    def test_structure_preserved(self, aug, tmp_path):
        path = tmp_path / "graph.json"
        save_augmented_graph(aug, path)
        loaded = load_augmented_graph(path)
        assert loaded.entity_nodes == aug.entity_nodes
        assert loaded.query_nodes == aug.query_nodes
        assert loaded.answer_nodes == aug.answer_nodes
        assert loaded.graph.num_edges == aug.graph.num_edges

    def test_weights_bit_exact(self, aug, tmp_path):
        path = tmp_path / "graph.json"
        save_augmented_graph(aug, path)
        loaded = load_augmented_graph(path)
        for edge in aug.graph.edges():
            assert loaded.graph.weight(edge.head, edge.tail) == edge.weight

    def test_similarities_survive(self, aug, tmp_path):
        before = inverse_pdistance(aug.graph, "q1", ["ans1", "ans2"])
        path = tmp_path / "graph.json"
        save_augmented_graph(aug, path)
        loaded = load_augmented_graph(path)
        after = inverse_pdistance(loaded.graph, "q1", ["ans1", "ans2"])
        assert after == before  # bit-for-bit

    def test_optimized_weights_survive_restart(self, aug, tmp_path):
        """The deployment story: optimize, save, reload, same rankings."""
        answers = sorted(aug.answer_nodes, key=repr)
        scores = inverse_pdistance(aug.graph, "q1", answers)
        ranked = sorted(scores, key=lambda a: -scores[a])
        vote = Vote("q1", tuple(ranked), ranked[-1])
        optimized, _ = solve_multi_vote(aug, [vote], feasibility_filter=False)

        path = tmp_path / "optimized.json"
        save_augmented_graph(optimized, path)
        reloaded = load_augmented_graph(path)
        for edge in optimized.kg_edges():
            assert reloaded.kg_weight(edge.head, edge.tail) == edge.weight

    def test_loaded_graph_is_usable(self, aug, tmp_path):
        path = tmp_path / "graph.json"
        save_augmented_graph(aug, path)
        loaded = load_augmented_graph(path)
        # Roles enforce the same invariants as a freshly built graph.
        assert loaded.is_kg_edge(*next(iter(loaded.kg_edges())).key)
        entities = sorted(loaded.entity_nodes)
        loaded.add_query("q_new", {entities[0]: 1})
        assert "q_new" in loaded.query_nodes


class TestErrorHandling:
    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(GraphError):
            load_augmented_graph(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(GraphError):
            load_augmented_graph(path)

    def test_unsupported_version(self, aug, tmp_path):
        path = tmp_path / "graph.json"
        save_augmented_graph(aug, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(GraphError):
            load_augmented_graph(path)

    def test_orphan_link_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = {
            "format": "repro-augmented-graph",
            "version": 1,
            "nodes": ["e1", "stranger"],
            "edges": [["e1", "stranger", 0.5]],
            "queries": [],
            "answers": ["other"],
        }
        # "stranger" is declared neither query nor answer but the loader
        # sees "other" as an answer with no links -> error either way.
        path.write_text(json.dumps(payload))
        with pytest.raises(GraphError):
            load_augmented_graph(path)


class TestLinkRoleRouting:
    """Satellite of the durability work: query→answer edges fail loudly.

    The loader used to route any link edge whose head was a query into
    ``query_links`` — a query→answer edge silently became a "query
    link" to a node that is not an entity, and the answer surfaced much
    later as a confusing "no links" error.  Both directions of the
    round trip now reject the shape by name.
    """

    @staticmethod
    def query_to_answer_payload():
        return {
            "format": "repro-augmented-graph",
            "version": 1,
            "nodes": ["e1", "q1", "a1"],
            "edges": [
                ["q1", "e1", 1.0],
                ["e1", "a1", 1.0],
                ["q1", "a1", 0.5],  # the illegal shortcut
            ],
            "queries": ["q1"],
            "answers": ["a1"],
        }

    def test_load_rejects_query_to_answer_edge(self, tmp_path):
        path = tmp_path / "shortcut.json"
        path.write_text(json.dumps(self.query_to_answer_payload()))
        with pytest.raises(GraphError, match="query .*directly to an answer"):
            load_augmented_graph(path)

    def test_load_rejects_answer_out_edge(self, tmp_path):
        payload = self.query_to_answer_payload()
        payload["edges"][2] = ["a1", "e1", 0.5]
        path = tmp_path / "absorbing.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(GraphError, match="against the role structure"):
            load_augmented_graph(path)

    def test_save_rejects_hand_crafted_query_to_answer_edge(self, aug, tmp_path):
        # The API cannot create this edge; inject it behind the role
        # bookkeeping's back, as a buggy caller with raw graph access
        # would.
        aug.graph.add_edge("q1", "ans1", 0.5)
        with pytest.raises(GraphError, match="query directly to an answer"):
            save_augmented_graph(aug, tmp_path / "never-written.json")
        assert not (tmp_path / "never-written.json").exists()

    def test_api_cannot_create_query_to_answer_edge(self, aug):
        """The shape is unreachable through AugmentedGraph itself."""
        with pytest.raises(GraphError):
            aug.add_query("q_bad", {"ans1": 1.0})  # answer as link target
        with pytest.raises(GraphError):
            aug.add_answer("a_bad", {"q1": 1.0})  # query as link source


class TestMeta:
    def test_meta_round_trips(self, aug, tmp_path):
        from repro.graph.persistence import read_augmented_graph_meta

        path = tmp_path / "with-meta.json"
        save_augmented_graph(aug, path, meta={"last_applied_seq": 17})
        assert read_augmented_graph_meta(path) == {"last_applied_seq": 17}
        # The key is additive: loading ignores it entirely.
        loaded = load_augmented_graph(path)
        assert loaded.query_nodes == aug.query_nodes

    def test_missing_meta_reads_empty(self, aug, tmp_path):
        from repro.graph.persistence import read_augmented_graph_meta

        path = tmp_path / "no-meta.json"
        save_augmented_graph(aug, path)
        assert read_augmented_graph_meta(path) == {}

    def test_non_mapping_meta_rejected(self, aug, tmp_path):
        from repro.graph.persistence import read_augmented_graph_meta

        path = tmp_path / "bad-meta.json"
        save_augmented_graph(aug, path)
        payload = json.loads(path.read_text())
        payload["meta"] = [1, 2, 3]
        path.write_text(json.dumps(payload))
        with pytest.raises(GraphError):
            read_augmented_graph_meta(path)


class TestAtomicWrite:
    def test_no_tmp_file_left_behind(self, aug, tmp_path):
        path = tmp_path / "graph.json"
        save_augmented_graph(aug, path)
        assert list(tmp_path.iterdir()) == [path]

    def test_overwrite_is_all_or_nothing(self, aug, tmp_path):
        path = tmp_path / "graph.json"
        save_augmented_graph(aug, path)
        first = path.read_bytes()
        aug.graph.set_weight(*next(iter(aug.kg_edges())).key, 0.123)
        save_augmented_graph(aug, path)
        assert path.read_bytes() != first
        assert load_augmented_graph(path) is not None
