"""Unit tests for query/answer augmentation."""

import pytest

from repro.errors import AugmentationError, NodeNotFoundError
from repro.graph import AugmentedGraph, WeightedDiGraph
from repro.graph.augmented import attach_queries_and_answers


@pytest.fixture
def kg():
    return WeightedDiGraph.from_edges(
        [
            ("email", "outbox", 0.4),
            ("email", "send", 0.5),
            ("outbox", "send", 0.6),
            ("send", "outlook", 0.3),
            ("outlook", "email", 0.2),
        ]
    )


@pytest.fixture
def aug(kg):
    graph = AugmentedGraph(kg)
    graph.add_query("q1", {"email": 1, "outbox": 1, "send": 2})
    graph.add_answer("a1", {"outlook": 3})
    graph.add_answer("a2", {"send": 1, "outlook": 1})
    return graph


class TestRoles:
    def test_entity_nodes(self, aug, kg):
        assert aug.entity_nodes == frozenset(kg.nodes())

    def test_query_and_answer_nodes(self, aug):
        assert aug.query_nodes == frozenset({"q1"})
        assert aug.answer_nodes == frozenset({"a1", "a2"})

    def test_role_predicates(self, aug):
        assert aug.is_entity("email")
        assert aug.is_query("q1")
        assert aug.is_answer("a1")
        assert not aug.is_entity("q1")
        assert not aug.is_query("a1")


class TestAttachment:
    def test_query_links_normalized(self, aug):
        links = aug.query_links("q1")
        assert links == pytest.approx({"email": 0.25, "outbox": 0.25, "send": 0.5})
        assert sum(links.values()) == pytest.approx(1.0)

    def test_answer_links_normalized_per_answer(self, aug):
        assert aug.answer_links("a1") == pytest.approx({"outlook": 1.0})
        assert aug.answer_links("a2") == pytest.approx({"send": 0.5, "outlook": 0.5})

    def test_answers_are_sinks(self, aug):
        assert aug.graph.out_degree("a1") == 0
        assert aug.graph.out_degree("a2") == 0

    def test_duplicate_id_rejected(self, aug):
        with pytest.raises(AugmentationError):
            aug.add_query("q1", {"email": 1})
        with pytest.raises(AugmentationError):
            aug.add_answer("email", {"send": 1})

    def test_unknown_entity_rejected(self, aug):
        with pytest.raises(AugmentationError):
            aug.add_query("q2", {"ghost": 1})

    def test_empty_counts_rejected(self, aug):
        with pytest.raises(AugmentationError):
            aug.add_query("q2", {})

    def test_nonpositive_counts_rejected(self, aug):
        with pytest.raises(AugmentationError):
            aug.add_query("q2", {"email": 0})

    def test_remove_query(self, aug):
        aug.remove_query("q1")
        assert "q1" not in aug.query_nodes
        assert not aug.graph.has_node("q1")

    def test_remove_answer(self, aug):
        aug.remove_answer("a2")
        assert not aug.graph.has_node("a2")
        assert aug.graph.out_degree("send") == 1  # only the KG edge remains

    def test_remove_missing_raises(self, aug):
        with pytest.raises(NodeNotFoundError):
            aug.remove_query("ghost")
        with pytest.raises(NodeNotFoundError):
            aug.remove_answer("q1")


class TestKgEdgeAccess:
    def test_is_kg_edge(self, aug):
        assert aug.is_kg_edge("email", "outbox")
        assert not aug.is_kg_edge("q1", "email")
        assert not aug.is_kg_edge("send", "a2")
        assert not aug.is_kg_edge("email", "send") or aug.graph.has_edge("email", "send")

    def test_kg_edges_excludes_links(self, aug, kg):
        kg_edges = {(e.head, e.tail) for e in aug.kg_edges()}
        assert kg_edges == set(kg.edge_keys())

    def test_set_kg_weight(self, aug):
        aug.set_kg_weight("email", "outbox", 0.35)
        assert aug.kg_weight("email", "outbox") == 0.35
        assert aug.graph.weight("email", "outbox") == 0.35

    def test_set_link_weight_rejected(self, aug):
        with pytest.raises(AugmentationError):
            aug.set_kg_weight("q1", "email", 0.5)
        with pytest.raises(AugmentationError):
            aug.set_kg_weight("send", "a2", 0.5)

    def test_kg_view_is_detached(self, aug, kg):
        view = aug.kg_view()
        assert view.num_nodes == kg.num_nodes
        assert view.num_edges == kg.num_edges
        view.set_weight("email", "outbox", 0.01)
        assert aug.kg_weight("email", "outbox") == 0.4

    def test_original_kg_not_mutated(self, aug, kg):
        aug.set_kg_weight("email", "outbox", 0.1)
        assert kg.weight("email", "outbox") == 0.4


class TestCopy:
    def test_copy_independent(self, aug):
        clone = aug.copy()
        clone.set_kg_weight("email", "outbox", 0.05)
        assert aug.kg_weight("email", "outbox") == 0.4
        assert clone.query_nodes == aug.query_nodes


class TestBulkAttach:
    def test_attach_queries_and_answers(self, kg):
        aug = attach_queries_and_answers(
            kg,
            queries={"q1": {"email": 1}},
            answers={"a1": {"send": 2}},
        )
        assert aug.query_nodes == frozenset({"q1"})
        assert aug.answer_nodes == frozenset({"a1"})

    def test_skip_unlinkable(self, kg):
        aug = attach_queries_and_answers(
            kg,
            queries={"q1": {"ghost": 1}, "q2": {"email": 1}},
            answers={"a1": {"nothing": 5}},
            skip_unlinkable=True,
        )
        assert aug.query_nodes == frozenset({"q2"})
        assert aug.answer_nodes == frozenset()

    def test_unlinkable_raises_without_skip(self, kg):
        with pytest.raises(AugmentationError):
            attach_queries_and_answers(
                kg, queries={"q1": {"ghost": 1}}, answers={}
            )
