"""Durable-mode tests for the online loop and QASystem persistence."""

import pytest

from repro.errors import PersistenceError, SGPSolverError, VoteError
from repro.optimize.online import OnlineOptimizer
from repro.persistence import DurableStore
from repro.qa import QASystem, build_knowledge_graph, generate_helpdesk_corpus
from repro.serving import SimilarityParams
from repro.votes import VoteSet
from repro.votes.stream import CountPolicy
from tests.durable_scenario import BATCH_SIZE, build_scenario, kg_weights


class TestDurableOnlineLoop:
    def test_submit_logs_before_buffering(self, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(batch_size=100), store=store
            )
            online.submit(votes[0])
            assert store.wal.last_seq == 1
            assert len(online.pending) == 1

    def test_checkpoint_after_flush_rotates_wal(self, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(BATCH_SIZE), store=store
            )
            for vote in votes[: BATCH_SIZE + 1]:
                online.submit(vote)
            # The flushed batch left the WAL; the straggler remains.
            assert [r.seq for r in store.wal.records()] == [BATCH_SIZE + 1]
            assert store.snapshots.latest()[1] == BATCH_SIZE

    def test_recover_reproduces_live_state_bitwise(self, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(BATCH_SIZE), store=store
            )
            for vote in votes:
                online.submit(vote)
            live_weights = kg_weights(aug)
            live_pending = list(online.pending.votes)

        with DurableStore(tmp_path) as store:
            recovered = OnlineOptimizer.recover(
                store, policy=CountPolicy(BATCH_SIZE)
            )
            assert kg_weights(recovered.aug) == live_weights
            assert list(recovered.pending.votes) == live_pending

    def test_recover_without_snapshot_uses_fallback(self, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(batch_size=100), store=store
            )
            for vote in votes[:2]:
                online.submit(vote)

        fallback, _ = build_scenario()
        with DurableStore(tmp_path) as store:
            recovered = OnlineOptimizer.recover(
                store, fallback=fallback, policy=CountPolicy(batch_size=100)
            )
            assert recovered.aug is fallback
            assert len(recovered.pending) == 2

    def test_recover_without_snapshot_or_fallback_raises(self, tmp_path):
        with DurableStore(tmp_path) as store:
            with pytest.raises(PersistenceError, match="no snapshot"):
                OnlineOptimizer.recover(store)

    def test_manual_checkpoint_keeps_pending_in_wal(self, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(BATCH_SIZE), store=store
            )
            for vote in votes[: BATCH_SIZE + 2]:
                online.submit(vote)
            online.checkpoint()  # planned shutdown with 2 votes pending

        with DurableStore(tmp_path) as store:
            recovered = OnlineOptimizer.recover(
                store, policy=CountPolicy(BATCH_SIZE)
            )
            assert len(recovered.pending) == 2
            assert recovered.history == []  # applied work is in the snapshot

    def test_checkpoint_without_store_raises(self):
        aug, _ = build_scenario()
        with pytest.raises(PersistenceError):
            OnlineOptimizer(aug).checkpoint()

    def test_restart_after_draining_checkpoint_keeps_new_votes(self, tmp_path):
        """Votes submitted after a restart that followed a WAL-draining
        checkpoint must survive the next crash (seq-reuse regression)."""
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(BATCH_SIZE), store=store
            )
            for vote in votes[:BATCH_SIZE]:
                online.submit(vote)  # flush fires, checkpoint drains the WAL
            assert store.wal.records() == []

        # Restart, accept one more vote, then "crash" before any flush.
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer.recover(
                store, policy=CountPolicy(BATCH_SIZE)
            )
            online.submit(votes[BATCH_SIZE])

        with DurableStore(tmp_path) as store:
            recovered = OnlineOptimizer.recover(
                store, policy=CountPolicy(BATCH_SIZE)
            )
            assert list(recovered.pending.votes) == [votes[BATCH_SIZE]]


class DedupingVoteSet(VoteSet):
    """A validating buffer: rejects a second vote for the same query."""

    def add(self, vote):
        if any(v.query == vote.query for v in self.votes):
            raise VoteError(f"duplicate vote for query {vote.query!r}")
        super().add(vote)


class TestDurableSubmitRejection:
    """Regression: a buffer-rejected vote must not desync WAL sequences.

    ``submit`` used to append the WAL sequence *before* offering the
    vote to the pending buffer; a validating/deduplicating buffer that
    raised left a phantom sequence in ``_pending_seqs``, so a later
    ``checkpoint()`` could stamp a snapshot with a sequence that was
    never applied — and recovery would then drop a real vote.
    """

    def test_rejected_vote_keeps_seqs_lockstep(self, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(batch_size=100), store=store
            )
            online.pending = DedupingVoteSet()
            online.submit(votes[0])
            with pytest.raises(VoteError, match="duplicate"):
                online.submit(votes[0])
            online.submit(votes[1])
            # The rejected resubmission is durable in the WAL (logged
            # before the buffer saw it) but tracked nowhere else:
            assert store.wal.last_seq == 3
            assert [v.query for v in online.pending.votes] == [
                votes[0].query,
                votes[1].query,
            ]
            assert list(online.pending_seqs) == [1, 3]

    def test_checkpoint_after_rejection_covers_only_applied_seqs(
        self, tmp_path
    ):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(batch_size=100), store=store
            )
            online.pending = DedupingVoteSet()
            online.submit(votes[0])
            with pytest.raises(VoteError):
                online.submit(votes[0])
            # applied_through = min(pending seqs) - 1 = 0: the phantom
            # seq 2 must not drag the snapshot mark past the live vote.
            online.checkpoint()
            assert store.snapshots.newest_seq() == 0
            assert [r.seq for r in store.wal.records()] == [1, 2]

    def test_replay_rejects_identically_and_never_resurrects(self, tmp_path):
        aug, votes = build_scenario()
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(batch_size=100), store=store
            )
            online.pending = DedupingVoteSet()
            online.submit(votes[0])
            with pytest.raises(VoteError):
                online.submit(votes[0])
            online.submit(votes[1])
            live_queries = [v.query for v in online.pending.votes]

        fallback, _ = build_scenario()
        with DurableStore(tmp_path) as store:
            recovered = OnlineOptimizer(
                fallback, policy=CountPolicy(batch_size=100), store=store
            )
            recovered.pending = DedupingVoteSet()
            recovered._replay(store.recover().tail)
            assert [v.query for v in recovered.pending.votes] == live_queries
            assert list(recovered.pending_seqs) == [1, 3]


class TestFlushFailureRequeue:
    """A solver exception must not cost the pending batch (the old bug)."""

    def test_failed_flush_requeues_batch(self, streaming_setup_small,
                                         monkeypatch):
        aug, votes = streaming_setup_small

        def exploding(*args, **kwargs):
            raise SGPSolverError("injected solver failure")

        monkeypatch.setattr(
            "repro.optimize.online.solve_multi_vote", exploding
        )
        online = OnlineOptimizer(aug, policy=CountPolicy(BATCH_SIZE))
        with pytest.raises(SGPSolverError):
            for vote in votes:
                online.submit(vote)
        assert len(online.pending) == BATCH_SIZE
        assert online.history == []

        # With the solver healthy again, the same votes flush fine.
        monkeypatch.undo()
        outcome = online.flush()
        assert outcome is not None
        assert outcome.num_votes == BATCH_SIZE

    def test_failed_flush_preserves_arrival_order(self, streaming_setup_small,
                                                  monkeypatch):
        aug, votes = streaming_setup_small
        online = OnlineOptimizer(aug, policy=CountPolicy(batch_size=100))
        for vote in votes[:4]:
            online.submit(vote)

        def exploding(*args, **kwargs):
            raise SGPSolverError("injected solver failure")

        monkeypatch.setattr(
            "repro.optimize.online.solve_multi_vote", exploding
        )
        with pytest.raises(SGPSolverError):
            online.flush()
        assert list(online.pending.votes) == votes[:4]

    def test_failed_flush_rolls_back_partial_mutation(
            self, streaming_setup_small, monkeypatch):
        """A solver that dies mid-apply must not leave weights behind:
        the retry has to run against exactly the state recovery would
        rebuild, or live and recovered graphs diverge."""
        aug, votes = streaming_setup_small
        before = kg_weights(aug)
        edge = next(iter(before))

        def mutate_then_explode(target, *args, **kwargs):
            target.set_kg_weight(*edge, 0.123456)
            raise SGPSolverError("injected mid-apply failure")

        monkeypatch.setattr(
            "repro.optimize.online.solve_multi_vote", mutate_then_explode
        )
        online = OnlineOptimizer(aug, policy=CountPolicy(batch_size=100))
        for vote in votes[:4]:
            online.submit(vote)
        with pytest.raises(SGPSolverError):
            online.flush()
        assert kg_weights(aug) == before

        # The healthy retry now matches an uninterrupted run bitwise.
        monkeypatch.undo()
        online.flush()
        clean_aug, clean_votes = build_scenario()
        clean = OnlineOptimizer(clean_aug, policy=CountPolicy(batch_size=100))
        for vote in clean_votes[:4]:
            clean.submit(vote)
        clean.flush()
        assert kg_weights(aug) == kg_weights(clean_aug)

    def test_failed_flush_keeps_wal_seqs_aligned(self, streaming_setup_small,
                                                 tmp_path, monkeypatch):
        aug, votes = streaming_setup_small
        with DurableStore(tmp_path) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(BATCH_SIZE), store=store
            )

            def exploding(*args, **kwargs):
                raise SGPSolverError("injected solver failure")

            monkeypatch.setattr(
                "repro.optimize.online.solve_multi_vote", exploding
            )
            with pytest.raises(SGPSolverError):
                for vote in votes[:BATCH_SIZE]:
                    online.submit(vote)
            # Votes and their WAL sequences are both intact and aligned.
            assert len(online.pending) == BATCH_SIZE
            assert online._pending_seqs == [1, 2, 3]
            assert store.wal.last_seq == BATCH_SIZE

            monkeypatch.undo()
            online.flush()
            assert store.wal.records() == []  # rotated after the retry


@pytest.fixture
def streaming_setup_small():
    return build_scenario()


class TestQASystemPersistence:
    @pytest.fixture
    def system(self):
        corpus = generate_helpdesk_corpus(
            num_topics=3,
            entities_per_topic=6,
            docs_per_topic=3,
            num_train_questions=6,
            num_test_questions=4,
            seed=11,
        )
        kg = build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)
        qa = QASystem(kg, corpus.vocabulary, params=SimilarityParams(k=5))
        qa.add_documents(corpus.document_texts())
        return qa, corpus

    def test_persist_restore_round_trips_weights(self, system, tmp_path):
        qa, _ = system
        path = tmp_path / "qa-graph.json"
        before = {e.key: e.weight for e in qa.augmented_graph.kg_edges()}
        qa.persist(path)
        qa.restore(path)
        after = {e.key: e.weight for e in qa.augmented_graph.kg_edges()}
        assert after == before

    def test_restore_discards_stale_engine_cache(self, system, tmp_path):
        """Post-restore scores reflect restored weights, not the LRU."""
        qa, _ = system
        question = "how do i " + sorted(qa.augmented_graph.entity_nodes)[0]
        path = tmp_path / "qa-graph.json"
        qa.persist(path)
        baseline = qa.ask(question, question_id="probe")

        # Corrupt the live weights and warm the cache against them.
        edge = next(iter(qa.augmented_graph.kg_edges()))
        qa.augmented_graph.set_kg_weight(edge.head, edge.tail, 1e-3)
        qa.ask(question, question_id="probe")

        qa.restore(path)
        assert qa.augmented_graph.kg_weight(edge.head, edge.tail) == \
            edge.weight
        restored = qa.ask(question, question_id="probe")
        assert restored == baseline

    def test_restore_clears_session_state(self, system, tmp_path):
        qa, _ = system
        question = "tell me about " + sorted(qa.augmented_graph.entity_nodes)[0]
        path = tmp_path / "qa-graph.json"
        ranked = qa.ask(question)
        qa.vote("__q0", ranked[0][0])
        assert len(qa.pending_votes) == 1
        qa.persist(path)
        qa.restore(path)
        assert len(qa.pending_votes) == 0
        # Auto ids continue past the persisted __q0 query node.
        qa.ask(question)
        assert "__q1" in qa.augmented_graph.query_nodes

    def test_restored_votes_are_empty_voteset(self, system, tmp_path):
        qa, _ = system
        path = tmp_path / "qa-graph.json"
        qa.persist(path)
        qa.restore(path)
        assert isinstance(qa.pending_votes, VoteSet)
