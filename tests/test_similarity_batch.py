"""Unit + property tests for batched inverse P-distance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodeNotFoundError
from repro.graph import AugmentedGraph, random_digraph
from repro.similarity import inverse_pdistance
from repro.similarity.inverse_pdistance import inverse_pdistance_batch


def build(seed=3, n=15, num_queries=4, num_answers=5):
    import numpy as np

    kg = random_digraph(n, 2.5, seed=seed, out_mass=0.9)
    aug = AugmentedGraph(kg)
    labels = sorted(kg.nodes())
    rng = np.random.default_rng(seed + 1)
    for a in range(num_answers):
        picks = rng.choice(len(labels), size=2, replace=False)
        aug.add_answer(f"ans{a}", {labels[int(i)]: 1 for i in picks})
    for q in range(num_queries):
        picks = rng.choice(len(labels), size=2, replace=False)
        aug.add_query(f"qry{q}", {labels[int(i)]: 1 for i in picks})
    return aug


class TestBatch:
    def test_matches_per_query_evaluation(self):
        aug = build()
        queries = sorted(aug.query_nodes)
        answers = sorted(aug.answer_nodes)
        batch = inverse_pdistance_batch(aug.graph, queries, answers)
        for query in queries:
            single = inverse_pdistance(aug.graph, query, answers)
            for answer in answers:
                assert batch[query][answer] == pytest.approx(
                    single[answer], rel=1e-12, abs=1e-15
                )

    def test_empty_sources(self):
        aug = build()
        assert inverse_pdistance_batch(aug.graph, [], ["ans0"]) == {}

    def test_missing_nodes(self):
        aug = build()
        with pytest.raises(NodeNotFoundError):
            inverse_pdistance_batch(aug.graph, ["ghost"], ["ans0"])
        with pytest.raises(NodeNotFoundError):
            inverse_pdistance_batch(aug.graph, ["qry0"], ["ghost"])

    def test_bad_length(self):
        aug = build()
        with pytest.raises(ValueError):
            inverse_pdistance_batch(aug.graph, ["qry0"], ["ans0"], max_length=0)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        length=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_batch_equals_single(self, seed, length):
        aug = build(seed=seed)
        queries = sorted(aug.query_nodes)
        answers = sorted(aug.answer_nodes)
        batch = inverse_pdistance_batch(
            aug.graph, queries, answers, max_length=length
        )
        query = queries[seed % len(queries)]
        single = inverse_pdistance(
            aug.graph, query, answers, max_length=length
        )
        for answer in answers:
            assert batch[query][answer] == pytest.approx(
                single[answer], rel=1e-12, abs=1e-15
            )
