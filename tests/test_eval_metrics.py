"""Unit + property tests for the evaluation metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval.metrics import (
    average_precision,
    average_rank,
    hits_at_k,
    mean_average_precision,
    mean_reciprocal_rank,
    omega,
    omega_avg,
    percentage_difference,
    rank_changes,
    ranking_improvement,
)


class TestOmega:
    def test_definition3(self):
        # Best answers moved 2→1, 3→1, 1→2: Ω = 1 + 2 − 1 = 2.
        assert omega([2, 3, 1], [1, 1, 2]) == 2

    def test_omega_avg_eq21(self):
        assert omega_avg([2, 3, 1], [1, 1, 2]) == pytest.approx(2 / 3)

    def test_no_change_is_zero(self):
        assert omega([5, 2], [5, 2]) == 0

    def test_mismatched_lengths(self):
        with pytest.raises(EvaluationError):
            omega([1, 2], [1])

    def test_invalid_ranks(self):
        with pytest.raises(EvaluationError):
            omega([0], [1])
        with pytest.raises(EvaluationError):
            omega([1.5], [1])

    def test_empty_average_rejected(self):
        with pytest.raises(EvaluationError):
            omega_avg([], [])

    def test_rank_changes(self):
        assert rank_changes([4, 2], [1, 3]) == [3, -1]

    @given(
        before=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=20)
    )
    @settings(max_examples=25, deadline=None)
    def test_property_omega_bounds(self, before):
        """Promoting everything to rank 1 maximizes Ω at Σ(rank−1)."""
        best_case = omega(before, [1] * len(before))
        assert best_case == sum(r - 1 for r in before)
        assert omega_avg(before, [1] * len(before)) == pytest.approx(
            best_case / len(before)
        )


class TestImprovement:
    def test_table4_style(self):
        # 2→1 is +50 %; 4→5 is −25 %; mean = +12.5 %.
        assert ranking_improvement([2, 4], [1, 5]) == pytest.approx(0.125)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            ranking_improvement([], [])


class TestMRR:
    def test_basic(self):
        assert mean_reciprocal_rank([1, 2, 4]) == pytest.approx(
            (1 + 0.5 + 0.25) / 3
        )

    def test_perfect(self):
        assert mean_reciprocal_rank([1, 1, 1]) == 1.0

    def test_bounds(self):
        assert 0 < mean_reciprocal_rank([100]) <= 1

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            mean_reciprocal_rank([])


class TestAveragePrecision:
    def test_single_relevant_equals_reciprocal_rank(self):
        ranked = ["a", "b", "c", "d"]
        assert average_precision(ranked, {"c"}) == pytest.approx(1 / 3)

    def test_multiple_relevant(self):
        ranked = ["a", "b", "c", "d"]
        # relevant at 1 and 3: AP = (1/1 + 2/3) / 2.
        assert average_precision(ranked, {"a", "c"}) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )

    def test_missing_relevant_scores_zero(self):
        assert average_precision(["a", "b"], {"z"}) == 0.0

    def test_empty_relevant_rejected(self):
        with pytest.raises(EvaluationError):
            average_precision(["a"], set())

    def test_map(self):
        lists = [["a", "b"], ["b", "a"]]
        relevant = [{"a"}, {"a"}]
        assert mean_average_precision(lists, relevant) == pytest.approx(
            (1.0 + 0.5) / 2
        )

    def test_map_validates(self):
        with pytest.raises(EvaluationError):
            mean_average_precision([], [])
        with pytest.raises(EvaluationError):
            mean_average_precision([["a"]], [])


class TestHitsAtK:
    def test_table5_style(self):
        ranks = [1, 2, 3, 7, 12]
        assert hits_at_k(ranks, 1) == pytest.approx(0.2)
        assert hits_at_k(ranks, 3) == pytest.approx(0.6)
        assert hits_at_k(ranks, 10) == pytest.approx(0.8)

    def test_monotone_in_k(self):
        ranks = [1, 4, 9, 2, 6]
        values = [hits_at_k(ranks, k) for k in (1, 3, 5, 10)]
        assert values == sorted(values)

    def test_invalid(self):
        with pytest.raises(EvaluationError):
            hits_at_k([], 3)
        with pytest.raises(EvaluationError):
            hits_at_k([1], 0)


class TestPercentageDifference:
    def test_eq22(self):
        assert percentage_difference(2.0, 2.5) == pytest.approx(0.25)

    def test_decreasing(self):
        assert percentage_difference(2.0, 1.0) == pytest.approx(-0.5)

    def test_zero_base_rejected(self):
        with pytest.raises(EvaluationError):
            percentage_difference(0.0, 1.0)


class TestAverageRank:
    def test_basic(self):
        assert average_rank([2, 4]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            average_rank([])
