"""Failure-injection tests: the pipeline must degrade loudly or safely.

Each test constructs a pathological input — degenerate graphs, hostile
votes, broken solver budgets, a process killed mid-flush — and checks
that the library either raises a typed error, returns a well-formed
"nothing to do" result, or recovers the exact pre-crash state; never a
silently corrupted graph.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    EvaluationError,
    SGPModelError,
    SGPSolverError,
)
from repro.graph import AugmentedGraph, WeightedDiGraph, random_digraph
from repro.optimize import solve_multi_vote, solve_single_votes, solve_split_merge
from repro.optimize.encoder import encode_votes
from repro.optimize.online import OnlineOptimizer
from repro.persistence import DurableStore
from repro.serving import SimilarityParams
from repro.sgp import SGPProblem, Signomial, solve_sgp
from repro.similarity import inverse_pdistance, ppr_vector, rank_answers
from repro.votes import Vote, VoteSet
from repro.votes.stream import CountPolicy
from tests.durable_scenario import BATCH_SIZE, build_scenario, kg_weights

REPO_ROOT = Path(__file__).resolve().parent.parent


def minimal_aug():
    kg = WeightedDiGraph.from_edges([("x", "y", 0.5)], strict=False)
    aug = AugmentedGraph(kg)
    aug.add_query("q", {"x": 1})
    aug.add_answer("a1", {"y": 1})
    return aug


class TestDegenerateGraphs:
    def test_single_answer_vote_is_trivially_positive(self):
        aug = minimal_aug()
        vote = Vote("q", ("a1",), "a1")
        # No rivals -> no constraints -> SGPModelError from the encoder.
        with pytest.raises(SGPModelError):
            encode_votes(aug, [vote])

    def test_single_answer_through_multi_vote_is_a_noop(self):
        aug = minimal_aug()
        vote = Vote("q", ("a1",), "a1")
        optimized, report = solve_multi_vote(aug, [vote])
        assert report.solution is None
        assert optimized.kg_weight("x", "y") == 0.5

    def test_graph_with_no_kg_edges(self):
        kg = WeightedDiGraph(strict=False)
        kg.add_node("x")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"x": 1})
        aug.add_answer("a2", {"x": 1})
        vote = Vote("q", ("a1", "a2"), "a2")
        optimized, report = solve_multi_vote(aug, [vote])
        assert report.solution is None  # nothing adjustable, graph unchanged

    def test_similarity_on_empty_candidate_pool(self):
        aug = minimal_aug()
        with pytest.raises(EvaluationError):
            rank_answers(aug, "q", answers=[])

    def test_ppr_on_absorbing_chain_converges(self):
        # All mass flows into a sink: power iteration must still settle.
        graph = WeightedDiGraph.from_edges(
            [("a", "b", 1.0), ("b", "c", 1.0)], strict=False
        )
        pi = ppr_vector(graph, "a", method="power")
        assert pi["c"] > 0

    def test_zero_similarity_everywhere(self):
        """Query whose entities reach no answer: rankings are all ties."""
        kg = WeightedDiGraph.from_edges([("x", "y", 0.5)], strict=False)
        kg.add_node("z")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"z": 1})  # z has no out-edges
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"y": 1})
        ranked = rank_answers(aug, "q", params=SimilarityParams(k=2))
        assert all(score == 0.0 for _, score in ranked)
        # Deterministic tie-break keeps the order stable.
        assert [a for a, _ in ranked] == sorted(aug.answer_nodes, key=repr)


class TestHostileVotes:
    def test_all_votes_conflicting(self):
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 0.45), ("x", "z", 0.45)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"z": 1})
        votes = VoteSet(
            [
                Vote("q", ("a1", "a2"), "a2"),
                Vote("q", ("a1", "a2"), "a1"),
                Vote("q", ("a1", "a2"), "a2"),
                Vote("q", ("a1", "a2"), "a1"),
            ]
        )
        optimized, report = solve_multi_vote(
            aug, votes, feasibility_filter=False
        )
        # Half the demands are unsatisfiable; the solver reports that
        # honestly and the weights stay inside bounds.
        assert report.num_violated_deviations >= 2
        for edge in optimized.kg_edges():
            assert 0 < edge.weight <= 1.0

    def test_duplicate_votes_are_harmless(self):
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 0.6), ("x", "z", 0.3)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"z": 1})
        vote = Vote("q", ("a1", "a2"), "a2")
        optimized, report = solve_multi_vote(
            aug, [vote, vote, vote], feasibility_filter=False
        )
        assert report.num_constraints == 3  # one per copy; still solvable
        for edge in optimized.kg_edges():
            assert 0 < edge.weight <= 1.0

    def test_single_vote_driver_survives_unsolvable_votes(self):
        kg = WeightedDiGraph.from_edges([("x", "y", 0.5)], strict=False)
        kg.add_node("island")
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"island": 1})
        impossible = Vote("q", ("a1", "a2"), "a2")
        optimized, report = solve_single_votes(aug, [impossible] * 3)
        assert report.num_skipped == 3
        assert optimized.kg_weight("x", "y") == 0.5

    def test_split_merge_with_all_positive_votes(self):
        aug = minimal_aug()
        aug.add_answer("a2", {"y": 1})
        votes = [Vote("q", ("a1", "a2"), "a1") for _ in range(4)]
        optimized, report = solve_split_merge(aug, votes)
        # Positive-only votes need no change; merge must not crash.
        assert report.num_clusters >= 1


class TestSolverBudgets:
    def test_tiny_iteration_budget_still_returns(self):
        problem = SGPProblem([0.2, 0.4], lower=0.01, upper=1.0)
        problem.add_constraint(
            Signomial.variable(1) - Signomial.variable(0), margin=0.05
        )
        from tests.test_sgp_solver import distance_objective

        problem.set_objective(distance_objective([0.2, 0.4]))
        solution = solve_sgp(problem, max_iter=1)
        # May be unconverged, but must be inside bounds and report state.
        assert np.all(solution.x >= problem.lower - 1e-12)
        assert np.all(solution.x <= problem.upper + 1e-12)
        assert solution.num_constraints == 1

    def test_power_iteration_budget_error(self):
        graph = random_digraph(30, 3.0, seed=1)
        with pytest.raises(ConvergenceError):
            ppr_vector(graph, next(iter(graph.nodes())), max_iter=1, tol=1e-15)

    def test_unknown_solver_method_propagates(self):
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 0.6), ("x", "z", 0.3)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"z": 1})
        vote = Vote("q", ("a1", "a2"), "a2")
        with pytest.raises(SGPSolverError):
            solve_multi_vote(
                aug, [vote], solver_method="nonsense",
                feasibility_filter=False,
            )


class TestNumericalEdges:
    def test_extremely_small_weights(self):
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 1e-4), ("x", "z", 1e-4)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"z": 1})
        vote = Vote("q", ("a1", "a2"), "a2")
        optimized, report = solve_multi_vote(
            aug, [vote], feasibility_filter=False
        )
        scores = inverse_pdistance(optimized.graph, "q", ["a1", "a2"])
        assert np.isfinite(scores["a1"]) and np.isfinite(scores["a2"])

    def test_weights_at_upper_bound(self):
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 1.0), ("x", "z", 1.0)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"z": 1})
        vote = Vote("q", ("a1", "a2"), "a2")
        optimized, _ = solve_multi_vote(aug, [vote], feasibility_filter=False)
        for edge in optimized.kg_edges():
            assert edge.weight <= 1.0 + 1e-12

    def test_long_max_length_does_not_overflow(self):
        aug = minimal_aug()
        scores = inverse_pdistance(aug.graph, "q", ["a1"], max_length=200)
        assert 0 <= scores["a1"] <= 1.0


def crash_dir(tmp_path, name):
    """Durable-store directory for a crash test.

    Honors ``CRASH_TEST_DIR`` so CI can point the tests at a workspace
    path and upload the WAL/snapshot files as artifacts on failure.
    """
    base = os.environ.get("CRASH_TEST_DIR")
    directory = (Path(base) if base else tmp_path) / name
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def reference_weights(upto=None, batch_size=BATCH_SIZE):
    """Edge weights of an uninterrupted run over the shared scenario."""
    aug, votes = build_scenario()
    online = OnlineOptimizer(aug, policy=CountPolicy(batch_size))
    for vote in votes if upto is None else votes[:upto]:
        online.submit(vote)
    return aug, votes, online


class TestCrashRecovery:
    """Kill-mid-flush and torn-tail scenarios against the durable store."""

    def test_kill_mid_flush_recovers_bitwise(self, tmp_path):
        """SIGKILL during the second checkpoint loses nothing.

        A child process streams the shared scenario's votes and dies
        inside its second flush — after the solver mutated its
        in-memory graph, before the checkpoint persisted anything.  The
        parent recovers from what hit disk (first snapshot + WAL tail),
        finishes the stream, and must land on weights bitwise equal to
        an uninterrupted run.
        """
        wal_dir = crash_dir(tmp_path, "kill-mid-flush")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tests" / "durable_crash_child.py"),
                str(wal_dir),
                "2",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        fallback, votes = build_scenario()
        with DurableStore(wal_dir) as store:
            recovered = OnlineOptimizer.recover(
                store,
                fallback=fallback,
                policy=CountPolicy(BATCH_SIZE),
            )
            # The child got through flush #1 (votes 1..3, checkpointed)
            # and died in flush #2 (votes 4..6): replay refires batch 2.
            assert len(recovered.history) == 1
            assert recovered.total_votes_processed == BATCH_SIZE
            for vote in votes[2 * BATCH_SIZE :]:
                recovered.submit(vote)

        reference_aug, _, reference = reference_weights()
        # Batch 1 predates the snapshot, so only batch 2 is in the
        # recovered history; the weights must still match exactly.
        assert len(recovered.history) + 1 == len(reference.history)
        assert kg_weights(recovered.aug) == kg_weights(reference_aug)

    def test_torn_final_wal_record_is_skipped(self, tmp_path):
        """A torn trailing record truncates cleanly; earlier votes survive.

        Simulates a crash mid-``write``: the last WAL line is cut short
        (no terminator).  Recovery must drop exactly that record, keep
        every fsynced vote before it, and land on the same weights as a
        run that never saw the torn vote.
        """
        wal_dir = crash_dir(tmp_path, "torn-tail")
        aug, votes = build_scenario()
        with DurableStore(wal_dir) as store:
            online = OnlineOptimizer(
                aug, policy=CountPolicy(batch_size=100), store=store
            )
            for vote in votes[:5]:
                online.submit(vote)
        wal_path = wal_dir / "votes.wal"
        intact = wal_path.read_bytes()
        wal_path.write_bytes(intact + b'{"seq": 6, "vote": {"que')

        fallback, _ = build_scenario()
        with DurableStore(wal_dir) as store:
            recovered = OnlineOptimizer.recover(
                store,
                fallback=fallback,
                policy=CountPolicy(batch_size=100),
            )
            assert len(recovered.pending) == 5
            assert store.wal.last_seq == 5
            recovered.flush()

        reference_aug, _, reference = reference_weights(upto=5, batch_size=100)
        reference.flush()
        assert kg_weights(recovered.aug) == kg_weights(reference_aug)
