"""Unit tests for SimRank."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, NodeNotFoundError
from repro.graph import WeightedDiGraph, random_digraph
from repro.similarity.simrank import simrank, simrank_matrix


@pytest.fixture
def citation_graph():
    """Classic SimRank example: two 'papers' cited by the same source."""
    return WeightedDiGraph.from_edges(
        [
            ("src", "a", 0.5),
            ("src", "b", 0.5),
            ("other", "c", 1.0),
        ],
        strict=False,
    )


class TestSimRank:
    def test_self_similarity_is_one(self, citation_graph):
        matrix, index = simrank_matrix(citation_graph)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_shared_referencer_gives_similarity(self, citation_graph):
        # a and b are both referenced by src: similar.
        assert simrank(citation_graph, "a", "b") == pytest.approx(0.8)

    def test_unrelated_nodes_score_zero(self, citation_graph):
        assert simrank(citation_graph, "a", "c") == 0.0

    def test_no_inlinks_score_zero(self, citation_graph):
        # src and other have no in-links at all.
        assert simrank(citation_graph, "src", "other") == 0.0

    def test_symmetry(self):
        graph = random_digraph(15, 2.5, seed=4)
        matrix, _ = simrank_matrix(graph)
        assert np.allclose(matrix, matrix.T, atol=1e-9)

    def test_scores_in_unit_interval(self):
        graph = random_digraph(15, 2.5, seed=5)
        matrix, _ = simrank_matrix(graph)
        assert matrix.min() >= -1e-12
        assert matrix.max() <= 1.0 + 1e-12

    def test_decay_lowers_offdiagonal(self, citation_graph):
        low = simrank(citation_graph, "a", "b", decay=0.4)
        high = simrank(citation_graph, "a", "b", decay=0.9)
        assert low < high

    def test_weights_matter(self):
        balanced = WeightedDiGraph.from_edges(
            [("s", "a", 0.5), ("s", "b", 0.5), ("t", "a", 0.5)], strict=False
        )
        skewed = WeightedDiGraph.from_edges(
            [("s", "a", 0.1), ("s", "b", 0.9), ("t", "a", 0.9)], strict=False
        )
        assert simrank(balanced, "a", "b") != pytest.approx(
            simrank(skewed, "a", "b")
        )

    def test_empty_graph(self):
        matrix, index = simrank_matrix(WeightedDiGraph())
        assert matrix.shape == (0, 0)
        assert index == {}

    def test_missing_node_raises(self, citation_graph):
        with pytest.raises(NodeNotFoundError):
            simrank(citation_graph, "ghost", "a")

    def test_convergence_error_on_tiny_budget(self):
        graph = random_digraph(10, 2.0, seed=6)
        with pytest.raises(ConvergenceError):
            simrank_matrix(graph, max_iter=1, tol=1e-12)

    def test_bad_decay(self, citation_graph):
        with pytest.raises(ValueError):
            simrank_matrix(citation_graph, decay=1.0)

    def test_ranking_differs_from_ppr_family(self):
        """SimRank is reference-based: it can rate nodes similar that a
        walk-probability measure scores zero (no path between them)."""
        graph = WeightedDiGraph.from_edges(
            [("src", "a", 0.5), ("src", "b", 0.5)], strict=False
        )
        from repro.similarity import inverse_pdistance

        walk_score = inverse_pdistance(graph, "a", ["b"], max_length=5)["b"]
        assert walk_score == 0.0  # no a -> b path
        assert simrank(graph, "a", "b") > 0.0  # shared referencer
