"""Unit tests for tracing spans, trace trees, and trace exporters."""

import json
import threading

import pytest

from repro.obs import (
    JsonlTraceWriter,
    add_trace_listener,
    clear_traces,
    current_span,
    last_trace,
    recent_traces,
    remove_trace_listener,
    set_trace_sampling,
    trace_span,
    traces_to_jsonl,
    write_traces_jsonl,
)


@pytest.fixture(autouse=True)
def _fresh_trace_buffer():
    clear_traces()
    yield
    clear_traces()


def _nested_trace():
    with trace_span("root", request="r1") as root:
        with trace_span("child_a"):
            with trace_span("grandchild", n=1):
                pass
        with trace_span("child_b") as b:
            b.set_attrs(items=3)
        root.set_attrs(status="ok")
    return last_trace()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        trace = _nested_trace()
        assert trace.span_names() == ["root", "child_a", "grandchild", "child_b"]
        depths = {span.name: depth for span, depth, _ in trace.walk()}
        assert depths == {"root": 0, "child_a": 1, "grandchild": 2, "child_b": 1}

    def test_attrs_merge(self):
        trace = _nested_trace()
        assert trace.root.attrs == {"request": "r1", "status": "ok"}
        assert trace.find("child_b").attrs == {"items": 3}

    def test_durations_contain_children(self):
        trace = _nested_trace()
        child_total = sum(c.duration for c in trace.root.children)
        assert trace.root.duration >= child_total

    def test_current_span_tracks_the_stack(self):
        assert current_span() is None
        with trace_span("outer"):
            assert current_span().name == "outer"
            with trace_span("inner"):
                assert current_span().name == "inner"
            assert current_span().name == "outer"
        assert current_span() is None

    def test_exception_marks_span_and_propagates(self):
        with pytest.raises(RuntimeError):
            with trace_span("root"):
                with trace_span("failing"):
                    raise RuntimeError("boom")
        trace = last_trace()
        assert trace.find("failing").attrs["error"] == "RuntimeError"
        assert trace.root.end is not None  # still finished cleanly

    def test_threads_get_independent_traces(self):
        seen = []

        def worker():
            with trace_span("thread_root"):
                seen.append(current_span().name)

        with trace_span("main_root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            # the worker's root must not have nested under ours
            assert [c.name for c in current_span().children] == []
        assert seen == ["thread_root"]
        assert {t.root.name for t in recent_traces()} == {
            "main_root", "thread_root",
        }


class TestBuffer:
    def test_only_root_close_finishes_a_trace(self):
        with trace_span("root"):
            with trace_span("child"):
                pass
            assert last_trace() is None
        assert last_trace().root.name == "root"

    def test_recent_traces_order_and_limit(self):
        for name in ("t1", "t2", "t3"):
            with trace_span(name):
                pass
        assert [t.root.name for t in recent_traces()] == ["t1", "t2", "t3"]
        assert [t.root.name for t in recent_traces(2)] == ["t2", "t3"]

    def test_listener_sees_finished_traces(self):
        got = []
        add_trace_listener(got.append)
        try:
            with trace_span("watched"):
                pass
        finally:
            remove_trace_listener(got.append)
        assert [t.root.name for t in got] == ["watched"]


class TestSampling:
    @pytest.fixture(autouse=True)
    def _always_restore_sampling(self):
        yield
        set_trace_sampling(1)

    def test_one_in_n_roots_is_traced(self):
        set_trace_sampling(3)
        for i in range(7):
            with trace_span(f"req{i}"):
                pass
        # The first root after (re)configuring is always traced.
        assert [t.root.name for t in recent_traces()] == ["req0", "req3", "req6"]

    def test_skipped_root_suppresses_its_children(self):
        set_trace_sampling(2)
        for i in range(4):
            with trace_span(f"req{i}"):
                with trace_span("child"):
                    pass
        traces = recent_traces()
        assert [t.root.name for t in traces] == ["req0", "req2"]
        # Children neither vanish from traced roots nor leak out of
        # skipped ones as standalone traces.
        assert all(t.span_names() == [t.root.name, "child"] for t in traces)

    def test_noop_span_accepts_the_span_surface(self):
        set_trace_sampling(2)
        with trace_span("traced"):
            pass
        with trace_span("skipped", request="r1") as span:
            span.set_attrs(items=3)
            assert span.duration == 0.0
        assert [t.root.name for t in recent_traces()] == ["traced"]

    def test_nested_spans_inside_a_live_root_are_never_sampled(self):
        set_trace_sampling(2)
        with trace_span("root"):
            for _ in range(5):
                with trace_span("child"):
                    pass
        assert len(last_trace().root.children) == 5

    def test_set_trace_sampling_returns_previous_and_validates(self):
        assert set_trace_sampling(10) == 1
        assert set_trace_sampling(1) == 10
        with pytest.raises(ValueError):
            set_trace_sampling(0)

    def test_clear_traces_rephases_the_sampler(self):
        set_trace_sampling(2)
        with trace_span("a"):
            pass
        clear_traces()
        with trace_span("b"):  # first after clear: traced again
            pass
        assert [t.root.name for t in recent_traces()] == ["b"]


class TestExport:
    def test_json_lines_shape(self):
        trace = _nested_trace()
        records = [json.loads(line) for line in trace.to_json_lines()]
        assert len(records) == 4
        root = records[0]
        assert root["parent_id"] is None
        assert root["depth"] == 0
        assert root["start_ms"] == 0.0
        by_name = {r["name"]: r for r in records}
        assert by_name["grandchild"]["parent_id"] == by_name["child_a"]["span_id"]
        assert by_name["grandchild"]["depth"] == 2
        assert all(r["trace_id"] == root["trace_id"] for r in records)
        assert all(r["duration_ms"] >= 0 for r in records)
        assert by_name["child_b"]["attrs"] == {"items": 3}

    def test_non_json_attrs_become_repr(self):
        with trace_span("root", obj={1, 2}):
            pass
        (line,) = last_trace().to_json_lines()
        assert json.loads(line)["attrs"]["obj"] == repr({1, 2})

    def test_render_tree(self):
        trace = _nested_trace()
        lines = trace.render().splitlines()
        assert lines[0].startswith("root  ")
        assert "[request=r1 status=ok]" in lines[0]
        assert lines[1].startswith("  child_a")
        assert lines[2].startswith("    grandchild")
        assert "ms" in lines[0]

    def test_render_min_duration_hides_fast_children(self):
        trace = _nested_trace()
        rendered = trace.render(min_duration=10.0)
        assert rendered.splitlines()[0].startswith("root")  # root always shown
        assert "child_a" not in rendered

    def test_traces_to_jsonl_concatenates(self):
        t1 = _nested_trace()
        with trace_span("single"):
            pass
        t2 = last_trace()
        blob = traces_to_jsonl([t1, t2])
        assert blob.endswith("\n")
        assert len(blob.strip().splitlines()) == 5

    def test_write_traces_jsonl(self, tmp_path):
        trace = _nested_trace()
        path = tmp_path / "traces.jsonl"
        assert write_traces_jsonl(path, [trace]) == 4
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4

    def test_jsonl_trace_writer_streams_live(self, tmp_path):
        path = tmp_path / "live.jsonl"
        with JsonlTraceWriter(path):
            with trace_span("streamed"):
                with trace_span("inner"):
                    pass
        with trace_span("after_detach"):
            pass
        names = [
            json.loads(line)["name"]
            for line in path.read_text().strip().splitlines()
        ]
        assert names == ["streamed", "inner"]


class TestRingOverflowAccounting:
    """Regression: silently evicting unread traces looked like a quiet
    system; overflow must land on ``obs_traces_dropped_total``."""

    def test_overflow_increments_drop_counter(self):
        from repro.obs import MetricsRegistry, get_registry, set_registry
        from repro.obs.tracing import TRACE_BUFFER_SIZE

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            set_trace_sampling(1)
            for _ in range(TRACE_BUFFER_SIZE):
                with trace_span("qa.ask"):
                    pass
            # Filling the ring exactly drops nothing…
            assert registry.value("obs_traces_dropped_total") is None
            for _ in range(3):
                with trace_span("qa.ask"):
                    pass
            # …and each span past capacity evicts exactly one trace.
            assert registry.value("obs_traces_dropped_total") == 3
            assert len(recent_traces()) == TRACE_BUFFER_SIZE
        finally:
            set_registry(previous)

    def test_no_drops_below_capacity(self):
        from repro.obs import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            set_trace_sampling(1)
            for _ in range(5):
                with trace_span("qa.ask"):
                    pass
            assert registry.value("obs_traces_dropped_total") is None
        finally:
            set_registry(previous)
