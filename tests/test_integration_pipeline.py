"""End-to-end integration tests across the whole library.

One scenario exercises the full production path: corpus → knowledge
graph → Q&A system → vote stream → optimization → persistence → audit →
evaluation → significance — with every hand-off between subsystems
checked.  A second scenario stress-compares the three optimization
strategies under a common corrupted-graph workload.
"""

import numpy as np
import pytest

from repro.eval.harness import evaluate_test_set, vote_omega_avg
from repro.eval.significance import paired_bootstrap
from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.graph.persistence import load_augmented_graph, save_augmented_graph
from repro.optimize import (
    OnlineOptimizer,
    solve_multi_vote,
    solve_single_votes,
    solve_split_merge,
)
from repro.optimize.audit import AuditLog
from repro.qa import QASystem, build_knowledge_graph, generate_helpdesk_corpus
from repro.serving import SimilarityParams
from repro.votes import CountPolicy, GroundTruthOracle, generate_votes_from_oracle


class TestFullQALifecycle:
    """Corpus to optimized, persisted, audited system — one flow."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_helpdesk_corpus(
            num_topics=5,
            entities_per_topic=7,
            docs_per_topic=3,
            num_train_questions=20,
            num_test_questions=15,
            seed=21,
        )

    def test_lifecycle(self, corpus, tmp_path):
        # Build and serve.
        kg = build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)
        system = QASystem(kg, corpus.vocabulary, params=SimilarityParams(k=6))
        attached = system.add_documents(corpus.document_texts())
        assert attached

        # Collect real votes through the public ask/vote API.
        votes_cast = 0
        for pair in corpus.train_pairs[:10]:
            try:
                answers = system.ask(pair.text, question_id=pair.question_id)
            except Exception:
                continue
            if pair.best_doc in [doc for doc, _ in answers]:
                system.vote(pair.question_id, pair.best_doc)
                votes_cast += 1
        if votes_cast < 2:
            pytest.skip("corpus seed produced too few linkable votes")

        # Baseline held-out quality.
        questions = {p.question_id: p.text for p in corpus.test_pairs}
        pairs = {p.question_id: p.best_doc for p in corpus.test_pairs}
        before = system.evaluate(questions, pairs)

        # Optimize, audit, persist.
        audit = AuditLog()
        weights_before = {
            e.key: e.weight for e in system.augmented_graph.kg_edges()
        }
        report = system.optimize(strategy="multi", feasibility_filter=False)
        changed = {
            edge: (weights_before[edge], system.augmented_graph.kg_weight(*edge))
            for edge in weights_before
            if abs(
                system.augmented_graph.kg_weight(*edge) - weights_before[edge]
            ) > 1e-9
        }
        audit.record(changed, strategy="multi", num_votes=votes_cast)
        assert len(audit) == 1
        assert audit.entries[0].num_edges == len(changed) >= 0

        path = tmp_path / "system.json"
        save_augmented_graph(system.augmented_graph, path)
        restored = load_augmented_graph(path)
        for edge in system.augmented_graph.kg_edges():
            assert restored.kg_weight(edge.head, edge.tail) == edge.weight

        # Held-out quality after optimization: never catastrophically
        # worse, and the whole pipeline stayed consistent.
        after = system.evaluate(questions, pairs)
        assert after.mrr >= before.mrr - 0.15
        assert report is not None


class TestStrategyComparison:
    """All three strategies on one corrupted-graph workload."""

    @pytest.fixture(scope="class")
    def workload(self):
        kg, _ = helpdesk_graph(num_topics=5, entities_per_topic=9, seed=33)
        corrupted = perturb_weights(kg, noise=1.5, seed=34)

        def attach(base):
            aug = AugmentedGraph(base)
            entities = sorted(base.nodes())
            rng = np.random.default_rng(35)
            for i in range(12):
                picks = rng.choice(len(entities), size=3, replace=False)
                aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
            for i in range(16):
                picks = rng.choice(len(entities), size=2, replace=False)
                aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
            return aug

        truth = attach(kg)
        deployed = attach(corrupted)
        votes = generate_votes_from_oracle(
            deployed, GroundTruthOracle(truth), k=6, seed=36
        )
        return deployed, votes

    def test_all_strategies_nonnegative_omega(self, workload):
        deployed, votes = workload
        for solver in (solve_single_votes, solve_multi_vote, solve_split_merge):
            optimized, _ = solver(deployed, votes)
            assert vote_omega_avg(optimized, votes) >= -0.25, solver.__name__

    def test_multi_vote_at_least_matches_single(self, workload):
        deployed, votes = workload
        single, _ = solve_single_votes(deployed, votes)
        multi, _ = solve_multi_vote(deployed, votes)
        assert vote_omega_avg(multi, votes) >= vote_omega_avg(single, votes) - 1e-9

    def test_split_merge_tracks_multi_vote(self, workload):
        deployed, votes = workload
        multi, _ = solve_multi_vote(deployed, votes)
        merged, _ = solve_split_merge(deployed, votes)
        assert vote_omega_avg(merged, votes) >= vote_omega_avg(multi, votes) - 0.5

    def test_online_stream_matches_batch_direction(self, workload):
        deployed, votes = workload
        online_graph = deployed.copy()
        online = OnlineOptimizer(
            online_graph, policy=CountPolicy(batch_size=5)
        )
        for vote in votes:
            online.submit(vote)
        online.flush()
        assert vote_omega_avg(online_graph, votes) >= -0.25

    def test_improvement_with_significance(self, workload):
        """Bootstrap over the vote set's reciprocal re-ranks."""
        from repro.eval.harness import rerank_vote

        deployed, votes = workload
        multi, _ = solve_multi_vote(deployed, votes)
        rr_before = [1.0 / v.best_rank for v in votes]
        rr_after = [1.0 / rerank_vote(multi, v) for v in votes]
        result = paired_bootstrap(rr_before, rr_after, seed=37)
        assert result.mean_difference >= 0
        assert result.losses <= result.wins
