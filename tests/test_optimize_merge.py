"""Unit tests for the split-and-merge merge rule and parallel scheduling."""

import pytest

from repro.errors import ReproError
from repro.optimize.merge import merge_changes, merged_weights
from repro.optimize.parallel import simulated_makespan


class TestMergeChanges:
    def test_single_cluster_change_passes_through(self):
        merged = merge_changes([({"e1": 0.04}, 5)])
        assert merged == pytest.approx({"e1": 0.04})

    def test_paper_fig4_example(self):
        """Changes ⟨−0.01, +0.03, +0.07⟩ with counts ⟨10, 8, 9⟩ → +0.07."""
        merged = merge_changes(
            [
                ({"xe": -0.01}, 10),
                ({"xe": 0.03}, 8),
                ({"xe": 0.07}, 9),
            ]
        )
        assert merged["xe"] == pytest.approx(0.07)

    def test_negative_weighted_sum_takes_minimum(self):
        merged = merge_changes(
            [
                ({"xe": -0.05}, 20),
                ({"xe": 0.01}, 2),
            ]
        )
        assert merged["xe"] == pytest.approx(-0.05)

    def test_disjoint_edges_union(self):
        merged = merge_changes(
            [
                ({"e1": 0.02}, 3),
                ({"e2": -0.03}, 4),
            ]
        )
        assert merged == pytest.approx({"e1": 0.02, "e2": -0.03})

    def test_tiny_changes_ignored(self):
        merged = merge_changes([({"e1": 1e-12}, 3)])
        assert merged == {}

    def test_empty_clusters_rejected(self):
        with pytest.raises(ReproError):
            merge_changes([])

    def test_negative_vote_count_rejected(self):
        with pytest.raises(ReproError):
            merge_changes([({"e1": 0.1}, -1)])

    def test_tie_in_weighted_sum_goes_positive(self):
        """Zero weighted sum counts as non-negative → maximum is chosen."""
        merged = merge_changes(
            [
                ({"xe": -0.02}, 5),
                ({"xe": 0.02}, 5),
            ]
        )
        assert merged["xe"] == pytest.approx(0.02)


class TestMergedWeights:
    def test_applies_deltas(self):
        weights = merged_weights({"e1": 0.5}, {"e1": 0.1})
        assert weights["e1"] == pytest.approx(0.6)

    def test_clips_to_bounds(self):
        weights = merged_weights(
            {"e1": 0.95, "e2": 0.01},
            {"e1": 0.2, "e2": -0.2},
            lower=1e-3,
            upper=1.0,
        )
        assert weights["e1"] == 1.0
        assert weights["e2"] == pytest.approx(1e-3)

    def test_missing_base_rejected(self):
        with pytest.raises(ReproError):
            merged_weights({}, {"e1": 0.1})


class TestSimulatedMakespan:
    def test_single_worker_is_total(self):
        assert simulated_makespan([3, 1, 2], 1) == pytest.approx(6.0)

    def test_perfect_split(self):
        assert simulated_makespan([2, 2, 2, 2], 2) == pytest.approx(4.0)

    def test_bounded_by_longest_job(self):
        assert simulated_makespan([10, 1, 1], 4) == pytest.approx(10.0)

    def test_lpt_balances(self):
        # Jobs 5,4,3,3,3 on 2 workers: LPT gives {5,3,3}=11? no: 5→w1,
        # 4→w2, 3→w2(7), 3→w1(8), 3→w2(10) → makespan 10.
        assert simulated_makespan([5, 4, 3, 3, 3], 2) == pytest.approx(10.0)

    def test_dispatch_overhead(self):
        base = simulated_makespan([1, 1], 2)
        inflated = simulated_makespan([1, 1], 2, dispatch_overhead=0.5)
        assert inflated == pytest.approx(base + 0.5)

    def test_empty(self):
        assert simulated_makespan([], 3) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            simulated_makespan([1.0], 0)
        with pytest.raises(ReproError):
            simulated_makespan([1.0], 2, dispatch_overhead=-1)

    def test_more_workers_never_slower(self):
        times = [4, 3, 3, 2, 2, 1]
        spans = [simulated_makespan(times, n) for n in (1, 2, 3, 4, 8)]
        assert all(a >= b - 1e-12 for a, b in zip(spans, spans[1:]))
