"""Tests for post-mortem rendering (repro/obs/diag.py) and ``repro-kg diag``.

The acceptance scenario at the bottom is the one the flight recorder
exists for: an armed run that hits a dense-delta fallback *and* a
contract violation must leave behind a complete bundle that renders a
full health report with no live process — via the library and via the
CLI.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.devtools.contracts import ContractViolation, check_weight_bounds
from repro.graph.augmented import AugmentedGraph
from repro.graph.generators import random_digraph
from repro.obs import MetricsRegistry
from repro.obs.diag import (
    DiagBundle,
    _merged_histogram,
    _parse_series_key,
    load_bundle,
    render_bundle_report,
    render_health_report,
)
from repro.obs.recorder import arm_recorder, disarm_recorder
from repro.serving import SimilarityEngine, SimilarityParams

PARAMS = SimilarityParams(k=5, max_length=6, restart_prob=0.2)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def disarmed():
    from repro.obs import recorder as mod

    previous = disarm_recorder()
    yield
    mod._active = previous


class TestSeriesKeyParsing:
    def test_bare_name(self):
        assert _parse_series_key("qa_asks_total") == ("qa_asks_total", {})

    def test_labeled_name(self):
        name, labels = _parse_series_key(
            'engine_serves_total{backend="push",engine="0"}'
        )
        assert name == "engine_serves_total"
        assert labels == {"backend": "push", "engine": "0"}


class TestMergedHistogram:
    def test_snapshot_buckets_become_cumulative(self, registry):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        merged = _merged_histogram(registry.snapshot(), "qa_ask_seconds")
        assert merged is not None
        bounds, cumulative = merged
        assert bounds == (0.1, 1.0)
        # Must match the live histogram's own cumulative view, not the
        # snapshot's raw per-bucket counts.
        assert cumulative == h.cumulative_counts() == [1, 3, 4]

    def test_label_series_merge(self, registry):
        a = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0), op="a")
        b = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0), op="b")
        a.observe(0.05)
        b.observe(0.5)
        merged = _merged_histogram(registry.snapshot(), "qa_ask_seconds")
        assert merged == ((0.1, 1.0), [1, 2, 2])

    def test_absent_metric_is_none(self, registry):
        assert _merged_histogram(registry.snapshot(), "qa_ask_seconds") is None


class TestLoadBundle:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "nope")

    def test_directory_without_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path)

    def test_partial_bundle_loads(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text('{"reason": "manual"}\n')
        bundle = load_bundle(tmp_path)
        assert isinstance(bundle, DiagBundle)
        assert bundle.manifest["reason"] == "manual"
        assert bundle.metrics == {}
        assert bundle.events == []


class TestHealthReport:
    def test_minimal_snapshot_still_renders(self):
        report = render_health_report({})
        assert "SLO attainment" in report
        assert "no data" in report
        assert "Serving cache" in report

    def test_live_snapshot_sections(self, registry):
        registry.counter("qa_asks_total").inc(7)
        registry.counter("engine_cache_hits_total", engine="0").inc(6)
        registry.counter("engine_cache_misses_total", engine="0").inc(2)
        registry.counter("engine_serves_total", engine="0").inc(8)
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(20):
            h.observe(0.01)
        report = render_health_report(registry.snapshot())
        assert "Workload: 7 asks" in report
        assert "75.00%" in report  # 6 hits / 8 lookups
        assert "ok" in report  # fast asks attain the SLO
        assert "ask latency" in report  # the distribution section

    def test_breach_is_visible(self, registry):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(50):
            h.observe(5.0)
        report = render_health_report(registry.snapshot())
        assert "BREACH" in report

    def test_durability_section_sums_series(self, registry):
        registry.gauge("wal_last_seq").set(40)
        registry.gauge("wal_lag_records").set(3)
        registry.gauge("snapshot_age_seconds").set(12.5)
        report = render_health_report(registry.snapshot())
        assert "Durability" in report
        assert "12.5s" in report


def build_aug(seed=3, num_entities=14, num_answers=4, num_queries=3):
    kg = random_digraph(num_entities, avg_degree=3.0, seed=seed, out_mass=0.9)
    aug = AugmentedGraph(kg)
    entities = sorted(kg.nodes())
    for i in range(num_answers):
        aug.add_answer(
            f"a{i}",
            {entities[(i + j) % len(entities)]: 1.0 + j for j in range(3)},
        )
    for i in range(num_queries):
        aug.add_query(
            f"q{i}",
            {entities[i]: 1.0, entities[(i + 5) % len(entities)]: 2.0},
        )
    return aug


class TestEndToEndAcceptance:
    def test_armed_failure_run_yields_diagnosable_bundle(
        self, tmp_path, registry, disarmed, capsys
    ):
        """Contract violation + dense-delta fallback → complete bundle →
        ``repro-kg diag`` renders it with no live process."""
        flight_dir = tmp_path / "flight"
        arm_recorder(flight_dir, registry=registry, min_dump_interval=0.0)

        aug = build_aug()
        engine = SimilarityEngine(
            aug, params=PARAMS, registry=registry, delta_density_threshold=0.0
        )
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)  # miss → push/propagate
        engine.scores_for_query("q0", targets)  # hit
        # A weight patch too dense for localization: fallback seam fires.
        for edge in sorted(
            ((e.head, e.tail) for e in aug.kg_edges()), key=repr
        )[:2]:
            aug.set_kg_weight(*edge, aug.kg_weight(*edge) * 0.7)
        engine.scores_for_query("q0", targets)
        assert engine.stats().delta_fallbacks == 1

        with pytest.raises(ContractViolation):
            check_weight_bounds(np.array([9.0]), 0.1, 1.0, seam="e2e-test")

        disarm_recorder()
        fallback_bundles = list(flight_dir.glob("flight-*-delta_fallback"))
        violation_bundles = list(flight_dir.glob("flight-*-contract_violation"))
        assert len(fallback_bundles) == 1
        assert len(violation_bundles) == 1

        # Library rendering, straight from the files.
        bundle = load_bundle(violation_bundles[0])
        kinds = {e["kind"] for e in bundle.events}
        assert "engine.serve" in kinds
        assert "engine.delta_fallback" in kinds
        assert "contract.violation" in kinds
        report = render_bundle_report(bundle)
        assert "Flight bundle: reason='contract_violation'" in report
        assert "e2e-test" in report
        assert "Serving cache" in report
        assert "recorder events" in report

        # CLI rendering — the dead-process path operators actually use.
        assert main(["diag", str(violation_bundles[0])]) == 0
        out = capsys.readouterr().out
        assert "Flight bundle" in out
        assert "SLO attainment" in out

    def test_fallback_bundle_carries_cost_attribution(
        self, tmp_path, registry, disarmed
    ):
        flight_dir = tmp_path / "flight"
        arm_recorder(flight_dir, registry=registry, min_dump_interval=0.0)
        aug = build_aug()
        engine = SimilarityEngine(aug, params=PARAMS, registry=registry)
        targets = sorted(aug.answer_nodes, key=repr)
        engine.scores_for_query("q0", targets)
        rec = disarm_recorder()
        serves = [e for e in rec.events() if e.kind == "engine.serve"]
        assert serves, "serve seam must record when armed"
        (serve,) = serves
        assert serve.attrs["cache"] == "miss"
        assert "latency" in serve.attrs
        assert serve.attrs["backend"] == str(engine.params.backend)


class TestDiagCli:
    def test_requires_an_input(self, capsys):
        assert main(["diag"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_metrics_json_input(self, tmp_path, registry, capsys):
        h = registry.histogram("qa_ask_seconds", buckets=(0.1, 1.0))
        for _ in range(10):
            h.observe(0.02)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(registry.snapshot()))
        assert main(["diag", "--metrics-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SLO attainment" in out
        assert "ok" in out

    def test_missing_bundle_is_an_error(self, tmp_path, capsys):
        assert main(["diag", str(tmp_path / "nope")]) == 1
        assert "MANIFEST.json" in capsys.readouterr().err
