"""Shared workload builders for the table/figure benchmarks.

Every benchmark regenerates one table or figure of the paper on a
scaled-down workload (the paper's runs take minutes to hours on a 2015
laptop with MATLAB; these finish in seconds) and prints the reproduced
rows with ``report()`` so they survive pytest's capture settings.
Absolute numbers differ from the paper — synthetic data, scipy instead
of ``fmincon``, smaller graphs — but each bench prints the *shape* the
paper claims next to the measurement so the comparison is one glance.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.votes import GroundTruthOracle, generate_votes_from_oracle


#: Reproduced tables accumulated during the run; flushed to the real
#: terminal by :func:`pytest_terminal_summary` (pytest captures stdout at
#: the file-descriptor level, so printing directly would be swallowed).
_REPORTS: list[str] = []


def report(text: str) -> None:
    """Queue a reproduced table for the end-of-run summary."""
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced tables & figures")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def attach_queries_answers(kg, *, num_queries, num_answers, seed):
    """Attach random queries/answers (identical layout across variants)."""
    aug = AugmentedGraph(kg)
    entities = sorted(kg.nodes())
    rng = np.random.default_rng(seed)
    for i in range(num_answers):
        picks = rng.choice(len(entities), size=3, replace=False)
        aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
    for i in range(num_queries):
        picks = rng.choice(len(entities), size=2, replace=False)
        aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
    return aug


class EffectivenessWorkload:
    """The Taobao-style effectiveness scenario shared by Tables III-V / Fig. 5.

    A ground-truth helpdesk KG generates user judgments; the deployed
    graph is a noise-corrupted copy; votes come from an oracle over the
    truth; a held-out split provides expert test pairs.
    """

    def __init__(self, *, seed=11, noise=1.5, num_vote_queries=24,
                 num_test_queries=30, num_answers=16, k=8):
        truth_kg, _ = helpdesk_graph(
            num_topics=6, entities_per_topic=10, seed=seed
        )
        corrupted = perturb_weights(truth_kg, noise=noise, seed=seed + 1)
        total = num_vote_queries + num_test_queries
        self.truth = attach_queries_answers(
            truth_kg, num_queries=total, num_answers=num_answers, seed=seed + 2
        )
        self.deployed = attach_queries_answers(
            corrupted, num_queries=total, num_answers=num_answers, seed=seed + 2
        )
        self.k = k
        vote_queries = [f"q{i}" for i in range(num_vote_queries)]
        self.test_queries = [f"q{i}" for i in range(num_vote_queries, total)]
        self.oracle = GroundTruthOracle(self.truth)
        self.votes = generate_votes_from_oracle(
            self.deployed, self.oracle, queries=vote_queries, k=k, seed=seed + 3
        )
        candidates = sorted(self.truth.answer_nodes, key=repr)
        self.test_pairs = {
            q: self.oracle.best_answer(q, candidates) for q in self.test_queries
        }


@pytest.fixture(scope="session")
def effectiveness_workload():
    """One shared effectiveness scenario for the quality benchmarks."""
    return EffectivenessWorkload()
