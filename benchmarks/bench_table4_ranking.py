"""Table IV — ranking of best answers in the test dataset.

Reproduces the R_avg / Ω_avg / P_avg comparison between the original
graph, the single-vote solution, and the multi-vote solution, on the
synthetic effectiveness workload.  The paper's shape: the single-vote
solution barely helps (it can even hurt — it ignores positive votes and
conflicts), while the multi-vote solution clearly improves both the
vote objective Ω_avg and the held-out ranking.
"""

from conftest import report

from repro.eval.harness import evaluate_test_set, rerank_vote, vote_omega_avg
from repro.eval.metrics import ranking_improvement
from repro.optimize import solve_multi_vote, solve_single_votes
from repro.utils.tables import format_table


def bench_table4(benchmark, effectiveness_workload):
    workload = effectiveness_workload

    def optimize_both():
        single, _ = solve_single_votes(workload.deployed, workload.votes)
        multi, _ = solve_multi_vote(workload.deployed, workload.votes)
        return single, multi

    single, multi = benchmark.pedantic(optimize_both, rounds=1, iterations=1)

    baseline = evaluate_test_set(workload.deployed, workload.test_pairs)
    rows = [["Original Graph", f"{baseline.r_avg:.2f}", "-", "-"]]
    results = {}
    for label, graph in (
        ("Optimized by single-vote solution", single),
        ("Optimized by multi-vote solution", multi),
    ):
        result = evaluate_test_set(graph, workload.test_pairs)
        omega = vote_omega_avg(graph, workload.votes)
        before = [v.best_rank for v in workload.votes]
        after = [rerank_vote(graph, v) for v in workload.votes]
        p_avg = ranking_improvement(before, after)
        rows.append(
            [label, f"{result.r_avg:.2f}", f"{omega:+.2f}", f"{p_avg:+.2%}"]
        )
        results[label] = (result, omega)

    report(
        format_table(
            ["Graph", "R_avg", "Omega_avg", "P_avg"],
            rows,
            title=(
                "Table IV: ranking of best answers (paper: original 3.56, "
                "single-vote 3.59 / −0.84%, multi-vote 2.86 / +18.82%)"
            ),
        )
    )

    multi_result, multi_omega = results["Optimized by multi-vote solution"]
    _, single_omega = results["Optimized by single-vote solution"]
    # The paper's ordering: multi-vote improves over the original and
    # over single-vote on the vote objective.
    assert multi_omega > 0
    assert multi_omega >= single_omega
    assert multi_result.r_avg <= baseline.r_avg
