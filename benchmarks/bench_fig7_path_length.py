"""Fig. 7 — impact of the path-pruning threshold L.

(a) ``PD(L_i, L_{i+1})`` — the relative gain in summed top-k similarity
    when the pruning threshold grows — for (2,3), (3,4), (4,5), (5,6);
    the paper observes it "becomes slim when L_i is 5", justifying
    L = 5.
(b) elapsed optimization time vs L ∈ {2..6}: the walk enumeration (and
    hence the SGP constraint size) grows as ``O(d^L)``, so the cost
    accelerates with L.

The workload follows the paper's setting (one query, top-20 answers,
Section VII-E) on a denser graph whose per-step mass decay makes the
tail behaviour visible at laptop scale: long walks carry vanishing
probability because every step multiplies by ``(1 − c) · out_mass``.
"""

import time

from conftest import report

import numpy as np

from repro.eval.metrics import percentage_difference
from repro.graph import AugmentedGraph, random_digraph
from repro.optimize import solve_multi_vote
from repro.similarity import similarity_profile
from repro.utils.tables import format_table
from repro.votes import generate_synthetic_votes

L_PAIRS = ((2, 3), (3, 4), (4, 5), (5, 6))
L_SWEEP = (2, 3, 4, 5, 6)
TOP_K = 20
NUM_QUERIES = 8
SEED = 29

#: (graph label, node count, avg degree, out_mass) — three profiles in
#: the spirit of the paper's three datasets, differing in density.
PROFILES = (
    ("dense", 400, 6.0, 0.7),
    ("medium", 700, 4.0, 0.7),
    ("sparse", 1000, 3.0, 0.7),
)


def _build(nodes, degree, out_mass, *, num_answers=60, num_queries=NUM_QUERIES,
           seed=SEED):
    kg = random_digraph(nodes, degree, seed=seed, out_mass=out_mass)
    aug = AugmentedGraph(kg)
    labels = sorted(kg.nodes())
    rng = np.random.default_rng(seed + 1)
    for a in range(num_answers):
        picks = rng.choice(len(labels), size=3, replace=False)
        aug.add_answer(f"ans{a}", {labels[int(i)]: 1 for i in picks})
    for q in range(num_queries):
        picks = rng.choice(len(labels), size=2, replace=False)
        aug.add_query(f"qry{q}", {labels[int(i)]: 1 for i in picks})
    return aug


def bench_fig7a_percentage_difference(benchmark):
    """Average PD(L_i, L_{i+1}) over several queries per graph profile."""
    results = {}

    def run_all():
        lengths = sorted({l for pair in L_PAIRS for l in pair})
        for label, nodes, degree, out_mass in PROFILES:
            aug = _build(nodes, degree, out_mass)
            answers = sorted(aug.answer_nodes, key=repr)
            pd_sums = {pair: [] for pair in L_PAIRS}
            for q in range(NUM_QUERIES):
                profile = similarity_profile(
                    aug.graph, f"qry{q}", answers, lengths=lengths
                )
                sums = {
                    length: sum(sorted(s.values(), reverse=True)[:TOP_K])
                    for length, s in profile.items()
                }
                for li, lj in L_PAIRS:
                    if sums[li] > 0:
                        pd_sums[(li, lj)].append(
                            percentage_difference(sums[li], sums[lj])
                        )
            results[label] = {
                pair: float(np.mean(values)) if values else float("nan")
                for pair, values in pd_sums.items()
            }
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [label] + [f"{pd[pair]:.2%}" for pair in L_PAIRS]
        for label, pd in results.items()
    ]
    report(
        format_table(
            ["Graph"] + [f"PD{pair}" for pair in L_PAIRS],
            rows,
            title=(
                "Fig. 7(a): mean percentage difference of summed top-20 "
                "similarity between pruning thresholds (paper: shrinking, "
                "slim by (5,6))"
            ),
        )
    )
    for label, pd in results.items():
        # The marginal gain shrinks with L and is small by (5, 6).
        assert pd[(5, 6)] <= pd[(2, 3)] + 1e-9, label
        assert pd[(5, 6)] < 0.10, label


def bench_fig7b_elapsed_vs_length(benchmark):
    """Optimization time vs L: encoding is O(d^L), so cost accelerates."""
    timings = {}

    def run_all():
        aug = _build(400, 6.0, 0.7, num_answers=40, num_queries=3)
        votes = generate_synthetic_votes(
            aug, k=6, negative_fraction=1.0, avg_negative_position=3,
            seed=SEED + 2,
        )
        for length in L_SWEEP:
            start = time.perf_counter()
            solve_multi_vote(
                aug, votes, max_length=length, feasibility_filter=False
            )
            timings[length] = time.perf_counter() - start
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[f"L = {length}", f"{elapsed:.2f}s"] for length, elapsed in timings.items()]
    report(
        format_table(
            ["Pruning threshold", "Elapsed"],
            rows,
            title=(
                "Fig. 7(b): graph-optimization time vs L (paper: accelerated "
                "growth, impractical beyond L = 5)"
            ),
        )
    )
    # Accelerated growth: each step up in L costs at least as much, and
    # the largest L is decisively the most expensive.
    assert timings[6] > timings[2] * 3
    assert timings[6] >= timings[5] >= timings[4] * 0.8
