"""Table V — promotion of best answers in the top-k list (H@k).

Compares five rankers on the held-out test pairs:

- IR: the entity-coincidence (Jaccard) baseline;
- Q&A of [5]: exact-PPR ranking (random walk and PPR are equivalent in
  similarity evaluation, as the paper notes when comparing against [5]);
- KG without optimization: truncated extended inverse P-distance on the
  deployed graph;
- KG + single-vote / KG + multi-vote: the optimized graphs.

Paper shape: every KG approach crushes IR; single-vote helps only at
larger k (and can hurt H@1/H@3); multi-vote is best everywhere.
"""

from conftest import report

from repro.eval.harness import evaluate_test_set
from repro.eval.metrics import hits_at_k
from repro.optimize import solve_multi_vote, solve_single_votes
from repro.similarity import ppr_scores
from repro.similarity.top_k import rank_position, scores_to_ranked_list
from repro.utils.tables import format_table

K_VALUES = (1, 3, 5, 10)


def _ranks_ir(workload):
    """Entity-set Jaccard ranking (the IR coincidence-rate baseline)."""
    aug = workload.deployed
    answers = sorted(aug.answer_nodes, key=repr)
    answer_entities = {a: set(aug.answer_links(a)) for a in answers}
    ranks = []
    for query, best in workload.test_pairs.items():
        query_entities = set(aug.query_links(query))
        scores = {}
        for answer, entities in answer_entities.items():
            union = query_entities | entities
            scores[answer] = (
                len(query_entities & entities) / len(union) if union else 0.0
            )
        ranked = scores_to_ranked_list(scores)
        ranks.append(rank_position(ranked, best))
    return ranks


def _ranks_exact_ppr(workload):
    """Exact-PPR ranking — the random-walk Q&A algorithm of [5]."""
    aug = workload.deployed
    answers = sorted(aug.answer_nodes, key=repr)
    ranks = []
    for query, best in workload.test_pairs.items():
        scores = ppr_scores(aug.graph, query, answers, method="solve")
        ranked = scores_to_ranked_list(scores)
        ranks.append(rank_position(ranked, best))
    return ranks


def bench_table5(benchmark, effectiveness_workload):
    workload = effectiveness_workload

    def optimize_and_rank():
        single, _ = solve_single_votes(workload.deployed, workload.votes)
        multi, _ = solve_multi_vote(workload.deployed, workload.votes)
        return {
            "IR": _ranks_ir(workload),
            "Q&A proposed in [5]": _ranks_exact_ppr(workload),
            "KG without optimization": evaluate_test_set(
                workload.deployed, workload.test_pairs, k_values=K_VALUES
            ).ranks,
            "KG optimized by single-vote solution": evaluate_test_set(
                single, workload.test_pairs, k_values=K_VALUES
            ).ranks,
            "KG optimized by multi-vote solution": evaluate_test_set(
                multi, workload.test_pairs, k_values=K_VALUES
            ).ranks,
        }

    all_ranks = benchmark.pedantic(optimize_and_rank, rounds=1, iterations=1)

    hits = {
        method: [hits_at_k(ranks, k) for k in K_VALUES]
        for method, ranks in all_ranks.items()
    }
    rows = [
        [method] + [f"{value:.2f}" for value in values]
        for method, values in hits.items()
    ]
    report(
        format_table(
            ["Method"] + [f"H@{k}" for k in K_VALUES],
            rows,
            title=(
                "Table V: promotion of best answers in top-k (paper: IR far "
                "below all KG rows; multi-vote best at every k)"
            ),
        )
    )

    # Shape assertions from the paper.
    for k_idx in range(len(K_VALUES)):
        assert hits["IR"][k_idx] <= hits["KG without optimization"][k_idx]
    # Multi-vote is at least as good as the unoptimized graph everywhere,
    # and strictly better somewhere.
    multi = hits["KG optimized by multi-vote solution"]
    base = hits["KG without optimization"]
    assert all(m >= b - 1e-12 for m, b in zip(multi, base))
    assert any(m > b for m, b in zip(multi, base))
