"""Fig. 2 — the sigmoid approximation of the step function.

The multi-vote objective replaces the discontinuous violation count
(Eq. 16) with a sigmoid (Eq. 17, w = 300).  This bench quantifies the
approximation the paper's Fig. 2 shows pictorially: the mean absolute
gap between step and sigmoid over [−1, 1] for several steepness values,
and benchmarks the vectorized sigmoid evaluation the solver performs in
its inner loop.
"""

from conftest import report

import numpy as np

from repro.optimize.objectives import sigmoid, step_count
from repro.utils.tables import format_table

W_VALUES = (10, 50, 300, 1000)
GRID = np.linspace(-1.0, 1.0, 20_001)


def bench_fig2(benchmark):
    grid = GRID

    def evaluate():
        return {w: sigmoid(grid, w=w) for w in W_VALUES}

    values = benchmark(evaluate)

    step = (grid > 0).astype(float)
    rows = []
    gaps = {}
    for w in W_VALUES:
        gap = np.abs(values[w] - step)
        gaps[w] = float(gap.mean())
        rows.append(
            [
                f"w = {w}",
                f"{gap.mean():.5f}",
                f"{gap.max():.3f}",
                f"{float(np.mean(gap < 0.01)):.1%}",
            ]
        )
    report(
        format_table(
            ["Steepness", "mean |sigmoid-step|", "max gap", "within 0.01"],
            rows,
            title=(
                "Fig. 2: sigmoid vs step on [-1, 1] (paper: w = 300 is a "
                "close approximation; the max gap of 0.5 is pinned at d = 0 "
                "where the step itself is discontinuous)"
            ),
        )
    )

    # Larger w approximates the step strictly better on average.
    ordered = [gaps[w] for w in W_VALUES]
    assert ordered == sorted(ordered, reverse=True)
    # And the smooth count agrees with the exact count away from 0.
    sample = np.array([-0.5, -0.1, 0.1, 0.4])
    smooth = float(sigmoid(sample, w=300).sum())
    assert abs(smooth - step_count(sample)) < 1e-9
