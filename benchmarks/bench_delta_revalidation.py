"""Serve-after-patch latency — delta revalidation vs cold invalidation.

The interactive loop the paper describes (serve, vote, optimize, serve
again) patches a sparse set of edge weights on every optimizer pass.
Before delta revalidation, every patch cold-invalidated the engine's
score LRU, so the serve *right after* a patch — exactly when traffic is
hottest — paid a full ``O(L·|E|)`` truncated inverse-P-distance per
cached query.  The delta path (:mod:`repro.serving.delta`) corrects the
cached vectors in place with work proportional to the changed edges'
L-hop neighborhood, so the first post-patch serve is a warm cache hit.

This bench replays rounds of [patch ≤1% of edges → serve the whole
query pool] on a ~5k-edge graph under both engine configurations and
compares per-serve latency distributions (p50/p95).  Correctness is
asserted alongside: every delta-served score must match a cold
:func:`inverse_pdistance` recompute within the contract tolerance.

Environment knobs (used by the CI smoke job):

- ``BENCH_SMOKE=1`` — shrink the workload so the bench finishes in a
  few seconds and relax the speedup floor accordingly;
- ``BENCH_OUTPUT_DIR=DIR`` — write ``BENCH_delta_revalidation.json``
  (latency percentiles + warm-cache stats) into ``DIR``.
"""

import json
import os
import time

from conftest import report

import numpy as np

from repro.devtools.contracts import DELTA_SCORE_TOL
from repro.graph.augmented import AugmentedGraph
from repro.graph.generators import random_digraph
from repro.obs import set_trace_sampling
from repro.serving import SimilarityEngine, SimilarityParams
from repro.similarity.inverse_pdistance import inverse_pdistance
from repro.utils.tables import format_table

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
OUTPUT_DIR = os.environ.get("BENCH_OUTPUT_DIR")

NUM_NODES = 400 if SMOKE else 1_250
AVG_DEGREE = 4.0
NUM_ANSWERS = 25 if SMOKE else 50
NUM_QUERIES = 12 if SMOKE else 24
NUM_ROUNDS = 6 if SMOKE else 12
#: Acceptance floor: p50 serve latency right after a ≤1%-of-edges patch
#: must be at least this much lower on the delta path than on the
#: cold-invalidation path.  Small smoke graphs leave less propagation
#: work to skip, so the floor relaxes with the workload.
MIN_SPEEDUP = 2.0 if SMOKE else 3.0
PARAMS = SimilarityParams(k=8, max_length=5)

set_trace_sampling(100)


def _build_workload(*, delta_revalidation):
    kg = random_digraph(NUM_NODES, AVG_DEGREE, seed=17, out_mass=0.9)
    aug = AugmentedGraph(kg)
    entities = sorted(kg.nodes())
    rng = np.random.default_rng(23)
    for a in range(NUM_ANSWERS):
        picks = rng.choice(len(entities), size=3, replace=False)
        aug.add_answer(f"doc{a}", {entities[int(p)]: 1 for p in picks})
    for q in range(NUM_QUERIES):
        picks = rng.choice(len(entities), size=2, replace=False)
        aug.add_query(f"q{q}", {entities[int(p)]: 1 for p in picks})
    engine = SimilarityEngine(
        aug, params=PARAMS, delta_revalidation=delta_revalidation
    )
    return kg, aug, engine


def _patch_rounds(kg, seed=41):
    """Per-round ≤1%-of-edges patches, identical across configurations.

    Weights are scaled multiplicatively into (0.8, 1.0), which keeps
    every node's out-mass sub-stochastic no matter how rounds stack.
    """
    edges = sorted(((e.head, e.tail) for e in kg.edges()), key=repr)
    rng = np.random.default_rng(seed)
    per_round = max(1, int(0.01 * len(edges)))
    rounds = []
    for _ in range(NUM_ROUNDS):
        picks = rng.choice(len(edges), size=per_round, replace=False)
        scales = 0.8 + 0.2 * rng.random(per_round)
        rounds.append(
            [(edges[int(p)], float(s)) for p, s in zip(picks, scales)]
        )
    return rounds, per_round, len(edges)


def _serve_rounds(aug, engine, rounds):
    """Apply each patch round, then serve every query; returns latencies."""
    queries = sorted(aug.query_nodes, key=repr)
    targets = sorted(aug.answer_nodes, key=repr)
    for query in queries:  # warm the LRU before the first patch
        engine.scores_for_query(query, targets)
    latencies = []
    served_last = {}
    for round_patches in rounds:
        for (head, tail), scale in round_patches:
            aug.set_kg_weight(head, tail, aug.kg_weight(head, tail) * scale)
        engine.revalidate()  # what the optimizer flush paths call
        for query in queries:
            start = time.perf_counter()
            served = engine.scores_for_query(query, targets)
            latencies.append(time.perf_counter() - start)
            served_last[query] = served
    return np.asarray(latencies), served_last, queries, targets


def bench_delta_revalidation(benchmark):
    results = {}

    def run_all():
        kg, cold_aug, cold_engine = _build_workload(delta_revalidation=False)
        rounds, per_round, num_edges = _patch_rounds(kg)
        cold_lat, cold_served, _, _ = _serve_rounds(
            cold_aug, cold_engine, rounds
        )

        kg2, delta_aug, delta_engine = _build_workload(delta_revalidation=True)
        rounds2, _, _ = _patch_rounds(kg2)
        delta_lat, delta_served, queries, targets = _serve_rounds(
            delta_aug, delta_engine, rounds2
        )

        # Identical graphs + identical patch sequences: both paths must
        # serve the same scores (delta within the contract tolerance),
        # and the delta path must also match a from-scratch recompute.
        for query in queries:
            cold = inverse_pdistance(
                delta_aug.graph,
                query,
                targets,
                max_length=PARAMS.max_length,
                restart_prob=PARAMS.restart_prob,
            )
            for target in targets:
                reference = cold[target]
                budget = DELTA_SCORE_TOL * (1.0 + abs(reference))
                assert abs(delta_served[query][target] - reference) <= budget
                assert abs(cold_served[query][target] - reference) <= budget

        results.update(
            num_edges=num_edges,
            per_round=per_round,
            cold_lat=cold_lat,
            delta_lat=delta_lat,
            cold_stats=cold_engine.stats(),
            delta_stats=delta_engine.stats(),
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    cold_lat = results["cold_lat"]
    delta_lat = results["delta_lat"]
    delta_stats = results["delta_stats"]
    cold_stats = results["cold_stats"]
    cold_p50, cold_p95 = np.percentile(cold_lat, [50, 95])
    delta_p50, delta_p95 = np.percentile(delta_lat, [50, 95])
    speedup = cold_p50 / delta_p50
    num_serves = len(delta_lat)
    rows = [
        ["cold invalidation", f"{cold_p50 * 1e6:.0f}us",
         f"{cold_p95 * 1e6:.0f}us", f"{cold_stats.cache_hits}",
         f"{cold_stats.cache_misses}", "1.0x"],
        ["delta revalidation", f"{delta_p50 * 1e6:.0f}us",
         f"{delta_p95 * 1e6:.0f}us", f"{delta_stats.cache_hits}",
         f"{delta_stats.cache_misses}", f"{speedup:.1f}x"],
    ]
    report(
        format_table(
            ["post-patch serving", "p50", "p95", "hits", "misses", "p50 gain"],
            rows,
            title=(
                f"Serve-after-patch latency: {NUM_ROUNDS} rounds x "
                f"{results['per_round']} patched edges "
                f"(~{100 * results['per_round'] / results['num_edges']:.1f}% "
                f"of {results['num_edges']}) x {NUM_QUERIES} queries "
                f"({delta_stats.delta_revalidations} revalidations, "
                f"{delta_stats.delta_entries_patched} entries patched, "
                f"{delta_stats.delta_fallbacks} fallbacks, "
                f"delta time {delta_stats.delta_time * 1e3:.1f}ms)"
            ),
        )
    )

    if OUTPUT_DIR:
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        payload = {
            "benchmark": "delta_revalidation",
            "smoke": SMOKE,
            "num_edges": results["num_edges"],
            "patched_edges_per_round": results["per_round"],
            "num_rounds": NUM_ROUNDS,
            "num_serves": num_serves,
            "cold_p50_seconds": float(cold_p50),
            "cold_p95_seconds": float(cold_p95),
            "delta_p50_seconds": float(delta_p50),
            "delta_p95_seconds": float(delta_p95),
            "p50_speedup": float(speedup),
            "delta_revalidations": delta_stats.delta_revalidations,
            "delta_entries_patched": delta_stats.delta_entries_patched,
            "delta_fallbacks": delta_stats.delta_fallbacks,
            "delta_seconds": delta_stats.delta_time,
            "delta_cache_hits": delta_stats.cache_hits,
            "delta_cache_misses": delta_stats.cache_misses,
            "cold_cache_misses": cold_stats.cache_misses,
        }
        with open(
            os.path.join(OUTPUT_DIR, "BENCH_delta_revalidation.json"),
            "w", encoding="utf-8",
        ) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # The delta path never repropagated after the warmup misses, while
    # the cold path missed once per query per patch round.
    assert delta_stats.cache_misses == NUM_QUERIES
    assert delta_stats.delta_revalidations == NUM_ROUNDS
    assert delta_stats.delta_fallbacks == 0
    assert cold_stats.cache_misses == NUM_QUERIES * (NUM_ROUNDS + 1)
    assert speedup >= MIN_SPEEDUP, (
        f"delta revalidation should serve ≥{MIN_SPEEDUP:g}x faster than "
        f"cold invalidation right after a sparse patch, got {speedup:.1f}x "
        f"(p50 {delta_p50 * 1e6:.0f}us vs {cold_p50 * 1e6:.0f}us)"
    )
