"""Table II — statistics of the graph datasets.

Prints the registry's published statistics next to the generated
stand-in graphs' actual statistics, and benchmarks stand-in generation
(the substrate every efficiency experiment rests on).
"""

from conftest import report

from repro.eval.datasets import DATASETS
from repro.graph import konect_like
from repro.utils.tables import format_table

SCALE = 0.05


def bench_table2(benchmark):
    graphs = {}

    def generate_all():
        return {
            name: konect_like(name, scale=SCALE, seed=7) for name in DATASETS
        }

    graphs = benchmark(generate_all)

    rows = []
    for name, info in DATASETS.items():
        generated = graphs[name]
        rows.append(
            [
                name.capitalize(),
                info.nodes,
                info.edges,
                f"{info.average_degree:.2f}",
                generated.num_nodes,
                generated.num_edges,
                f"{generated.average_degree():.2f}",
            ]
        )
    report(
        format_table(
            [
                "DataSet",
                "|V| (paper)",
                "|E| (paper)",
                "deg (paper |E|/|V|)",
                f"|V| (x{SCALE})",
                f"|E| (x{SCALE})",
                "deg (generated)",
            ],
            rows,
            title=(
                "Table II: dataset statistics — paper values vs generated "
                "stand-ins (degree preserved under scaling).  Note: the "
                "paper's Average Degree column reports total (in+out) "
                "degree for the KONECT graphs, i.e. 2|E|/|V|."
            ),
        )
    )
    for name, info in DATASETS.items():
        generated = graphs[name]
        # Degree preserved within Poisson noise.
        assert abs(generated.average_degree() - info.average_degree) < max(
            1.0, 0.4 * info.average_degree
        )
