"""Fig. 6 — vote count vs. elapsed time and Ω_avg on the KONECT graphs.

For each of Twitter/Digg/Gnutella (degree-matched stand-ins, scaled so
the bench finishes in minutes) and a growing vote count, measures:

- elapsed time of the basic multi-vote solution, the split-and-merge
  strategy, the simulated 4-worker distributed S-M, and the single-vote
  solution (panels a–c);
- Ω_avg of the three optimizers (panels d–f).

Paper shapes under test: multi-vote time blows up with votes while S-M
grows slowly (≥6× faster at scale) and distributed S-M is faster still;
single-vote is fastest but clearly worse on Ω_avg; S-M's Ω_avg stays
close to the basic multi-vote solution.
"""

from conftest import report

import numpy as np

from repro.eval.datasets import EFFICIENCY_DATASETS
from repro.eval.harness import vote_omega_avg
from repro.graph import AugmentedGraph, konect_like
from repro.optimize import solve_multi_vote, solve_single_votes, solve_split_merge
from repro.utils.tables import format_table
from repro.votes import generate_synthetic_votes

VOTE_COUNTS = (5, 10, 20)
GRAPH_SCALE = 0.01
NUM_ANSWERS = 40
K = 8
SEED = 17


def _build_workload(dataset, num_votes, seed=SEED):
    kg = konect_like(dataset, scale=GRAPH_SCALE, seed=seed)
    aug = AugmentedGraph(kg)
    nodes = sorted(kg.nodes())
    rng = np.random.default_rng(seed + 1)
    for a in range(NUM_ANSWERS):
        picks = rng.choice(len(nodes), size=3, replace=False)
        aug.add_answer(f"ans{a}", {nodes[int(i)]: 1 for i in picks})
    for q in range(num_votes):
        picks = rng.choice(len(nodes), size=2, replace=False)
        aug.add_query(f"qry{q}", {nodes[int(i)]: 1 for i in picks})
    votes = generate_synthetic_votes(
        aug, k=K, negative_fraction=0.5, avg_negative_position=4, seed=seed + 2
    )
    return aug, votes


def _run_dataset(dataset):
    rows = []
    shape = {}
    for num_votes in VOTE_COUNTS:
        aug, votes = _build_workload(dataset, num_votes)
        multi_graph, multi = solve_multi_vote(aug, votes)
        sm_graph, sm = solve_split_merge(aug, votes)
        single_graph, single = solve_single_votes(aug, votes)
        distributed = sm.distributed_makespan(num_workers=4)
        omega_multi = vote_omega_avg(multi_graph, votes)
        omega_sm = vote_omega_avg(sm_graph, votes)
        omega_single = vote_omega_avg(single_graph, votes)
        rows.append(
            [
                num_votes,
                f"{multi.elapsed:.2f}s",
                f"{sm.elapsed:.2f}s",
                f"{distributed:.2f}s",
                f"{single.elapsed:.2f}s",
                f"{omega_multi:+.2f}",
                f"{omega_sm:+.2f}",
                f"{omega_single:+.2f}",
            ]
        )
        shape[num_votes] = dict(
            multi=multi.elapsed,
            sm=sm.elapsed,
            distributed=distributed,
            single=single.elapsed,
            omega_multi=omega_multi,
            omega_sm=omega_sm,
            omega_single=omega_single,
        )
    return rows, shape


def bench_fig6(benchmark):
    results = {}

    def run_all():
        for dataset in EFFICIENCY_DATASETS:
            results[dataset] = _run_dataset(dataset)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for dataset, (rows, _shape) in results.items():
        report(
            format_table(
                [
                    "votes",
                    "Multi-V",
                    "S-M",
                    "Dist. S-M (4w)",
                    "Single-V",
                    "Ω multi",
                    "Ω S-M",
                    "Ω single",
                ],
                rows,
                title=(
                    f"Fig. 6 ({dataset}, scale x{GRAPH_SCALE}): votes vs "
                    "elapsed time (a-c) and Ω_avg (d-f)"
                ),
            )
        )

    for dataset, (_rows, shape) in results.items():
        largest = shape[VOTE_COUNTS[-1]]
        # (a-c): at the largest vote count, S-M beats the basic solution
        # and the distributed variant is no slower than S-M.
        assert largest["sm"] <= largest["multi"], dataset
        assert largest["distributed"] <= largest["sm"] + 1e-9, dataset
        # (d-f): S-M's quality stays close to the basic multi-vote
        # solution (within one rank position on average).
        assert largest["omega_sm"] >= largest["omega_multi"] - 1.0, dataset
        # Multi-vote strictly beats single-vote somewhere on quality.
    assert any(
        shape[n]["omega_multi"] >= shape[n]["omega_single"]
        for _rows, shape in results.values()
        for n in VOTE_COUNTS
    )
