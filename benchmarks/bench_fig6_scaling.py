"""Fig. 6 — vote count vs. elapsed time and Ω_avg on the KONECT graphs.

For each of Twitter/Digg/Gnutella (degree-matched stand-ins, scaled so
the bench finishes in minutes) and a growing vote count, measures:

- elapsed time of the basic multi-vote solution, the split-and-merge
  strategy, the simulated 4-worker distributed S-M, and the single-vote
  solution (panels a–c);
- Ω_avg of the three optimizers (panels d–f).

Paper shapes under test: multi-vote time blows up with votes while S-M
grows slowly (≥6× faster at scale) and distributed S-M is faster still;
single-vote is fastest but clearly worse on Ω_avg; S-M's Ω_avg stays
close to the basic multi-vote solution.

``bench_fig6_push_crossover`` extends the scaling axis to *serving*:
per-query top-k latency of the dense DP vs the sparse local-push
backend on growing Gnutella stand-ins, locating the edge count where
push overtakes dense and checking that push's touched-edge counts stay
sublinear in ``|E|`` (the quantity ``engine_push_edges_touched``
exports).

Environment knobs (used by the CI smoke job):

- ``BENCH_SMOKE=1`` — two small scales instead of four (the largest
  full scale exceeds a million edges);
- ``BENCH_OUTPUT_DIR=DIR`` — write ``BENCH_fig6_push_crossover.json``
  (per-scale latencies, touched-edge fractions, the crossover point)
  into ``DIR``.
"""

import json
import os
import time

from conftest import report

import numpy as np

from repro.eval.datasets import EFFICIENCY_DATASETS
from repro.eval.harness import vote_omega_avg
from repro.graph import AugmentedGraph, konect_like
from repro.optimize import solve_multi_vote, solve_single_votes, solve_split_merge
from repro.serving import SimilarityEngine, SimilarityParams
from repro.utils.tables import format_table
from repro.votes import generate_synthetic_votes

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
OUTPUT_DIR = os.environ.get("BENCH_OUTPUT_DIR")

VOTE_COUNTS = (5, 10, 20)
GRAPH_SCALE = 0.01
NUM_ANSWERS = 40
K = 8
SEED = 17

#: Gnutella at scale 7 is ~438k nodes / ~1.04M edges — the 1M+-edge
#: serving target; smoke keeps CI to a few seconds.
CROSSOVER_SCALES = (0.05, 0.2) if SMOKE else (0.05, 0.5, 2.0, 7.0)
CROSSOVER_DATASET = "gnutella"
CROSSOVER_QUERIES = 8 if SMOKE else 12
CROSSOVER_ANSWERS = 20
CROSSOVER_PARAMS = SimilarityParams(k=8)


def _build_workload(dataset, num_votes, seed=SEED):
    kg = konect_like(dataset, scale=GRAPH_SCALE, seed=seed)
    aug = AugmentedGraph(kg)
    nodes = sorted(kg.nodes())
    rng = np.random.default_rng(seed + 1)
    for a in range(NUM_ANSWERS):
        picks = rng.choice(len(nodes), size=3, replace=False)
        aug.add_answer(f"ans{a}", {nodes[int(i)]: 1 for i in picks})
    for q in range(num_votes):
        picks = rng.choice(len(nodes), size=2, replace=False)
        aug.add_query(f"qry{q}", {nodes[int(i)]: 1 for i in picks})
    votes = generate_synthetic_votes(
        aug, k=K, negative_fraction=0.5, avg_negative_position=4, seed=seed + 2
    )
    return aug, votes


def _run_dataset(dataset):
    rows = []
    shape = {}
    for num_votes in VOTE_COUNTS:
        aug, votes = _build_workload(dataset, num_votes)
        multi_graph, multi = solve_multi_vote(aug, votes)
        sm_graph, sm = solve_split_merge(aug, votes)
        single_graph, single = solve_single_votes(aug, votes)
        distributed = sm.distributed_makespan(num_workers=4)
        omega_multi = vote_omega_avg(multi_graph, votes)
        omega_sm = vote_omega_avg(sm_graph, votes)
        omega_single = vote_omega_avg(single_graph, votes)
        rows.append(
            [
                num_votes,
                f"{multi.elapsed:.2f}s",
                f"{sm.elapsed:.2f}s",
                f"{distributed:.2f}s",
                f"{single.elapsed:.2f}s",
                f"{omega_multi:+.2f}",
                f"{omega_sm:+.2f}",
                f"{omega_single:+.2f}",
            ]
        )
        shape[num_votes] = dict(
            multi=multi.elapsed,
            sm=sm.elapsed,
            distributed=distributed,
            single=single.elapsed,
            omega_multi=omega_multi,
            omega_sm=omega_sm,
            omega_single=omega_single,
        )
    return rows, shape


def bench_fig6(benchmark):
    results = {}

    def run_all():
        for dataset in EFFICIENCY_DATASETS:
            results[dataset] = _run_dataset(dataset)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for dataset, (rows, _shape) in results.items():
        report(
            format_table(
                [
                    "votes",
                    "Multi-V",
                    "S-M",
                    "Dist. S-M (4w)",
                    "Single-V",
                    "Ω multi",
                    "Ω S-M",
                    "Ω single",
                ],
                rows,
                title=(
                    f"Fig. 6 ({dataset}, scale x{GRAPH_SCALE}): votes vs "
                    "elapsed time (a-c) and Ω_avg (d-f)"
                ),
            )
        )

    for dataset, (_rows, shape) in results.items():
        largest = shape[VOTE_COUNTS[-1]]
        # (a-c): at the largest vote count, S-M beats the basic solution
        # and the distributed variant is no slower than S-M.
        assert largest["sm"] <= largest["multi"], dataset
        assert largest["distributed"] <= largest["sm"] + 1e-9, dataset
        # (d-f): S-M's quality stays close to the basic multi-vote
        # solution (within one rank position on average).
        assert largest["omega_sm"] >= largest["omega_multi"] - 1.0, dataset
        # Multi-vote strictly beats single-vote somewhere on quality.
    assert any(
        shape[n]["omega_multi"] >= shape[n]["omega_single"]
        for _rows, shape in results.values()
        for n in VOTE_COUNTS
    )


# ----------------------------------------------------------------------
# push-vs-dense serving crossover
# ----------------------------------------------------------------------
def _build_serving_workload(scale):
    kg = konect_like(CROSSOVER_DATASET, scale=scale, seed=SEED)
    aug = AugmentedGraph(kg)
    nodes = sorted(kg.nodes())
    rng = np.random.default_rng(SEED + 1)
    for a in range(CROSSOVER_ANSWERS):
        picks = rng.choice(len(nodes), size=3, replace=False)
        aug.add_answer(f"ans{a}", {nodes[int(i)]: 1 for i in picks})
    for q in range(CROSSOVER_QUERIES):
        picks = rng.choice(len(nodes), size=2, replace=False)
        aug.add_query(f"qry{q}", {nodes[int(i)]: 1 for i in picks})
    queries = [f"qry{q}" for q in range(CROSSOVER_QUERIES)]
    return aug, kg.num_edges, queries


def _timed_top_k(aug, queries, params):
    """Per-query top-k latency + engine stats with an LRU of size 0.

    ``cache_size=0`` forces every call through the kernel, so the
    measurement is pure propagation cost, not cache-hit cost.
    """
    engine = SimilarityEngine(aug, params=params, cache_size=0)
    try:
        top_lists = [engine.top_k(queries[0])]  # warm: builds the CSR
        start = time.perf_counter()
        for query in queries:
            top_lists.append(engine.top_k(query))
        elapsed = time.perf_counter() - start
        return elapsed / len(queries), engine.stats(), top_lists
    finally:
        engine.close()


def _measure_crossover_scale(scale):
    aug, num_edges, queries = _build_serving_workload(scale)
    dense_latency, _, dense_lists = _timed_top_k(
        aug, queries, CROSSOVER_PARAMS
    )
    push_latency, push_stats, push_lists = _timed_top_k(
        aug, queries, CROSSOVER_PARAMS.replace(backend="push")
    )
    # Default push tolerance (1e-8) must not move a single rank.
    assert [
        [doc for doc, _ in ranked] for ranked in dense_lists
    ] == [[doc for doc, _ in ranked] for ranked in push_lists]
    touched_mean = push_stats.push_edges_touched / push_stats.push_serves
    return dict(
        scale=scale,
        num_edges=num_edges,
        dense_latency=dense_latency,
        push_latency=push_latency,
        speedup=dense_latency / push_latency,
        touched_mean=touched_mean,
        touched_fraction=touched_mean / num_edges,
    )


def bench_fig6_push_crossover(benchmark):
    measurements = []

    def run_all():
        for scale in CROSSOVER_SCALES:
            measurements.append(_measure_crossover_scale(scale))
        return measurements

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    crossover = next(
        (m for m in measurements if m["push_latency"] < m["dense_latency"]),
        None,
    )
    rows = [
        [
            f"x{m['scale']:g}",
            f"{m['num_edges']:,}",
            f"{m['dense_latency'] * 1e3:.2f}ms",
            f"{m['push_latency'] * 1e3:.2f}ms",
            f"{m['speedup']:.1f}x",
            f"{m['touched_mean']:,.0f}",
            f"{m['touched_fraction']:.2%}",
        ]
        for m in measurements
    ]
    report(
        format_table(
            [
                "scale",
                "edges",
                "dense/query",
                "push/query",
                "push speedup",
                "edges touched",
                "of |E|",
            ],
            rows,
            title=(
                f"Fig. 6 (serving): dense vs push top-k per query on "
                f"{CROSSOVER_DATASET} — crossover at "
                + (
                    f"{crossover['num_edges']:,} edges"
                    if crossover
                    else "none within the measured scales"
                )
            ),
        )
    )

    if OUTPUT_DIR:
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        payload = {
            "benchmark": "fig6_push_crossover",
            "smoke": SMOKE,
            "dataset": CROSSOVER_DATASET,
            "measurements": measurements,
            "crossover_edges": crossover["num_edges"] if crossover else None,
        }
        with open(
            os.path.join(OUTPUT_DIR, "BENCH_fig6_push_crossover.json"),
            "w", encoding="utf-8",
        ) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # Sublinearity: the L-hop neighborhood a push touches is bounded by
    # the degree profile, not |E|, so the touched *fraction* must fall
    # as the graph grows.
    fractions = [m["touched_fraction"] for m in measurements]
    assert all(
        later < earlier for earlier, later in zip(fractions, fractions[1:])
    ), fractions
    if not SMOKE:
        largest = measurements[-1]
        # The acceptance target: top-k serving on a 1M+-edge graph with
        # per-query touched-edge counts far below |E|, and push faster
        # than dense once the graph dwarfs the query neighborhood.
        assert largest["num_edges"] >= 1_000_000, largest["num_edges"]
        assert largest["touched_fraction"] < 0.05, largest
        assert largest["push_latency"] < largest["dense_latency"], largest
