"""Serve-during-optimize latency — background worker vs full stall.

The seed served and optimized on one thread: every batch solve landed
in-line in whatever ``ask()`` happened to trigger it, so a user asking a
question behind a flush waited for the whole linear program.  The
:class:`~repro.serving.worker.OptimizerWorker` moves the solve onto a
background thread against a shadow graph and publishes results as
atomic weight-patch epochs, so serve-path reads never wait on a solve.

This bench replays the same oracle-vote workload under three
configurations and compares per-request latency percentiles:

- **idle** — the engine serving with no optimization in flight (the
  floor);
- **concurrent** — the same serve loop while an ``OptimizerWorker``
  ingests the votes and solves/publishes in the background (the new
  path; asks never block on a solve, only on epoch swaps);
- **full stall** — the single-threaded ``OnlineOptimizer`` wired to the
  same engine, where a batch-triggering submit runs the solve in-line
  and the request behind it eats the whole solve latency (the seed
  behaviour).

Acceptance: concurrent p50 stays within 2x of idle p50 (plus a small
absolute slack floor — sub-millisecond p50s sit inside scheduler
noise), and both optimizing runs converge to bitwise-identical final
weights (same votes, same batch boundaries, one solved on a shadow).

Environment knobs (used by the CI smoke job):

- ``BENCH_SMOKE=1`` — shrink the workload so the bench finishes in a
  few seconds and widen the slack floor accordingly;
- ``BENCH_OUTPUT_DIR=DIR`` — write ``BENCH_concurrent_serve.json``
  (latency percentiles + stall comparison) into ``DIR``.
"""

import json
import os
import time

from conftest import attach_queries_answers, report

import numpy as np

from repro.graph.generators import perturb_weights
from repro.graph import helpdesk_graph
from repro.obs import set_trace_sampling
from repro.optimize.online import OnlineOptimizer
from repro.serving import SimilarityEngine
from repro.serving.worker import OptimizerWorker
from repro.utils.tables import format_table
from repro.votes import GroundTruthOracle, generate_votes_from_oracle
from repro.votes.stream import CountPolicy

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
OUTPUT_DIR = os.environ.get("BENCH_OUTPUT_DIR")

NUM_TOPICS = 4 if SMOKE else 6
ENTITIES_PER_TOPIC = 8 if SMOKE else 10
NUM_VOTE_QUERIES = 12 if SMOKE else 24
NUM_SERVE_QUERIES = 16 if SMOKE else 24
NUM_ANSWERS = 12 if SMOKE else 16
NUM_ASKS = 400 if SMOKE else 1_200
BATCH_SIZE = 4
#: p50 ratio the worker must hold while solves run in the background.
MAX_P50_RATIO = 2.0
#: Absolute slack on the ratio check: idle cache-hit p50s are tens of
#: microseconds, where 2x is smaller than one scheduler quantum.  A
#: genuine stall regression shows up at solve scale (tens of
#: milliseconds), far outside this floor.
P50_SLACK_SECONDS = 0.005 if SMOKE else 0.002

# Production serving configuration: head-sampled trace trees, always-on
# metrics (matches the other serving benches).
set_trace_sampling(100)


def _build_workload():
    """Corrupted helpdesk deployment + oracle votes + a serve pool."""
    truth_kg, _ = helpdesk_graph(
        num_topics=NUM_TOPICS, entities_per_topic=ENTITIES_PER_TOPIC, seed=7
    )
    corrupted = perturb_weights(truth_kg, noise=1.5, seed=8)
    total = NUM_VOTE_QUERIES + NUM_SERVE_QUERIES
    truth = attach_queries_answers(
        truth_kg, num_queries=total, num_answers=NUM_ANSWERS, seed=9
    )
    deployed = attach_queries_answers(
        corrupted, num_queries=total, num_answers=NUM_ANSWERS, seed=9
    )
    vote_queries = [f"q{i}" for i in range(NUM_VOTE_QUERIES)]
    votes = list(
        generate_votes_from_oracle(
            deployed, GroundTruthOracle(truth), queries=vote_queries,
            k=8, seed=10,
        )
    )
    pool = [f"q{i}" for i in range(total)]
    return deployed, votes, pool


def _warm(engine, pool):
    """Build the matrix and fill the LRU outside the timed window."""
    for query in pool:
        engine.scores_for_query(query)


def _kg_weights(aug):
    return {edge.key: edge.weight for edge in aug.kg_edges()}


def _percentiles(latencies):
    arr = np.asarray(latencies)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
        "asks": len(latencies),
    }


def _run_idle():
    deployed, _, pool = _build_workload()
    engine = SimilarityEngine(deployed)
    _warm(engine, pool)
    latencies = []
    for i in range(NUM_ASKS):
        started = time.perf_counter()
        engine.scores_for_query(pool[i % len(pool)])
        latencies.append(time.perf_counter() - started)
    return _percentiles(latencies)


def _run_concurrent():
    deployed, votes, pool = _build_workload()
    engine = SimilarityEngine(deployed)
    _warm(engine, pool)
    submit_every = max(1, NUM_ASKS // (len(votes) + 1))
    expected_batches = len(votes) // BATCH_SIZE
    latencies = []
    deadline = time.monotonic() + 300.0
    with OptimizerWorker(
        deployed, engine=engine, policy=CountPolicy(BATCH_SIZE),
        poll_interval=0.005,
    ) as worker:
        asks = submitted = 0
        # Keep serving past the quota until every scheduled batch has
        # published — the whole point is measuring asks that overlap
        # solves, and the loop must not win the race by finishing early.
        while (
            asks < NUM_ASKS
            or submitted < len(votes)
            or len(worker.history) < expected_batches
        ):
            assert time.monotonic() < deadline, "optimizer worker stalled"
            if asks % submit_every == 0 and submitted < len(votes):
                worker.submit(votes[submitted])
                submitted += 1
            started = time.perf_counter()
            engine.scores_for_query(pool[asks % len(pool)])
            latencies.append(time.perf_counter() - started)
            asks += 1
        assert worker.last_error is None
    # The context exit drained the leftover partial batch (if any).
    return _percentiles(latencies), _kg_weights(deployed)


def _run_full_stall():
    deployed, votes, pool = _build_workload()
    engine = SimilarityEngine(deployed)
    _warm(engine, pool)
    online = OnlineOptimizer(
        deployed, policy=CountPolicy(BATCH_SIZE), engine=engine
    )
    submit_every = max(1, NUM_ASKS // (len(votes) + 1))
    latencies = []
    submitted = 0
    for i in range(NUM_ASKS):
        # Single-threaded seed behaviour: a batch-triggering submit
        # solves in-line, so the request behind it waits the solve out.
        started = time.perf_counter()
        if i % submit_every == 0 and submitted < len(votes):
            online.submit(votes[submitted])
            submitted += 1
        engine.scores_for_query(pool[i % len(pool)])
        latencies.append(time.perf_counter() - started)
    while submitted < len(votes):
        online.submit(votes[submitted])
        submitted += 1
    online.flush()
    return _percentiles(latencies), _kg_weights(deployed)


def bench_concurrent_serve(benchmark):
    results = {}

    def run_all():
        results["idle"] = _run_idle()
        results["concurrent"], concurrent_weights = _run_concurrent()
        results["stall"], stall_weights = _run_full_stall()
        # Same votes, same batch boundaries: the background worker's
        # shadow-solve-then-publish pipeline must land on exactly the
        # weights the single-threaded path computes.
        assert concurrent_weights == stall_weights
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    idle, concurrent, stall = (
        results["idle"], results["concurrent"], results["stall"]
    )
    ratio = concurrent["p50"] / idle["p50"]
    stall_ratio = stall["p50"] / idle["p50"]

    def row(name, stats):
        return [
            name,
            f"{stats['p50'] * 1e3:.3f}ms",
            f"{stats['p95'] * 1e3:.3f}ms",
            f"{stats['max'] * 1e3:.1f}ms",
            f"{stats['asks']}",
        ]

    report(
        format_table(
            ["serve mode", "p50", "p95", "max", "asks"],
            [
                row("idle (no optimization)", idle),
                row("background worker", concurrent),
                row("full stall (in-line solve)", stall),
            ],
            title=(
                "Serve-during-optimize latency: background worker p50 "
                f"{ratio:.2f}x idle (in-line solve p50 {stall_ratio:.2f}x, "
                f"worst ask {stall['max'] * 1e3:.0f}ms)"
            ),
        )
    )

    if OUTPUT_DIR:
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        payload = {
            "benchmark": "concurrent_serve",
            "smoke": SMOKE,
            "num_asks": NUM_ASKS,
            "batch_size": BATCH_SIZE,
            "idle": idle,
            "concurrent": concurrent,
            "full_stall": stall,
            "p50_ratio": ratio,
            "stall_p50_ratio": stall_ratio,
        }
        with open(
            os.path.join(OUTPUT_DIR, "BENCH_concurrent_serve.json"),
            "w", encoding="utf-8",
        ) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    assert concurrent["p50"] <= (
        MAX_P50_RATIO * idle["p50"] + P50_SLACK_SECONDS
    ), (
        f"serving during background optimization should hold p50 within "
        f"{MAX_P50_RATIO:g}x idle, got {ratio:.2f}x "
        f"({concurrent['p50'] * 1e3:.3f}ms vs {idle['p50'] * 1e3:.3f}ms)"
    )
