"""Table III — samples of optimized edge weights.

Runs the multi-vote optimization on the effectiveness workload and
prints the largest-|diff| edge weight changes in the paper's format
(head entity, tail entity, original, optimized, diff).  The paper's
observation — weights move in both directions, tracking what users
actually consulted — is checked structurally: both increases and
decreases must appear.
"""

from conftest import report

from repro.optimize import solve_multi_vote
from repro.utils.tables import format_table

NUM_SAMPLES = 8


def bench_table3(benchmark, effectiveness_workload):
    workload = effectiveness_workload

    def optimize():
        return solve_multi_vote(workload.deployed, workload.votes)

    optimized, run_report = benchmark.pedantic(optimize, rounds=1, iterations=1)

    changes = sorted(
        run_report.changed_edges.items(),
        key=lambda item: -abs(item[1][1] - item[1][0]),
    )
    rows = [
        [head, tail, f"{old:.4f}", f"{new:.4f}", f"{new - old:+.4f}"]
        for (head, tail), (old, new) in changes[:NUM_SAMPLES]
    ]
    report(
        format_table(
            ["Head Entity", "Tail Entity", "Original", "Optimized", "Diff"],
            rows,
            title=(
                "Table III: samples of optimized edge weights "
                f"({len(run_report.changed_edges)} edges changed in total)"
            ),
        )
    )

    diffs = [new - old for (old, new) in run_report.changed_edges.values()]
    assert any(d > 0 for d in diffs), "some weights should increase"
    assert any(d < 0 for d in diffs), "some weights should decrease"
