"""Table VI — average elapsed time per query for similarity evaluation.

Races the random-walk baseline of [5] (one linear-equation-group solve
per answer) against the extended inverse P-distance (one shared
propagation for all answers) while the answer-set size |A| doubles.
Sizes are scaled from the paper's 5k–40k to 50–400 so the bench runs in
seconds; the claim under test is the *scaling shape*: random walk grows
linearly in |A|, the P-distance stays flat.
"""

import time

from conftest import report

import numpy as np

from repro.graph import AugmentedGraph, random_digraph
from repro.similarity import inverse_pdistance, random_walk_similarity
from repro.utils.tables import format_table

ANSWER_COUNTS = (20, 40, 80, 160)
GRAPH_NODES = 1_000


def _build(num_answers, seed=3):
    kg = random_digraph(GRAPH_NODES, 4.0, seed=seed, out_mass=0.9)
    aug = AugmentedGraph(kg)
    nodes = sorted(kg.nodes())
    rng = np.random.default_rng(seed + 1)
    for a in range(num_answers):
        picks = rng.choice(len(nodes), size=3, replace=False)
        aug.add_answer(f"ans{a}", {nodes[int(i)]: 1 for i in picks})
    picks = rng.choice(len(nodes), size=3, replace=False)
    aug.add_query("query", {nodes[int(i)]: 1 for i in picks})
    answers = [f"ans{a}" for a in range(num_answers)]
    return aug, answers


def bench_table6(benchmark):
    timings: dict[int, tuple[float, float]] = {}

    def run_all():
        for num_answers in ANSWER_COUNTS:
            aug, answers = _build(num_answers)
            start = time.perf_counter()
            rw = random_walk_similarity(aug.graph, "query", answers)
            rw_time = time.perf_counter() - start
            start = time.perf_counter()
            pd = inverse_pdistance(aug.graph, "query", answers, max_length=5)
            pd_time = time.perf_counter() - start
            timings[num_answers] = (rw_time, pd_time)
            assert set(rw) == set(pd)
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            f"|A| = {n}",
            f"{rw:.3f}s",
            f"{pd:.3f}s",
            f"{rw / pd:.1f}x",
        ]
        for n, (rw, pd) in timings.items()
    ]
    report(
        format_table(
            ["Answer set", "Random Walk [5]", "Ext. Inverse P-Distance", "speedup"],
            rows,
            title=(
                "Table VI: per-query similarity time (paper: random walk "
                "3.0→28s linear in |A|; P-distance flat 2.6→3.0s)"
            ),
        )
    )

    # Shape: random walk grows roughly linearly with |A| ...
    first_rw = timings[ANSWER_COUNTS[0]][0]
    last_rw = timings[ANSWER_COUNTS[-1]][0]
    scale = ANSWER_COUNTS[-1] / ANSWER_COUNTS[0]
    assert last_rw > first_rw * scale * 0.3, "random walk should scale with |A|"
    # ... while the P-distance stays within a small constant factor.
    first_pd = timings[ANSWER_COUNTS[0]][1]
    last_pd = timings[ANSWER_COUNTS[-1]][1]
    assert last_pd < first_pd * 5 + 0.05, "P-distance should stay ~flat"
    # And the gap widens with |A| (the paper's headline).
    assert last_rw / last_pd > first_rw / first_pd
