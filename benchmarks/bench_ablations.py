"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these quantify the knobs the paper fixes by fiat:

- SGP solver: SLSQP vs penalty vs monomial condensation (single-vote);
- sigmoid steepness w (paper: 300);
- λ1/λ2 preference trade-off (paper: 0.5/0.5);
- feasibility filter on/off with erroneous votes injected;
- merge rule: the paper's vote-count-weighted extremum vs plain
  averaging;
- AP clustering vs fixed-size chunking for the split step.
"""

from conftest import EffectivenessWorkload, report

import numpy as np

from repro.clustering.similarity import vote_edge_sets, vote_similarity_matrix
from repro.eval.harness import vote_omega_avg
from repro.optimize import (
    merge_changes,
    solve_multi_vote,
    solve_split_merge,
)
from repro.optimize.encoder import encode_votes
from repro.optimize.objectives import distance_signomial
from repro.sgp import solve_by_condensation, solve_sgp
from repro.utils.tables import format_table


def _workload(**kwargs):
    return EffectivenessWorkload(
        num_vote_queries=14, num_test_queries=6, **kwargs
    )


def bench_ablation_solvers(benchmark):
    """One negative vote's SGP solved by all three solver backends."""
    workload = _workload(seed=3)
    vote = workload.votes.negative[0]
    results = {}

    def run_all():
        for method in ("slsqp", "trust-constr", "penalty"):
            encoded = encode_votes(
                workload.deployed, [vote], use_deviations=False
            )
            encoded.problem.set_objective(
                distance_signomial(encoded.problem.x0[: encoded.num_edge_vars])
            )
            solution = solve_sgp(encoded.problem, method=method)
            results[method] = solution
        encoded = encode_votes(workload.deployed, [vote], use_deviations=False)
        encoded.problem.set_objective(
            distance_signomial(encoded.problem.x0[: encoded.num_edge_vars])
        )
        results["condensation"] = solve_by_condensation(encoded.problem)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            method,
            f"{solution.elapsed:.3f}s",
            f"{solution.num_satisfied}/{solution.num_constraints}",
            f"{solution.objective_value:.4f}",
        ]
        for method, solution in results.items()
    ]
    report(
        format_table(
            ["Solver", "time", "constraints", "objective (weight drift)"],
            rows,
            title="Ablation: SGP solver backends on one single-vote program",
        )
    )
    # Every backend should satisfy the (feasible) vote's constraints.
    assert all(s.all_satisfied for s in results.values())


def bench_ablation_sigmoid_w(benchmark):
    """Sigmoid steepness under *conflicting* votes.

    Every negative vote is paired with its contradiction (a second user
    confirming the original top answer), so the SGP cannot satisfy
    everything and the sigmoid term must arbitrate.  The steepness w
    controls how sharply "violated" is counted.
    """
    from repro.votes import Vote, VoteSet

    workload = _workload(seed=5)
    conflicted = VoteSet(list(workload.votes))
    for vote in workload.votes.negative:
        conflicted.add(
            Vote(
                query=vote.query,
                ranked_answers=vote.ranked_answers,
                best_answer=vote.ranked_answers[0],
            )
        )
    results = {}

    def run_all():
        for w in (5.0, 50.0, 300.0, 1000.0):
            graph, rep = solve_multi_vote(
                workload.deployed, conflicted, sigmoid_w=w,
                feasibility_filter=False,
            )
            results[w] = (vote_omega_avg(graph, workload.votes),
                          rep.num_violated_deviations)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [f"w = {w:g}", f"{omega:+.3f}", violated]
        for w, (omega, violated) in results.items()
    ]
    report(
        format_table(
            ["Steepness", "Omega_avg (orig. votes)", "violated deviations"],
            rows,
            title=(
                "Ablation: sigmoid steepness w with contradictory votes "
                "(paper default 300)"
            ),
        )
    )
    # Conflicts exist by construction: some deviations must stay positive.
    assert any(violated > 0 for _omega, violated in results.values())


def bench_ablation_lambda_tradeoff(benchmark):
    """λ1 (small edits) vs λ2 (vote satisfaction)."""
    workload = _workload(seed=7)
    results = {}

    def run_all():
        for lambda1, lambda2 in ((0.9, 0.1), (0.5, 0.5), (0.1, 0.9)):
            graph, rep = solve_multi_vote(
                workload.deployed, workload.votes,
                lambda1=lambda1, lambda2=lambda2,
            )
            drift = sum(
                (new - old) ** 2 for old, new in rep.changed_edges.values()
            )
            results[(lambda1, lambda2)] = (
                vote_omega_avg(graph, workload.votes), drift
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [f"λ1={l1}, λ2={l2}", f"{omega:+.3f}", f"{drift:.4f}"]
        for (l1, l2), (omega, drift) in results.items()
    ]
    report(
        format_table(
            ["Preferences", "Omega_avg", "sq. weight drift"],
            rows,
            title="Ablation: Eq. 19 preference weights (paper uses 0.5/0.5)",
        )
    )
    # Leaning toward satisfaction must not drift less than leaning
    # toward minimal edits.
    assert results[(0.1, 0.9)][1] >= results[(0.9, 0.1)][1] - 1e-9


def bench_ablation_feasibility_filter(benchmark):
    """The filter on a sparse graph, where random votes are often
    unsatisfiable (the paper's motivation for the judgment).
    """
    from repro.graph import AugmentedGraph, konect_like
    from repro.votes import generate_synthetic_votes

    kg = konect_like("twitter", scale=0.01, seed=17)
    aug = AugmentedGraph(kg)
    nodes = sorted(kg.nodes())
    rng = np.random.default_rng(18)
    for a in range(40):
        picks = rng.choice(len(nodes), size=3, replace=False)
        aug.add_answer(f"ans{a}", {nodes[int(i)]: 1 for i in picks})
    for q in range(12):
        picks = rng.choice(len(nodes), size=2, replace=False)
        aug.add_query(f"qry{q}", {nodes[int(i)]: 1 for i in picks})
    votes = generate_synthetic_votes(
        aug, k=8, negative_fraction=0.8, avg_negative_position=5, seed=19
    )
    results = {}

    def run_all():
        for label, filt in (("filter on", True), ("filter off", False)):
            graph, rep = solve_multi_vote(aug, votes, feasibility_filter=filt)
            results[label] = (
                vote_omega_avg(graph, votes),
                len(rep.discarded_votes),
                rep.num_constraints,
                rep.elapsed,
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [label, f"{omega:+.3f}", discarded, constraints, f"{elapsed:.2f}s"]
        for label, (omega, discarded, constraints, elapsed) in results.items()
    ]
    report(
        format_table(
            ["Setting", "Omega_avg", "discarded", "constraints", "time"],
            rows,
            title=(
                "Ablation: extreme-condition feasibility filter on a sparse "
                "graph with random (often unsatisfiable) votes"
            ),
        )
    )
    # The filter must actually fire on this workload, shrinking the SGP.
    on = results["filter on"]
    off = results["filter off"]
    assert on[1] > 0, "filter should discard some random votes"
    assert on[2] <= off[2], "filter should shrink the program"


def bench_ablation_merge_rule(benchmark):
    """The paper's merge rule vs plain (vote-weighted) averaging."""
    rng = np.random.default_rng(13)
    clusters = []
    for _ in range(6):
        deltas = {
            f"e{i}": float(rng.normal(0.02, 0.03)) for i in rng.integers(0, 12, 5)
        }
        clusters.append((deltas, int(rng.integers(2, 10))))

    def average_merge(cluster_deltas):
        acc, weights = {}, {}
        for deltas, votes in cluster_deltas:
            for edge, delta in deltas.items():
                acc[edge] = acc.get(edge, 0.0) + votes * delta
                weights[edge] = weights.get(edge, 0) + votes
        return {edge: acc[edge] / weights[edge] for edge in acc}

    def run_both():
        return merge_changes(clusters), average_merge(clusters)

    paper_merge, avg_merge = benchmark(run_both)

    shared = sorted(set(paper_merge) & set(avg_merge))
    rows = [
        [edge, f"{paper_merge[edge]:+.4f}", f"{avg_merge[edge]:+.4f}"]
        for edge in shared[:8]
    ]
    report(
        format_table(
            ["Edge", "paper rule (extremum)", "weighted average"],
            rows,
            title=(
                "Ablation: merge rules — the paper's rule commits to the "
                "majority side's extreme; averaging dilutes it"
            ),
        )
    )
    # The paper's rule never produces a smaller magnitude than the
    # average on edges where all clusters agree in sign.
    for edge in shared:
        contributions = [
            d[edge] for d, _ in clusters if edge in d
        ]
        if len(contributions) > 1 and (
            all(c > 0 for c in contributions) or all(c < 0 for c in contributions)
        ):
            assert abs(paper_merge[edge]) >= abs(avg_merge[edge]) - 1e-12


def bench_ablation_vote_trust_weights(benchmark):
    """Trust-weighted votes: the heavier camp wins a pure conflict.

    Extension beyond the paper (its intro notes Q&A sites weight
    feedback by vote counts): a vote of weight w scales its violation
    penalty by w, so conflicting camps are resolved by total trust.
    """
    from repro.graph import AugmentedGraph, WeightedDiGraph
    from repro.similarity import inverse_pdistance
    from repro.votes import Vote

    def build():
        kg = WeightedDiGraph.from_edges(
            [("x", "y", 0.45), ("x", "z", 0.45)], strict=False
        )
        aug = AugmentedGraph(kg)
        aug.add_query("q", {"x": 1})
        aug.add_answer("a1", {"y": 1})
        aug.add_answer("a2", {"z": 1})
        return aug

    results = {}

    def run_all():
        for label, w_a2, w_a1 in (
            ("a2 camp 5x trusted", 5.0, 1.0),
            ("equal trust", 1.0, 1.0),
            ("a1 camp 5x trusted", 1.0, 5.0),
        ):
            aug = build()
            votes = [
                Vote("q", ("a1", "a2"), "a2", weight=w_a2),
                Vote("q", ("a1", "a2"), "a1", weight=w_a1),
            ]
            optimized, _ = solve_multi_vote(
                aug, votes, feasibility_filter=False
            )
            scores = inverse_pdistance(optimized.graph, "q", ["a1", "a2"])
            results[label] = (scores["a1"], scores["a2"])
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [label, f"{s1:.5f}", f"{s2:.5f}", "a1" if s1 > s2 else "a2"]
        for label, (s1, s2) in results.items()
    ]
    report(
        format_table(
            ["Trust configuration", "S(q,a1)", "S(q,a2)", "winner"],
            rows,
            title=(
                "Ablation (extension): trust-weighted conflicting votes — "
                "the heavier camp's answer wins"
            ),
        )
    )
    assert results["a2 camp 5x trusted"][1] > results["a2 camp 5x trusted"][0]
    assert results["a1 camp 5x trusted"][0] > results["a1 camp 5x trusted"][1]


def bench_ablation_split_clustering(benchmark):
    """AP clustering vs fixed-size chunking for the split step."""
    workload = _workload(seed=15)
    results = {}

    def run_all():
        graph_ap, rep_ap = solve_split_merge(
            workload.deployed, workload.votes, preference="median"
        )
        results["AP (median preference)"] = (
            vote_omega_avg(graph_ap, workload.votes),
            rep_ap.num_clusters,
            rep_ap.elapsed,
        )
        # Fixed-size chunking baseline: same per-cluster solver, split
        # by arrival order into chunks of 5.
        votes = list(workload.votes)
        chunks = [votes[i : i + 5] for i in range(0, len(votes), 5)]
        from repro.optimize.parallel import solve_one_cluster
        from repro.optimize.merge import merged_weights
        from repro.optimize.apply import apply_edge_weights
        import time as _time

        start = _time.perf_counter()
        chunk_results = [
            solve_one_cluster(workload.deployed, chunk, i, {})
            for i, chunk in enumerate(chunks)
        ]
        merged = merge_changes(
            [(r.deltas, r.num_votes) for r in chunk_results]
        )
        target = workload.deployed.copy()
        base = {edge: target.graph.weight(*edge) for edge in merged}
        apply_edge_weights(
            target, merged_weights(base, merged), normalize=False
        )
        elapsed = _time.perf_counter() - start
        results["fixed chunks of 5"] = (
            vote_omega_avg(target, workload.votes), len(chunks), elapsed
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [label, f"{omega:+.3f}", clusters, f"{elapsed:.2f}s"]
        for label, (omega, clusters, elapsed) in results.items()
    ]
    report(
        format_table(
            ["Split strategy", "Omega_avg", "clusters", "time"],
            rows,
            title=(
                "Ablation: AP clustering (edge-overlap aware) vs fixed-size "
                "chunking for the split step"
            ),
        )
    )
