"""Fig. 5 — MRR and MAP before/after optimization.

Two panels, as in the paper:

(a) MRR/MAP over the whole test set — the single-vote solution can
    degrade them (it ignores positive votes, so confirmed top answers
    are free to fall), the multi-vote solution improves them;
(b) the same metrics restricted to the test questions whose best answer
    did *not* rank first originally — there even the single-vote
    solution helps, the paper's explanation of panel (a).
"""

from conftest import report

from repro.eval.harness import evaluate_test_set
from repro.optimize import solve_multi_vote, solve_single_votes
from repro.utils.tables import format_table


def _subset_pairs(workload, baseline_result):
    """Test pairs whose best answer is not already top-ranked."""
    pairs = {}
    for (query, best), rank in zip(
        workload.test_pairs.items(), baseline_result.ranks
    ):
        if rank > 1:
            pairs[query] = best
    return pairs


def bench_fig5(benchmark, effectiveness_workload):
    workload = effectiveness_workload

    def optimize_and_eval():
        single, _ = solve_single_votes(workload.deployed, workload.votes)
        multi, _ = solve_multi_vote(workload.deployed, workload.votes)
        baseline = evaluate_test_set(workload.deployed, workload.test_pairs)
        subset = _subset_pairs(workload, baseline)
        panel_a = {
            "Original": baseline,
            "Single-V": evaluate_test_set(single, workload.test_pairs),
            "Multiple-V": evaluate_test_set(multi, workload.test_pairs),
        }
        panel_b = {
            "Original": evaluate_test_set(workload.deployed, subset),
            "Single-V": evaluate_test_set(single, subset),
            "Multiple-V": evaluate_test_set(multi, subset),
        } if subset else {}
        return panel_a, panel_b, len(subset)

    panel_a, panel_b, subset_size = benchmark.pedantic(
        optimize_and_eval, rounds=1, iterations=1
    )

    rows_a = [
        [label, f"{result.map_score:.3f}", f"{result.mrr:.3f}"]
        for label, result in panel_a.items()
    ]
    report(
        format_table(
            ["Graph", "MAP", "MRR"],
            rows_a,
            title="Fig. 5(a): MAP/MRR on the whole test set",
        )
    )
    if panel_b:
        rows_b = [
            [label, f"{result.map_score:.3f}", f"{result.mrr:.3f}"]
            for label, result in panel_b.items()
        ]
        report(
            format_table(
                ["Graph", "MAP", "MRR"],
                rows_b,
                title=(
                    f"Fig. 5(b): MAP/MRR on the {subset_size} questions whose "
                    "best answer was not originally top-1"
                ),
            )
        )

    # Paper shape: multi-vote improves (or preserves) the whole-set
    # metrics relative to the original graph.
    assert panel_a["Multiple-V"].mrr >= panel_a["Original"].mrr - 1e-12
    if panel_b:
        # On the non-top-1 subset, both solutions should help.
        assert panel_b["Multiple-V"].mrr >= panel_b["Original"].mrr - 1e-12
        assert panel_b["Single-V"].mrr >= panel_b["Original"].mrr - 1e-12
