"""Serving throughput — the engine vs the rebuild-per-call seed path.

The seed ``QASystem.ask()`` rebuilt the full CSR adjacency matrix from
the graph's Python dicts on every question; the
:class:`~repro.serving.engine.SimilarityEngine` builds it once and keeps
it current incrementally, with an LRU of score vectors on top.  This
bench replays 500 ``ask()`` calls cycling through a fixed question pool
against a ~5k-edge graph under both configurations (scores are bitwise
identical either way) and asserts the engine path is at least 5× faster.
It also measures :meth:`QASystem.ask_many`, which shares one stacked
propagation across a whole batch.
"""

import time

from conftest import report

import numpy as np

from repro.graph.generators import random_digraph
from repro.qa import EntityVocabulary, QASystem
from repro.serving import SimilarityParams
from repro.utils.tables import format_table

NUM_NODES = 1_250
AVG_DEGREE = 4.0
NUM_DOCS = 60
NUM_QUESTIONS = 25
NUM_ASKS = 500
PARAMS = SimilarityParams(k=8, max_length=5)


def _build_system(*, use_engine):
    kg = random_digraph(NUM_NODES, AVG_DEGREE, seed=17, out_mass=0.9)
    nodes = sorted(kg.nodes())
    vocabulary = EntityVocabulary(nodes)
    system = QASystem(kg, vocabulary, params=PARAMS, use_engine=use_engine)
    rng = np.random.default_rng(23)
    documents = {}
    for d in range(NUM_DOCS):
        picks = rng.choice(len(nodes), size=3, replace=False)
        documents[f"doc{d}"] = " ".join(nodes[int(p)] for p in picks)
    system.add_documents(documents)
    rng = np.random.default_rng(29)
    questions = []
    for _ in range(NUM_QUESTIONS):
        picks = rng.choice(len(nodes), size=2, replace=False)
        questions.append(" ".join(nodes[int(p)] for p in picks))
    return kg, system, questions


def _ask_loop(system, questions):
    start = time.perf_counter()
    answers = []
    for i in range(NUM_ASKS):
        question = questions[i % len(questions)]
        answers.append(
            system.ask(question, question_id=f"bench_q{i % len(questions)}")
        )
    return time.perf_counter() - start, answers


def bench_serving_throughput(benchmark):
    results = {}

    def run_all():
        kg, cold_system, questions = _build_system(use_engine=False)
        cold_time, cold_answers = _ask_loop(cold_system, questions)

        kg2, engine_system, _ = _build_system(use_engine=True)
        assert kg.num_edges == kg2.num_edges
        engine_time, engine_answers = _ask_loop(engine_system, questions)

        # Same questions, same graph: the answers must agree bitwise.
        assert engine_answers == cold_answers

        batch = {
            f"batch_q{i}": q
            for _ in range(NUM_ASKS // NUM_QUESTIONS)
            for i, q in enumerate(questions)
        }
        start = time.perf_counter()
        for _ in range(NUM_ASKS // NUM_QUESTIONS):
            engine_system.ask_many(batch)
        batch_time = time.perf_counter() - start

        results.update(
            num_edges=kg.num_edges,
            cold_time=cold_time,
            engine_time=engine_time,
            batch_time=batch_time,
            stats=engine_system.serving_stats(),
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    cold_time = results["cold_time"]
    engine_time = results["engine_time"]
    batch_time = results["batch_time"]
    stats = results["stats"]
    speedup = cold_time / engine_time
    rows = [
        ["rebuild per call (seed)", f"{cold_time:.3f}s",
         f"{NUM_ASKS / cold_time:.0f}", "1.0x"],
        ["SimilarityEngine", f"{engine_time:.3f}s",
         f"{NUM_ASKS / engine_time:.0f}", f"{speedup:.1f}x"],
        ["ask_many (batched)", f"{batch_time:.3f}s",
         f"{NUM_ASKS / batch_time:.0f}", f"{cold_time / batch_time:.1f}x"],
    ]
    report(
        format_table(
            ["serving path", "500 asks", "q/s", "speedup"],
            rows,
            title=(
                f"Serving throughput on a {results['num_edges']}-edge graph "
                f"(engine: {stats.builds} build(s), "
                f"{stats.cache_hits} cache hits, "
                f"{stats.rebuilds_avoided} rebuilds avoided)"
            ),
        )
    )

    assert speedup >= 5.0, (
        f"engine serving should be ≥5x the rebuild-per-call path, "
        f"got {speedup:.1f}x ({engine_time:.3f}s vs {cold_time:.3f}s)"
    )
    assert stats.builds == 1  # the matrix was built exactly once
    assert stats.cache_hits > 0  # repeated questions hit the LRU
