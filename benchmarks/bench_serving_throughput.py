"""Serving throughput — the engine vs the rebuild-per-call seed path.

The seed ``QASystem.ask()`` rebuilt the full CSR adjacency matrix from
the graph's Python dicts on every question; the
:class:`~repro.serving.engine.SimilarityEngine` builds it once and keeps
it current incrementally, with an LRU of score vectors on top.  This
bench replays 500 ``ask()`` calls cycling through a fixed question pool
against a ~5k-edge graph under both configurations (scores are bitwise
identical either way) and asserts the engine path is at least 5× faster.
It also measures :meth:`QASystem.ask_many`, which shares one stacked
propagation across a whole batch.

Environment knobs (used by the CI smoke job):

- ``BENCH_SMOKE=1`` — shrink the workload so the bench finishes in a
  few seconds and relax the speedup floor accordingly;
- ``BENCH_OUTPUT_DIR=DIR`` — write ``BENCH_serving_throughput.json``
  (timings + speedups) and ``BENCH_metrics_snapshot.json`` (the full
  observability registry snapshot) into ``DIR``.
"""

import json
import os
import time

from conftest import report

import numpy as np

from repro.graph.generators import random_digraph
from repro.obs import get_registry, set_trace_sampling
from repro.qa import EntityVocabulary, QASystem
from repro.serving import SimilarityParams
from repro.utils.tables import format_table

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
OUTPUT_DIR = os.environ.get("BENCH_OUTPUT_DIR")

NUM_NODES = 400 if SMOKE else 1_250
AVG_DEGREE = 4.0
NUM_DOCS = 30 if SMOKE else 60
NUM_QUESTIONS = 25
NUM_ASKS = 150 if SMOKE else 500
#: Small smoke graphs leave less rebuild work to amortize, so the
#: engine's edge over the seed path shrinks with the workload.
MIN_SPEEDUP = 2.0 if SMOKE else 5.0
PARAMS = SimilarityParams(k=8, max_length=5)

# The production serving configuration: metrics stay always-on (the
# snapshot artifact below still carries exact counts and latency
# histograms), but per-request trace trees are head-sampled — an
# always-on root span costs a few microseconds, which is real money at
# cache-hit serving rates.  This keeps instrumentation overhead on the
# measured ask loops under 5%.
set_trace_sampling(100)


def _build_system(*, use_engine):
    kg = random_digraph(NUM_NODES, AVG_DEGREE, seed=17, out_mass=0.9)
    nodes = sorted(kg.nodes())
    vocabulary = EntityVocabulary(nodes)
    system = QASystem(kg, vocabulary, params=PARAMS, use_engine=use_engine)
    rng = np.random.default_rng(23)
    documents = {}
    for d in range(NUM_DOCS):
        picks = rng.choice(len(nodes), size=3, replace=False)
        documents[f"doc{d}"] = " ".join(nodes[int(p)] for p in picks)
    system.add_documents(documents)
    rng = np.random.default_rng(29)
    questions = []
    for _ in range(NUM_QUESTIONS):
        picks = rng.choice(len(nodes), size=2, replace=False)
        questions.append(" ".join(nodes[int(p)] for p in picks))
    return kg, system, questions


def _ask_loop(system, questions):
    start = time.perf_counter()
    answers = []
    for i in range(NUM_ASKS):
        question = questions[i % len(questions)]
        answers.append(
            system.ask(question, question_id=f"bench_q{i % len(questions)}")
        )
    return time.perf_counter() - start, answers


def bench_serving_throughput(benchmark):
    results = {}

    def run_all():
        kg, cold_system, questions = _build_system(use_engine=False)
        cold_time, cold_answers = _ask_loop(cold_system, questions)

        kg2, engine_system, _ = _build_system(use_engine=True)
        assert kg.num_edges == kg2.num_edges
        engine_time, engine_answers = _ask_loop(engine_system, questions)

        # Same questions, same graph: the answers must agree bitwise.
        assert engine_answers == cold_answers

        batch = {
            f"batch_q{i}": q
            for _ in range(NUM_ASKS // NUM_QUESTIONS)
            for i, q in enumerate(questions)
        }
        start = time.perf_counter()
        for _ in range(NUM_ASKS // NUM_QUESTIONS):
            engine_system.ask_many(batch)
        batch_time = time.perf_counter() - start

        results.update(
            num_edges=kg.num_edges,
            cold_time=cold_time,
            engine_time=engine_time,
            batch_time=batch_time,
            stats=engine_system.serving_stats(),
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    cold_time = results["cold_time"]
    engine_time = results["engine_time"]
    batch_time = results["batch_time"]
    stats = results["stats"]
    speedup = cold_time / engine_time
    rows = [
        ["rebuild per call (seed)", f"{cold_time:.3f}s",
         f"{NUM_ASKS / cold_time:.0f}", "1.0x"],
        ["SimilarityEngine", f"{engine_time:.3f}s",
         f"{NUM_ASKS / engine_time:.0f}", f"{speedup:.1f}x"],
        ["ask_many (batched)", f"{batch_time:.3f}s",
         f"{NUM_ASKS / batch_time:.0f}", f"{cold_time / batch_time:.1f}x"],
    ]
    report(
        format_table(
            ["serving path", f"{NUM_ASKS} asks", "q/s", "speedup"],
            rows,
            title=(
                f"Serving throughput on a {results['num_edges']}-edge graph "
                f"(engine: {stats.builds} build(s), "
                f"{stats.cache_hits} cache hits, "
                f"{stats.rebuilds_avoided} rebuilds avoided)"
            ),
        )
    )

    if OUTPUT_DIR:
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        payload = {
            "benchmark": "serving_throughput",
            "smoke": SMOKE,
            "num_edges": results["num_edges"],
            "num_asks": NUM_ASKS,
            "cold_seconds": cold_time,
            "engine_seconds": engine_time,
            "batch_seconds": batch_time,
            "speedup": speedup,
            "cache_hits": stats.cache_hits,
            "builds": stats.builds,
        }
        with open(
            os.path.join(OUTPUT_DIR, "BENCH_serving_throughput.json"),
            "w", encoding="utf-8",
        ) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        from repro.obs import write_metrics_json

        write_metrics_json(
            os.path.join(OUTPUT_DIR, "BENCH_metrics_snapshot.json"),
            get_registry(),
        )

    assert speedup >= MIN_SPEEDUP, (
        f"engine serving should be ≥{MIN_SPEEDUP:g}x the rebuild-per-call "
        f"path, got {speedup:.1f}x ({engine_time:.3f}s vs {cold_time:.3f}s)"
    )
    assert stats.builds == 1  # the matrix was built exactly once
    assert stats.cache_hits > 0  # repeated questions hit the LRU


#: Multiplicative ceiling for the armed-recorder ask loop, plus an
#: absolute slack floor — 5% of a sub-second loop is single-digit
#: milliseconds, well inside scheduler noise, so a pure ratio check
#: would flake.
MAX_RECORDER_OVERHEAD = 1.05
RECORDER_SLACK_SECONDS = 0.05


def bench_recorder_overhead(benchmark, tmp_path):
    """Flight-recorder arming must stay within 5% of the disarmed path.

    The recorder's hot-path contract is one global load and a ``None``
    check when disarmed, and a dict build plus deque append when armed
    — nothing that should be visible next to a propagation, and barely
    visible next to a cache hit.  Replays the same ask loop as the
    throughput bench with the recorder off and on (best of three each,
    to shed warm-up and scheduler noise) and asserts the armed loop is
    within ``MAX_RECORDER_OVERHEAD`` (plus absolute slack).
    """
    from repro.obs.recorder import arm_recorder, disarm_recorder

    results = {}

    def run_all():
        _, system, questions = _build_system(use_engine=True)
        _ask_loop(system, questions)  # warm: build matrix, fill the LRU

        def best_of(n):
            return min(_ask_loop(system, questions)[0] for _ in range(n))

        disarm_recorder()
        off = best_of(3)
        # Thresholds high enough that no slow-op dump fires mid-loop:
        # the bench measures steady-state recording, not bundle writes.
        arm_recorder(
            tmp_path / "flight",
            slow_thresholds={"qa.ask": 3600.0, "engine.serve": 3600.0},
        )
        try:
            on = best_of(3)
        finally:
            disarm_recorder()
        results.update(off=off, on=on)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    off, on = results["off"], results["on"]
    overhead = (on / off - 1.0) * 100.0
    report(
        format_table(
            ["recorder", f"{NUM_ASKS} asks", "q/s"],
            [
                ["disarmed", f"{off:.3f}s", f"{NUM_ASKS / off:.0f}"],
                ["armed", f"{on:.3f}s", f"{NUM_ASKS / on:.0f}"],
            ],
            title=f"Flight-recorder overhead: {overhead:+.1f}%",
        )
    )
    if OUTPUT_DIR:
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        with open(
            os.path.join(OUTPUT_DIR, "BENCH_recorder_overhead.json"),
            "w", encoding="utf-8",
        ) as handle:
            json.dump(
                {
                    "benchmark": "recorder_overhead",
                    "smoke": SMOKE,
                    "disarmed_seconds": off,
                    "armed_seconds": on,
                    "overhead_pct": overhead,
                },
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")

    assert on <= off * MAX_RECORDER_OVERHEAD + RECORDER_SLACK_SECONDS, (
        f"armed recorder cost {overhead:+.1f}% over disarmed "
        f"({on:.3f}s vs {off:.3f}s); hot-path recording must stay ≤5%"
    )
