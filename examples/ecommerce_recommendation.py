#!/usr/bin/env python3
"""E-commerce recommendation with implicit purchase votes (Example 1).

The paper's Example 1: a shop recommends related products from a
co-purchase knowledge graph; when customers keep buying a product that
does *not* rank first in the recommendation list, those purchases are
implicit negative votes, and the graph should be optimized with them.

This script builds a category-structured co-purchase graph, simulates
shopping sessions in which customers' actual purchases follow hidden
true preferences, converts the purchase logs into votes, optimizes, and
measures how often the recommendation list's top item matches the
customers' preferred product before and after.

Run:  python examples/ecommerce_recommendation.py
"""

import numpy as np

from repro import solve_multi_vote
from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.serving import SimilarityParams
from repro.similarity.top_k import rank_answers
from repro.votes import Vote, VoteSet

NUM_PRODUCTS = 14
NUM_SESSIONS = 30
SEED = 23


def build_catalog(seed):
    """A co-purchase graph: categories of items with dense co-purchase links."""
    graph, categories = helpdesk_graph(
        num_topics=5, entities_per_topic=8, seed=seed
    )
    return graph, categories


def attach_products(kg, *, seed):
    """Products are answer nodes hanging off the items they bundle."""
    aug = AugmentedGraph(kg)
    items = sorted(kg.nodes())
    rng = np.random.default_rng(seed)
    for p in range(NUM_PRODUCTS):
        picks = rng.choice(len(items), size=3, replace=False)
        aug.add_answer(f"product_{p}", {items[int(p_)]: 1 for p_ in picks})
    return aug


def main() -> None:
    # The *true* co-purchase affinities drive customer behaviour; the
    # deployed graph was mined from noisy logs.
    true_kg, _ = build_catalog(SEED)
    deployed_kg = perturb_weights(true_kg, noise=1.6, seed=SEED + 1)

    aug_true = attach_products(true_kg, seed=SEED + 2)
    aug_deployed = attach_products(deployed_kg, seed=SEED + 2)
    items = sorted(true_kg.nodes())

    # Simulate shopping sessions: the customer browses a basket of items
    # (a query), sees recommendations from the deployed graph, and buys
    # the product their true affinity prefers.
    rng = np.random.default_rng(SEED + 3)
    votes = VoteSet()
    for s in range(NUM_SESSIONS):
        basket = rng.choice(len(items), size=2, replace=False)
        counts = {items[int(i)]: 1 for i in basket}
        qid = f"session_{s}"
        aug_true.add_query(qid, counts)
        aug_deployed.add_query(qid, counts)

        shown = rank_answers(aug_deployed, qid, params=SimilarityParams(k=6))
        shown_ids = tuple(answer for answer, _ in shown)
        truly_best = rank_answers(
            aug_true, qid, params=SimilarityParams(k=1), answers=shown_ids
        )[0][0]
        votes.add(Vote(query=qid, ranked_answers=shown_ids, best_answer=truly_best))

    implicit_negative = votes.num_negative
    print(
        f"{NUM_SESSIONS} shopping sessions -> {implicit_negative} implicit "
        f"negative votes (purchase != top recommendation), "
        f"{votes.num_positive} confirmations"
    )

    optimized, report = solve_multi_vote(aug_deployed, votes)
    print(
        f"optimized co-purchase graph: {report.num_constraints} constraints, "
        f"{len(report.changed_edges)} weights changed, "
        f"{report.elapsed:.2f}s"
    )

    # Before/after: how often does the top recommendation match the
    # product the customer actually prefers?
    def top1_accuracy(graph):
        hits = 0
        for s in range(NUM_SESSIONS):
            qid = f"session_{s}"
            shown = rank_answers(graph, qid, params=SimilarityParams(k=6))
            shown_ids = tuple(a for a, _ in shown)
            best = rank_answers(
                aug_true, qid, params=SimilarityParams(k=1), answers=shown_ids
            )[0][0]
            hits += shown_ids[0] == best
        return hits / NUM_SESSIONS

    before = top1_accuracy(aug_deployed)
    after = top1_accuracy(optimized)
    print(f"\ntop-1 recommendation accuracy: {before:.2f} -> {after:.2f}")
    if after > before:
        print("implicit purchase votes improved the recommendations.")


if __name__ == "__main__":
    main()
