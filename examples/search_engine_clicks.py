#!/usr/bin/env python3
"""Search engine with click-through feedback (Example 2).

The paper's Example 2: a search engine ranks pages by knowledge-graph
similarity; the user's click on a result is an implicit vote.  Clicks
are noisy — users sometimes click out of curiosity rather than
relevance — so this script also demonstrates the extreme-condition
feasibility filter (Section V) discarding impossible feedback before
it poisons the optimization.

Run:  python examples/search_engine_clicks.py
"""

import numpy as np

from repro import filter_feasible, solve_multi_vote, vote_omega_avg
from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.serving import SimilarityParams
from repro.similarity.top_k import rank_answers
from repro.votes import GroundTruthOracle, Vote, VoteSet

NUM_PAGES = 15
NUM_SEARCHES = 36
CLICK_NOISE = 0.25  # fraction of curiosity clicks
SEED = 31


def main() -> None:
    true_kg, _ = helpdesk_graph(num_topics=5, entities_per_topic=9, seed=SEED)
    deployed_kg = perturb_weights(true_kg, noise=1.4, seed=SEED + 1)
    terms = sorted(true_kg.nodes())

    def attach(kg):
        aug = AugmentedGraph(kg)
        rng = np.random.default_rng(SEED + 2)
        for p in range(NUM_PAGES):
            picks = rng.choice(len(terms), size=4, replace=False)
            aug.add_answer(f"page_{p}", {terms[int(i)]: 1 for i in picks})
        return aug

    aug_true = attach(true_kg)
    aug_deployed = attach(deployed_kg)
    oracle = GroundTruthOracle(aug_true)

    # Simulate searches: the user types a query (terms), the engine
    # ranks pages, the user clicks the truly relevant page — except for
    # curiosity clicks, which land on a random result.
    rng = np.random.default_rng(SEED + 3)
    votes = VoteSet()
    for s in range(NUM_SEARCHES):
        picks = rng.choice(len(terms), size=2, replace=False)
        counts = {terms[int(i)]: 1 for i in picks}
        qid = f"search_{s}"
        aug_true.add_query(qid, counts)
        aug_deployed.add_query(qid, counts)

        shown = tuple(a for a, _ in rank_answers(aug_deployed, qid, params=SimilarityParams(k=6)))
        if rng.uniform() < CLICK_NOISE:
            clicked = shown[int(rng.integers(0, len(shown)))]
        else:
            clicked = oracle.best_answer(qid, shown)
        votes.add(Vote(query=qid, ranked_answers=shown, best_answer=clicked))

    print(
        f"{NUM_SEARCHES} searches -> {votes.num_negative} negative clicks, "
        f"{votes.num_positive} top-result confirmations "
        f"(~{CLICK_NOISE:.0%} curiosity-click noise)"
    )

    # Feasibility filter: impossible click-votes are removed up front.
    kept, discarded = filter_feasible(aug_deployed, votes)
    print(
        f"feasibility judgment kept {len(kept)} votes, "
        f"discarded {len(discarded)} unsatisfiable ones"
    )

    optimized, report = solve_multi_vote(aug_deployed, votes)
    print(
        f"optimized: {report.num_constraints} constraints "
        f"({report.num_satisfied_constraints} satisfied), "
        f"{report.num_violated_deviations} conflicting constraints absorbed "
        f"by deviations, {report.elapsed:.2f}s"
    )

    omega = vote_omega_avg(optimized, votes)
    print(f"\nΩ_avg over all click-votes after optimization: {omega:+.3f}")

    # Quality on the clean subset (what actually matters to users).
    clean = VoteSet([v for v in votes if v.best_answer ==
                     oracle.best_answer(v.query, v.ranked_answers)])
    print(
        f"Ω_avg restricted to genuine-relevance clicks: "
        f"{vote_omega_avg(optimized, clean):+.3f}"
    )


if __name__ == "__main__":
    main()
