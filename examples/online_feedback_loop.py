#!/usr/bin/env python3
"""The deployed feedback loop: streaming votes, audit trail, significance.

Beyond the paper's batch experiments, a real deployment runs the
framework *continuously*: votes stream in, a batching policy decides
when to re-optimize, an audit log records (and can revert) every weight
change, and a significance test says whether the accumulated
improvement is real.  This example wires those pieces together:

1. a corrupted help-desk graph serves queries; an oracle-driven user
   population votes on the answers (stream of 32 votes);
2. an :class:`OnlineOptimizer` with a count policy optimizes every 8
   votes, escalating to split-and-merge for large batches;
3. every batch is recorded in an :class:`AuditLog`;
4. held-out reciprocal ranks before/after are compared with a paired
   bootstrap test;
5. the last batch is reverted through the audit log to demonstrate
   rollback.

Run:  python examples/online_feedback_loop.py
"""

import numpy as np

from repro.eval.harness import evaluate_test_set
from repro.eval.significance import paired_bootstrap
from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.optimize import OnlineOptimizer
from repro.optimize.audit import AuditLog
from repro.utils.tables import format_table
from repro.votes import CountPolicy, GroundTruthOracle, generate_votes_from_oracle

SEED = 53
NUM_STREAM = 32
NUM_TEST = 24


def attach(kg, total_queries, seed):
    aug = AugmentedGraph(kg)
    entities = sorted(kg.nodes())
    rng = np.random.default_rng(seed)
    for i in range(14):
        picks = rng.choice(len(entities), size=3, replace=False)
        aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
    for i in range(total_queries):
        picks = rng.choice(len(entities), size=2, replace=False)
        aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
    return aug


def main() -> None:
    truth_kg, _ = helpdesk_graph(num_topics=6, entities_per_topic=9, seed=SEED)
    deployed_kg = perturb_weights(truth_kg, noise=1.5, seed=SEED + 1)
    total = NUM_STREAM + NUM_TEST
    truth = attach(truth_kg, total, SEED + 2)
    deployed = attach(deployed_kg, total, SEED + 2)
    oracle = GroundTruthOracle(truth)

    stream_queries = [f"q{i}" for i in range(NUM_STREAM)]
    test_queries = [f"q{i}" for i in range(NUM_STREAM, total)]
    candidates = sorted(truth.answer_nodes, key=repr)
    test_pairs = {q: oracle.best_answer(q, candidates) for q in test_queries}

    baseline = evaluate_test_set(deployed, test_pairs)
    print(f"baseline held-out MRR: {baseline.mrr:.3f}")

    # --- stream votes through the online optimizer --------------------
    votes = generate_votes_from_oracle(
        deployed, oracle, queries=stream_queries, k=8, seed=SEED + 3
    )
    online = OnlineOptimizer(
        deployed,
        policy=CountPolicy(batch_size=8),
        split_merge_threshold=12,
        options={"feasibility_filter": False},
    )
    audit = AuditLog()
    differ = WeightDiffer(deployed)
    for vote in votes:
        outcome = online.submit(vote)
        if outcome is not None:
            audit.record(
                differ.changes(),
                strategy=outcome.strategy,
                num_votes=outcome.num_votes,
            )
            print(
                f"batch {outcome.batch_index}: {outcome.num_votes} votes "
                f"({outcome.num_negative} negative) via {outcome.strategy}, "
                f"Ω_avg={outcome.omega_avg:+.2f}, "
                f"{outcome.changed_edges} edges changed, "
                f"{outcome.elapsed:.2f}s"
            )
    final = online.flush()
    if final is not None:
        audit.record(differ.changes(), strategy=final.strategy,
                     num_votes=final.num_votes)
        print(
            f"batch {final.batch_index}: flush of {final.num_votes} votes, "
            f"Ω_avg={final.omega_avg:+.2f}"
        )

    # --- measure the improvement with a significance test -------------
    after = evaluate_test_set(deployed, test_pairs)
    rr_before = [1.0 / r for r in baseline.ranks]
    rr_after = [1.0 / r for r in after.ranks]
    test = paired_bootstrap(rr_before, rr_after, seed=SEED + 4)
    print()
    print(
        format_table(
            ["", "MRR", "H@1", "H@3"],
            [
                ["before", f"{baseline.mrr:.3f}", f"{baseline.hits[1]:.2f}",
                 f"{baseline.hits[3]:.2f}"],
                ["after", f"{after.mrr:.3f}", f"{after.hits[1]:.2f}",
                 f"{after.hits[3]:.2f}"],
            ],
            title="held-out quality before/after the vote stream",
        )
    )
    print(
        f"paired bootstrap: Δ(reciprocal rank)={test.mean_difference:+.3f}, "
        f"p={test.p_value:.3f} "
        f"({'significant' if test.significant else 'not significant'}; "
        f"{test.wins} wins / {test.losses} losses / {test.ties} ties)"
    )

    # --- roll back the last batch through the audit log ---------------
    print(
        f"\naudit log: {len(audit)} passes recorded, total weight drift "
        f"{audit.total_drift():.3f}"
    )
    writes = audit.revert_last(deployed)
    reverted = evaluate_test_set(deployed, test_pairs)
    print(
        f"reverted the last batch ({writes} edge writes): held-out MRR "
        f"{after.mrr:.3f} -> {reverted.mrr:.3f}"
    )


class WeightDiffer:
    """Snapshot-and-diff helper feeding the audit log.

    The batch drivers return ``changed_edges`` per call; the online
    wrapper exposes outcomes instead, so this helper reconstructs the
    ``{(head, tail): (before, after)}`` mapping the audit log expects by
    diffing weight snapshots taken between batches.  The initial
    snapshot is taken at construction — before any optimization runs —
    so the first batch's changes are captured too.
    """

    def __init__(self, aug) -> None:
        self._aug = aug
        self._previous = {e.key: e.weight for e in aug.kg_edges()}

    def changes(self) -> dict:
        current = {e.key: e.weight for e in self._aug.kg_edges()}
        diff = {
            edge: (before, current[edge])
            for edge, before in self._previous.items()
            if abs(current[edge] - before) > 1e-9
        }
        self._previous = current
        return diff


if __name__ == "__main__":
    main()
