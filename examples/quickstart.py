#!/usr/bin/env python3
"""Quickstart: the ask → vote → optimize loop in ~40 lines.

Builds a synthetic help-desk corpus, constructs a knowledge graph from
document co-occurrences, answers a question, casts a negative vote for
a lower-ranked answer, optimizes the graph, and shows the re-ranking —
the end-to-end workflow of Fig. 1 in the paper.

Run:  python examples/quickstart.py
"""

from repro import (
    QASystem,
    SimilarityParams,
    build_knowledge_graph,
    generate_helpdesk_corpus,
)


def main() -> None:
    # 1. A corpus of HELP documents and a knowledge graph built from it.
    corpus = generate_helpdesk_corpus(seed=0)
    kg = build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)
    print(f"knowledge graph: {kg.num_nodes} entities, {kg.num_edges} relations")

    # 2. A Q&A system with the documents attached as answer nodes.
    system = QASystem(kg, corpus.vocabulary, params=SimilarityParams(k=8))
    system.add_documents(corpus.document_texts())

    # 3. Ask a question: the system returns a ranked top-k list.
    question = corpus.train_pairs[0]
    answers = system.ask(question.text, question_id="demo")
    print(f"\nquestion: {question.text!r}")
    print("initial ranking:")
    for rank, (doc, score) in enumerate(answers, start=1):
        print(f"  {rank}. {doc:<22} similarity={score:.5f}")

    # 4. The user finds a lower-ranked document most helpful and votes.
    voted = answers[min(2, len(answers) - 1)][0]
    system.vote("demo", voted)
    print(f"\nuser votes best answer: {voted} (a negative vote)")

    # 5. Optimize the edge weights against the collected votes.
    report = system.optimize(strategy="multi", feasibility_filter=False)
    print(
        f"optimized: {report.num_constraints} constraints, "
        f"{report.num_satisfied_constraints} satisfied, "
        f"{len(report.changed_edges)} edge weights changed "
        f"in {report.elapsed:.2f}s"
    )

    # 6. Ask again: the voted answer has moved up.
    reranked = system.ask(question.text, question_id="demo-after")
    print("\nre-ranking after optimization:")
    for rank, (doc, score) in enumerate(reranked, start=1):
        marker = "  <-- voted" if doc == voted else ""
        print(f"  {rank}. {doc:<22} similarity={score:.5f}{marker}")


if __name__ == "__main__":
    main()
