#!/usr/bin/env python3
"""Scaling the multi-vote solution with split-and-merge (Section VI).

Generates synthetic votes on a KONECT-style graph (the Fig. 6 workload,
scaled to finish quickly), then compares the basic multi-vote solution
against the split-and-merge strategy and its simulated 4-worker
distributed deployment — elapsed time and optimization quality Ω_avg
side by side.

Run:  python examples/scalability_split_merge.py
"""

import numpy as np

from repro import generate_synthetic_votes, solve_multi_vote, solve_split_merge
from repro.eval.harness import vote_omega_avg
from repro.graph import AugmentedGraph, konect_like
from repro.utils.tables import format_table

VOTE_COUNTS = (5, 10, 20)
SEED = 47


def build_workload(num_votes, seed=SEED):
    """A Twitter-like graph with queries/answers attached at random."""
    kg = konect_like("twitter", scale=0.02, seed=seed)
    aug = AugmentedGraph(kg)
    nodes = sorted(kg.nodes())
    rng = np.random.default_rng(seed + 1)
    for a in range(40):
        picks = rng.choice(len(nodes), size=3, replace=False)
        aug.add_answer(f"ans{a}", {nodes[int(i)]: 1 for i in picks})
    for q in range(num_votes):
        picks = rng.choice(len(nodes), size=2, replace=False)
        aug.add_query(f"qry{q}", {nodes[int(i)]: 1 for i in picks})
    votes = generate_synthetic_votes(
        aug, k=8, negative_fraction=0.5, avg_negative_position=4, seed=seed + 2
    )
    return aug, votes


def main() -> None:
    rows = []
    for num_votes in VOTE_COUNTS:
        aug, votes = build_workload(num_votes)

        _, multi = solve_multi_vote(aug, votes)
        optimized_multi, _ = solve_multi_vote(aug, votes)

        optimized_sm, sm = solve_split_merge(aug, votes)

        omega_multi = vote_omega_avg(optimized_multi, votes)
        omega_sm = vote_omega_avg(optimized_sm, votes)
        distributed = sm.distributed_makespan(num_workers=4)

        rows.append(
            [
                num_votes,
                f"{multi.elapsed:.2f}s",
                f"{sm.elapsed:.2f}s",
                f"{distributed:.2f}s",
                sm.num_clusters,
                f"{omega_multi:+.2f}",
                f"{omega_sm:+.2f}",
            ]
        )
        print(
            f"votes={num_votes}: multi {multi.elapsed:.2f}s vs "
            f"S-M {sm.elapsed:.2f}s "
            f"({sm.num_clusters} clusters, avg {sm.average_cluster_size:.1f} votes)"
        )

    print()
    print(
        format_table(
            [
                "votes",
                "Multi-V time",
                "S-M time",
                "Distributed S-M (4w)",
                "clusters",
                "Ω_avg multi",
                "Ω_avg S-M",
            ],
            rows,
            title="Split-and-merge scaling (cf. paper Fig. 6, scaled down)",
        )
    )


if __name__ == "__main__":
    main()
