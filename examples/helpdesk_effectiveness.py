#!/usr/bin/env python3
"""Effectiveness study on a corrupted help-desk knowledge graph.

The scenario of the paper's Section VII-B, on synthetic data: a
ground-truth knowledge graph generates user judgments; the deployed
graph is a *corrupted* copy (weight noise — the "source data errors"
the paper motivates with); users vote on the deployed system's answers;
optimization should recover ranking quality.  Compares the original
graph, the single-vote solution, and the multi-vote solution on a
held-out test set — the Table IV / Table V / Fig. 5 experiment in
miniature.

Run:  python examples/helpdesk_effectiveness.py
"""

import numpy as np

from repro import (
    GroundTruthOracle,
    generate_votes_from_oracle,
    solve_multi_vote,
    solve_single_votes,
    vote_omega_avg,
)
from repro.eval.harness import evaluate_test_set
from repro.graph import AugmentedGraph, helpdesk_graph
from repro.graph.generators import perturb_weights
from repro.utils.tables import format_table

NUM_ANSWERS = 16
NUM_VOTE_QUERIES = 24
NUM_TEST_QUERIES = 30
NOISE = 1.5
SEED = 11


def attach_queries_answers(kg, *, num_queries, num_answers, seed, prefix="q"):
    """Attach random queries/answers consistently across graph variants."""
    aug = AugmentedGraph(kg)
    entities = sorted(kg.nodes())
    rng = np.random.default_rng(seed)
    for i in range(num_answers):
        picks = rng.choice(len(entities), size=3, replace=False)
        aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
    for i in range(num_queries):
        picks = rng.choice(len(entities), size=2, replace=False)
        aug.add_query(f"{prefix}{i}", {entities[int(p)]: 1 for p in picks})
    return aug


def main() -> None:
    truth_kg, _topics = helpdesk_graph(num_topics=6, entities_per_topic=10, seed=SEED)
    corrupted_kg = perturb_weights(truth_kg, noise=NOISE, seed=SEED + 1)

    total_queries = NUM_VOTE_QUERIES + NUM_TEST_QUERIES
    aug_truth = attach_queries_answers(
        truth_kg, num_queries=total_queries, num_answers=NUM_ANSWERS, seed=SEED + 2
    )
    aug_deployed = attach_queries_answers(
        corrupted_kg, num_queries=total_queries, num_answers=NUM_ANSWERS, seed=SEED + 2
    )

    vote_queries = [f"q{i}" for i in range(NUM_VOTE_QUERIES)]
    test_queries = [f"q{i}" for i in range(NUM_VOTE_QUERIES, total_queries)]

    # Users judge the deployed system's answers against the ground truth.
    oracle = GroundTruthOracle(aug_truth)
    votes = generate_votes_from_oracle(
        aug_deployed, oracle, queries=vote_queries, k=8, seed=SEED + 3
    )
    print(
        f"collected {len(votes)} votes: {votes.num_negative} negative, "
        f"{votes.num_positive} positive"
    )

    # Held-out test pairs: the truly best answer for each test query.
    candidates = sorted(aug_truth.answer_nodes, key=repr)
    test_pairs = {
        q: oracle.best_answer(q, candidates) for q in test_queries
    }

    single, single_report = solve_single_votes(aug_deployed, votes)
    multi, multi_report = solve_multi_vote(aug_deployed, votes)
    print(
        f"single-vote: solved {single_report.num_solved} SGPs in "
        f"{single_report.elapsed:.2f}s | multi-vote: "
        f"{multi_report.num_constraints} constraints in {multi_report.elapsed:.2f}s"
    )

    rows = []
    for label, graph in (
        ("Original graph", aug_deployed),
        ("Single-vote solution", single),
        ("Multi-vote solution", multi),
        ("Ground truth (upper bound)", aug_truth),
    ):
        result = evaluate_test_set(graph, test_pairs, k_values=(1, 3, 5, 10))
        omega = (
            "-" if graph is aug_deployed or graph is aug_truth
            else f"{vote_omega_avg(graph, votes):+.3f}"
        )
        rows.append(
            [
                label,
                f"{result.r_avg:.2f}",
                omega,
                f"{result.mrr:.3f}",
                f"{result.hits[1]:.2f}",
                f"{result.hits[3]:.2f}",
                f"{result.hits[10]:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["Graph", "R_avg", "Omega_avg", "MRR", "H@1", "H@3", "H@10"],
            rows,
            title="Held-out ranking quality (cf. paper Tables IV & V)",
        )
    )


if __name__ == "__main__":
    main()
