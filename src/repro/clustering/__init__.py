"""Vote clustering for the split-and-merge strategy (Section VI).

The split step groups votes by the overlap of the edge sets their
similarity evaluations touch (Eq. 20), then clusters with Affinity
Propagation [Frey & Dueck 2007], which picks the number of clusters
automatically — exactly the property the paper relies on ("the AP
algorithm can automatically find the optimal number of clusters").
"""

from repro.clustering.similarity import vote_similarity, vote_similarity_matrix
from repro.clustering.affinity_propagation import affinity_propagation, cluster_votes

__all__ = [
    "vote_similarity",
    "vote_similarity_matrix",
    "affinity_propagation",
    "cluster_votes",
]
