"""Vote similarity (Eq. 20): Jaccard overlap of the votes' edge sets."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graph.augmented import AugmentedGraph
from repro.paths.edgesets import vote_edge_set
from repro.similarity.inverse_pdistance import DEFAULT_MAX_LENGTH
from repro.votes.types import Vote, VoteSet

EdgeSet = "set[tuple]"


def vote_similarity(edges_a: set, edges_b: set) -> float:
    """``Sim(t_i, t_j) = |E(t_i) ∩ E(t_j)| / |E(t_i) ∪ E(t_j)|``.

    Two votes with no edges at all are vacuously identical (1.0); a
    single empty side gives 0.0.
    """
    if not edges_a and not edges_b:
        return 1.0
    union = len(edges_a | edges_b)
    if union == 0:
        return 1.0
    return len(edges_a & edges_b) / union


def vote_edge_sets(
    aug: AugmentedGraph,
    votes: "VoteSet | Sequence[Vote]",
    *,
    max_length: int = DEFAULT_MAX_LENGTH,
) -> list[set]:
    """``E(t)`` for every vote, in vote order.

    A vote's edge set is the union over its shown answers of the edges
    on ≤ L walks from its query (see :mod:`repro.paths.edgesets`).
    """
    return [
        vote_edge_set(aug.graph, vote.query, vote.ranked_answers, max_length)
        for vote in votes
    ]


def vote_similarity_matrix(edge_sets: Sequence[set]) -> np.ndarray:
    """Symmetric matrix of pairwise vote similarities.

    The diagonal is left at 1.0; Affinity Propagation overwrites it with
    the preference value anyway.
    """
    n = len(edge_sets)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            sim = vote_similarity(edge_sets[i], edge_sets[j])
            matrix[i, j] = sim
            matrix[j, i] = sim
    return matrix
