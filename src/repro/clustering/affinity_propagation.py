"""Affinity Propagation clustering, implemented from scratch.

Frey & Dueck, "Clustering by passing messages between data points",
Science 2007 — the algorithm the paper uses for the split step
(Section VI-A).  AP exchanges two messages between points until a set of
*exemplars* emerges:

- responsibility ``r(i, k)``: how strongly point ``i`` favours ``k`` as
  its exemplar, relative to other candidates;
- availability ``a(i, k)``: how appropriate it would be for ``i`` to
  choose ``k``, given the support ``k`` has gathered.

The number of clusters is not a parameter — it falls out of the
*preference* values on the similarity diagonal.  The paper "selects the
median of the similarities between votes as the classification
criterion", i.e. the standard median-preference setting, which is the
default here.

No third-party implementation is available offline (no scikit-learn),
so this is a complete, tested implementation with damping and
convergence detection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def affinity_propagation(
    similarity: np.ndarray,
    *,
    preference: "float | str" = "median",
    damping: float = 0.7,
    max_iter: int = 400,
    convergence_iter: int = 30,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster by affinity propagation.

    Parameters
    ----------
    similarity:
        Square symmetric matrix ``s(i, k)``; larger is more similar.
    preference:
        Diagonal value controlling cluster granularity: ``"median"``
        (paper's choice), ``"min"`` (fewer clusters), or an explicit
        float.
    damping:
        Message damping factor in ``[0.5, 1)``; higher is more stable
        but slower.
    max_iter, convergence_iter:
        Stop after ``max_iter`` sweeps, or earlier once the exemplar set
        has been stable for ``convergence_iter`` consecutive sweeps.

    Returns
    -------
    (labels, exemplars):
        ``labels[i]`` is the index into ``exemplars`` of point ``i``'s
        cluster; ``exemplars`` lists the exemplar point indices.

    Raises
    ------
    ClusteringError
        For malformed input.  A run that fails to produce any exemplar
        (possible on adversarial inputs) falls back to a single cluster
        exemplified by the point with the largest summed similarity.
    """
    matrix = np.asarray(similarity, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ClusteringError(f"similarity must be square, got shape {matrix.shape}")
    if not 0.5 <= damping < 1.0:
        raise ClusteringError(f"damping must be in [0.5, 1), got {damping}")
    n = matrix.shape[0]
    if n == 0:
        raise ClusteringError("cannot cluster zero points")
    if n == 1:
        return np.zeros(1, dtype=int), np.zeros(1, dtype=int)

    s = matrix.copy()
    off_diagonal = s[~np.eye(n, dtype=bool)]
    if preference == "median":
        pref_value = float(np.median(off_diagonal))
    elif preference == "min":
        pref_value = float(off_diagonal.min())
    else:
        pref_value = float(preference)
    np.fill_diagonal(s, pref_value)

    # Tiny deterministic jitter breaks the degenerate symmetric ties AP
    # is known to oscillate on (same trick as the reference code).
    jitter_rng = np.random.default_rng(0)
    s = s + 1e-12 * jitter_rng.standard_normal((n, n)) * (np.abs(s).max() + 1.0)

    responsibility = np.zeros((n, n))
    availability = np.zeros((n, n))
    stable_rounds = 0
    previous_exemplars: "frozenset[int] | None" = None

    for _ in range(max_iter):
        # Responsibility update.
        combined = availability + s
        first_idx = np.argmax(combined, axis=1)
        first_val = combined[np.arange(n), first_idx]
        combined[np.arange(n), first_idx] = -np.inf
        second_val = combined.max(axis=1)
        new_r = s - first_val[:, None]
        new_r[np.arange(n), first_idx] = (
            s[np.arange(n), first_idx] - second_val
        )
        responsibility = damping * responsibility + (1 - damping) * new_r

        # Availability update.
        clipped = np.maximum(responsibility, 0.0)
        np.fill_diagonal(clipped, responsibility.diagonal())
        column_sums = clipped.sum(axis=0)
        new_a = column_sums[None, :] - clipped
        diagonal = new_a.diagonal().copy()
        new_a = np.minimum(new_a, 0.0)
        np.fill_diagonal(new_a, diagonal)
        availability = damping * availability + (1 - damping) * new_a

        exemplars = frozenset(
            int(i)
            for i in range(n)
            if responsibility[i, i] + availability[i, i] > 0
        )
        if exemplars and exemplars == previous_exemplars:
            stable_rounds += 1
            if stable_rounds >= convergence_iter:
                break
        else:
            stable_rounds = 0
        previous_exemplars = exemplars

    exemplar_idx = sorted(previous_exemplars or [])
    if not exemplar_idx:
        # Degenerate fallback: one cluster around the most central point.
        exemplar_idx = [int(np.argmax(matrix.sum(axis=0)))]
    exemplar_arr = np.array(exemplar_idx, dtype=int)

    labels = np.argmax(s[:, exemplar_arr], axis=1)
    labels[exemplar_arr] = np.arange(len(exemplar_arr))
    # Drop exemplars that attracted nobody (can happen after the argmax
    # reassignment) and re-index labels densely.
    used = np.unique(labels)
    remap = {old: new for new, old in enumerate(used)}
    labels = np.array([remap[int(label)] for label in labels], dtype=int)
    exemplar_arr = exemplar_arr[used]
    return labels, exemplar_arr


def cluster_votes(
    similarity: np.ndarray,
    *,
    preference: "float | str" = "median",
    damping: float = 0.7,
    max_iter: int = 400,
) -> list[list[int]]:
    """Cluster votes and return the member indices of each cluster.

    A thin wrapper over :func:`affinity_propagation` that returns
    clusters as index lists (the shape the split-and-merge driver
    consumes).  Clusters are ordered by exemplar index; members keep
    their original order.
    """
    labels, exemplars = affinity_propagation(
        similarity, preference=preference, damping=damping, max_iter=max_iter
    )
    clusters: list[list[int]] = [[] for _ in range(len(exemplars))]
    for index, label in enumerate(labels):
        clusters[int(label)].append(index)
    return [cluster for cluster in clusters if cluster]
