"""The paper's evaluation metrics.

- ``Ω`` / ``Ω_avg`` (Definition 3 / Eq. 21): summed / averaged rank
  improvement of the voted-best answers between the original and the
  optimized graph;
- ``MRR`` and ``MAP``: standard IR measures over a test set (Fig. 5);
- ``H@k``: fraction of test questions whose best answer ranks no lower
  than ``k`` (Table V);
- ``R_avg`` / ``P_avg``: average rank of the best answers and its
  percentage-wise improvement (Table IV);
- ``PD(L_i, L_j)`` (Eq. 22): relative growth of summed top-k similarity
  between two pruning thresholds (Fig. 7a).

All ranking inputs are 1-based ranks; every function validates its
inputs because a silently mis-shaped metric is worse than an exception.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import EvaluationError


def _check_ranks(name: str, ranks: Sequence[int]) -> list[int]:
    out = []
    for rank in ranks:
        if int(rank) != rank or rank < 1:
            raise EvaluationError(f"{name}: ranks must be integers ≥ 1, got {rank!r}")
        out.append(int(rank))
    return out


def rank_changes(
    ranks_before: Sequence[int], ranks_after: Sequence[int]
) -> list[int]:
    """Per-vote rank improvements ``rank_t − rank'_t`` (positive = better)."""
    before = _check_ranks("ranks_before", ranks_before)
    after = _check_ranks("ranks_after", ranks_after)
    if len(before) != len(after):
        raise EvaluationError(
            f"rank lists differ in length: {len(before)} vs {len(after)}"
        )
    return [b - a for b, a in zip(before, after)]


def omega(ranks_before: Sequence[int], ranks_after: Sequence[int]) -> int:
    """``Ω(G*) = Σ_t (rank_t − rank'_t)`` (Definition 3)."""
    return sum(rank_changes(ranks_before, ranks_after))


def omega_avg(ranks_before: Sequence[int], ranks_after: Sequence[int]) -> float:
    """``Ω_avg`` (Eq. 21): Ω divided by the number of votes."""
    changes = rank_changes(ranks_before, ranks_after)
    if not changes:
        raise EvaluationError("omega_avg of zero votes is undefined")
    return sum(changes) / len(changes)


def ranking_improvement(
    ranks_before: Sequence[int], ranks_after: Sequence[int]
) -> float:
    """``P_avg``: mean per-query relative rank improvement.

    ``mean((rank_t − rank'_t) / rank_t)`` — positive when answers moved
    up on average (Table IV reports +18.82 % for the multi-vote
    solution and −0.84 % for the single-vote one).
    """
    before = _check_ranks("ranks_before", ranks_before)
    after = _check_ranks("ranks_after", ranks_after)
    if len(before) != len(after) or not before:
        raise EvaluationError("need equal-length, non-empty rank lists")
    return sum((b - a) / b for b, a in zip(before, after)) / len(before)


def mean_reciprocal_rank(ranks: Sequence[int]) -> float:
    """``MRR = mean(1 / rank)`` of the correct answers."""
    checked = _check_ranks("ranks", ranks)
    if not checked:
        raise EvaluationError("MRR of zero queries is undefined")
    return sum(1.0 / r for r in checked) / len(checked)


def average_precision(
    ranked: Sequence, relevant: "set | frozenset"
) -> float:
    """Average precision of one ranked list against a relevant set.

    ``AP = (1/|relevant∩ranked|) Σ_{relevant hits} precision@rank``.
    With a single relevant answer this reduces to ``1/rank`` — the
    paper's test set assigns one best HELP document per question, so
    its MAP tracks MRR closely, as Fig. 5 shows.
    """
    if not relevant:
        raise EvaluationError("average precision needs a non-empty relevant set")
    hits = 0
    precision_sum = 0.0
    for position, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            precision_sum += hits / position
    if hits == 0:
        return 0.0
    return precision_sum / hits


def mean_average_precision(
    ranked_lists: Sequence[Sequence], relevant_sets: Sequence
) -> float:
    """MAP over a test set: mean of per-query average precision."""
    if len(ranked_lists) != len(relevant_sets) or not ranked_lists:
        raise EvaluationError("need equal-length, non-empty list collections")
    total = sum(
        average_precision(ranked, set(relevant))
        for ranked, relevant in zip(ranked_lists, relevant_sets)
    )
    return total / len(ranked_lists)


def hits_at_k(ranks: Sequence[int], k: int) -> float:
    """``H@k``: fraction of queries whose correct answer ranks ≤ k."""
    checked = _check_ranks("ranks", ranks)
    if not checked:
        raise EvaluationError("H@k of zero queries is undefined")
    if k < 1:
        raise EvaluationError(f"k must be ≥ 1, got {k}")
    return sum(1 for r in checked if r <= k) / len(checked)


def percentage_difference(sum_li: float, sum_lj: float) -> float:
    """``PD(L_i, L_j) = (Sum_{L_j} − Sum_{L_i}) / Sum_{L_i}`` (Eq. 22)."""
    if sum_li <= 0:
        raise EvaluationError(
            f"PD is undefined for non-positive base similarity {sum_li}"
        )
    return (sum_lj - sum_li) / sum_li


def average_rank(ranks: Sequence[int]) -> float:
    """``R_avg``: the mean rank of the correct answers (Table IV)."""
    checked = _check_ranks("ranks", ranks)
    if not checked:
        raise EvaluationError("average rank of zero queries is undefined")
    return sum(checked) / len(checked)
