"""Measurement substrate: the paper's metrics and experiment harness."""

from repro.eval.metrics import (
    average_precision,
    hits_at_k,
    mean_average_precision,
    mean_reciprocal_rank,
    omega,
    omega_avg,
    percentage_difference,
    rank_changes,
    ranking_improvement,
)
from repro.eval.harness import EvaluationResult, evaluate_test_set, rerank_vote
from repro.eval.significance import BootstrapResult, paired_bootstrap, sign_test

__all__ = [
    "omega",
    "omega_avg",
    "rank_changes",
    "ranking_improvement",
    "mean_reciprocal_rank",
    "average_precision",
    "mean_average_precision",
    "hits_at_k",
    "percentage_difference",
    "EvaluationResult",
    "evaluate_test_set",
    "rerank_vote",
    "BootstrapResult",
    "paired_bootstrap",
    "sign_test",
]
