"""Statistical significance for ranker comparisons.

The paper reports point estimates (single runs on one vote sample); a
production evaluation should also say whether "multi-vote beats the
original graph" survives resampling.  This module provides the two
standard tools for paired per-query metrics:

- :func:`paired_bootstrap` — the paired bootstrap test over per-query
  score differences (e.g. reciprocal ranks), reporting the probability
  that system B beats system A under resampling of the query set;
- :func:`sign_test` — the exact binomial sign test on win/loss counts,
  assumption-free and appropriate for small test sets like the paper's
  100 questions.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from math import comb

import numpy as np

from repro.errors import EvaluationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison."""

    mean_difference: float
    p_value: float
    wins: int
    losses: int
    ties: int
    num_samples: int

    @property
    def significant(self) -> bool:
        """Whether B > A at the 0.05 level (one-sided)."""
        return self.p_value < 0.05


def paired_bootstrap(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    *,
    num_samples: int = 10_000,
    seed: "int | None" = None,
) -> BootstrapResult:
    """One-sided paired bootstrap: is system B better than system A?

    Parameters
    ----------
    scores_a, scores_b:
        Per-query scores of the two systems (higher is better), aligned
        by query — e.g. reciprocal ranks of the correct answer.
    num_samples:
        Bootstrap resamples of the query set.
    seed:
        Reproducibility.

    Returns
    -------
    BootstrapResult
        ``p_value`` is the fraction of resamples where B does *not*
        beat A (so small = significant evidence for B).
    """
    a = np.asarray(scores_a, dtype=float)
    b = np.asarray(scores_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise EvaluationError("need equal-length, non-empty score vectors")
    if num_samples < 1:
        raise EvaluationError(f"num_samples must be ≥ 1, got {num_samples}")
    rng = ensure_rng(seed)
    differences = b - a
    n = differences.size
    indices = rng.integers(0, n, size=(num_samples, n))
    resampled_means = differences[indices].mean(axis=1)
    not_better = float(np.mean(resampled_means <= 0.0))
    return BootstrapResult(
        mean_difference=float(differences.mean()),
        p_value=not_better,
        wins=int((differences > 0).sum()),
        losses=int((differences < 0).sum()),
        ties=int((differences == 0).sum()),
        num_samples=num_samples,
    )


def sign_test(wins: int, losses: int) -> float:
    """Exact one-sided binomial sign test p-value.

    Probability of observing at least ``wins`` successes out of
    ``wins + losses`` fair coin flips — ties are excluded, per the
    standard treatment.
    """
    if wins < 0 or losses < 0:
        raise EvaluationError("wins and losses must be non-negative")
    n = wins + losses
    if n == 0:
        return 1.0
    total = sum(comb(n, k) for k in range(wins, n + 1))
    return total / 2.0**n
