"""Experiment harness: evaluating a graph against votes and test sets."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.eval.metrics import (
    average_rank,
    hits_at_k,
    mean_average_precision,
    mean_reciprocal_rank,
    omega_avg,
)
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import Node
from repro.obs import trace_span
from repro.serving.params import SimilarityParams
from repro.similarity.backend import resolve_backend
from repro.similarity.top_k import rank_position, scores_to_ranked_list
from repro.votes.types import Vote, VoteSet


def _walk_params(params, max_length, restart_prob) -> SimilarityParams:
    """Accept either ``params`` or the bare pair (not deprecated here)."""
    if params is not None:
        if max_length is not None or restart_prob is not None:
            raise TypeError(
                "pass either params or max_length/restart_prob, not both"
            )
        return params
    changes = {}
    if max_length is not None:
        changes["max_length"] = max_length
    if restart_prob is not None:
        changes["restart_prob"] = restart_prob
    return SimilarityParams(**changes)


def rerank_vote(
    aug: AugmentedGraph,
    vote: Vote,
    *,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    params: "SimilarityParams | None" = None,
    engine=None,
) -> int:
    """The rank of a vote's best answer under the *current* graph.

    The re-ranking is computed over the vote's shown answer list (the
    same candidate set the user judged), matching Definition 3's
    ``rank'_t``.  With ``engine``
    (:class:`~repro.serving.engine.SimilarityEngine`), scores come from
    the cached incremental matrix instead of a cold rebuild.
    """
    params = _walk_params(params, max_length, restart_prob)
    if engine is not None:
        scores = engine.scores_for_query(
            vote.query, vote.ranked_answers, params=params
        )
    else:
        scores = resolve_backend(params).scores(
            aug.graph, vote.query, vote.ranked_answers, params=params
        )
    ranked = scores_to_ranked_list(scores)
    return rank_position(ranked, vote.best_answer)


def vote_omega_avg(
    aug_after: AugmentedGraph,
    votes: "VoteSet | Sequence[Vote]",
    *,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    params: "SimilarityParams | None" = None,
    engine=None,
) -> float:
    """``Ω_avg`` of a vote set under the optimized graph (Eq. 21).

    ``rank_t`` comes from each vote's recorded shown list (the ranking
    at vote time); ``rank'_t`` is recomputed on ``aug_after``.
    """
    params = _walk_params(params, max_length, restart_prob)
    vote_list = list(votes)
    if not vote_list:
        raise EvaluationError("Ω_avg of zero votes is undefined")
    before = [v.best_rank for v in vote_list]
    after = [
        rerank_vote(aug_after, v, params=params, engine=engine)
        for v in vote_list
    ]
    return omega_avg(before, after)


@dataclass
class EvaluationResult:
    """Ranking-quality metrics of one graph on one test set."""

    ranks: list[int] = field(default_factory=list)
    r_avg: float = 0.0
    mrr: float = 0.0
    map_score: float = 0.0
    hits: dict[int, float] = field(default_factory=dict)

    def as_row(self, k_values: Sequence[int]) -> list[float]:
        """``[H@k...]`` row for the Table V renderer."""
        return [self.hits[k] for k in k_values]


def evaluate_test_set(
    aug: AugmentedGraph,
    test_pairs: Mapping[Node, Node],
    *,
    k_values: Sequence[int] = (1, 3, 5, 10),
    candidates: "Sequence[Node] | None" = None,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    params: "SimilarityParams | None" = None,
    engine=None,
) -> EvaluationResult:
    """Rank every test query and compute the paper's quality metrics.

    Parameters
    ----------
    aug:
        The graph under evaluation; the test queries must already be
        attached as query nodes.
    test_pairs:
        ``query node -> ground-truth best answer node`` (the expert
        question–document pairs of Section VII-A1).
    k_values:
        The H@k cutoffs (Table V uses 1, 3, 5, 10).
    candidates:
        The candidate answer pool; all answer nodes by default.
    params:
        Similarity parameters
        (:class:`~repro.serving.params.SimilarityParams`); the bare
        ``max_length``/``restart_prob`` keywords also still work.
    engine:
        Optional :class:`~repro.serving.engine.SimilarityEngine` bound to
        ``aug``; scoring then reuses its cached adjacency matrix.

    Returns
    -------
    EvaluationResult
        With ``R_avg``, MRR, MAP (single-relevant, so AP = 1/rank), and
        ``H@k`` for each requested ``k``.
    """
    params = _walk_params(params, max_length, restart_prob)
    if not test_pairs:
        raise EvaluationError("empty test set")
    pool = (
        list(candidates)
        if candidates is not None
        else sorted(aug.answer_nodes, key=repr)
    )
    for query, best in test_pairs.items():
        if best not in pool:
            raise EvaluationError(
                f"ground-truth answer {best!r} for query {query!r} is not a candidate"
            )
    with trace_span(
        "eval.test_set",
        num_queries=len(test_pairs),
        num_candidates=len(pool),
    ) as span:
        # One stacked propagation scores every test query at once.
        if engine is not None:
            all_scores = engine.score_batch(
                list(test_pairs), pool, params=params
            )
        else:
            all_scores = resolve_backend(params).scores_batch(
                aug.graph, list(test_pairs), pool, params=params
            )
        ranks: list[int] = []
        ranked_lists: list[list[Node]] = []
        relevant_sets: list[set[Node]] = []
        for query, best in test_pairs.items():
            ranked = [
                answer
                for answer, _ in scores_to_ranked_list(all_scores[query])
            ]
            ranks.append(rank_position(ranked, best))
            ranked_lists.append(ranked)
            relevant_sets.append({best})
        result = EvaluationResult(
            ranks=ranks,
            r_avg=average_rank(ranks),
            mrr=mean_reciprocal_rank(ranks),
            map_score=mean_average_precision(ranked_lists, relevant_sets),
            hits={k: hits_at_k(ranks, k) for k in k_values},
        )
        span.set_attrs(r_avg=round(result.r_avg, 4), mrr=round(result.mrr, 4))
    return result
