"""Dataset registry (Table II).

The paper evaluates on one knowledge graph with real votes (Taobao) and
three KONECT graphs with synthetic votes (Twitter, Digg, Gnutella),
plus random graphs for parameter studies.  This registry records the
published statistics and provides loaders: each loader generates a
degree-matched random stand-in (see DESIGN.md's substitution table);
users who have the original KONECT files can load them with
:func:`repro.graph.io.load_edge_list` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import WeightedDiGraph
from repro.graph.generators import KONECT_STATS, konect_like


@dataclass(frozen=True)
class DatasetInfo:
    """Published statistics of one Table II dataset."""

    name: str
    nodes: int
    edges: int

    @property
    def average_degree(self) -> float:
        """``|E| / |V|`` as reported in Table II."""
        return self.edges / self.nodes

    def load(self, *, scale: float = 1.0, seed: "int | None" = None) -> WeightedDiGraph:
        """Generate the degree-matched stand-in graph at ``scale``."""
        return konect_like(self.name, scale=scale, seed=seed)


#: The Table II datasets, in the paper's order.
DATASETS: dict[str, DatasetInfo] = {
    name: DatasetInfo(name=name, nodes=stats["nodes"], edges=stats["edges"])
    for name, stats in KONECT_STATS.items()
}

#: The three graphs used by the efficiency experiments (Fig. 6).
EFFICIENCY_DATASETS = ("twitter", "digg", "gnutella")


def dataset_table() -> list[tuple[str, int, int, float]]:
    """Rows of Table II: (dataset, |V|, |E|, average degree)."""
    return [
        (info.name.capitalize(), info.nodes, info.edges, round(info.average_degree, 2))
        for info in DATASETS.values()
    ]
