"""Project-specific AST lint rules (``repro-kg lint``).

Generic linters cannot know that this repository's CSR buffers belong
to the serving engine, that metric names are a stringly-typed API with
a central catalog, or that reproducibility dies the moment someone
reaches for an unseeded RNG.  This module encodes those rules as a
small AST lint pass:

========  ==============================================================
Rule      What it rejects
========  ==============================================================
``R001``  Direct mutation of CSR buffers (``.data`` / ``.indices`` /
          ``.indptr`` assignment) outside the
          :class:`~repro.serving.engine.SimilarityEngine` patch API.
``R002``  A string literal passed to ``trace_span`` or to
          ``registry.counter/gauge/histogram`` that is not declared in
          :mod:`repro.obs.catalog` — the typo'd-phantom-series guard.
``R003``  ``print()`` calls in library code (the logging migration
          regression guard).
``R004``  Module-level or unseeded randomness: ``import random``,
          legacy ``np.random.<fn>()`` global-state calls, unseeded
          ``default_rng()`` (attribute or from-import spelling), direct
          ``Generator(...)`` construction, or any RNG construction at
          module import time — all outside ``utils/rng.py``.
``R005``  Raw ``time.time()`` timing where
          :class:`~repro.utils.timing.Stopwatch` exists — wall-clock
          time is not monotonic and the repo already has the right
          tool (outside ``utils/timing.py``).
``R006``  Direct calls to the similarity kernels
          (``inverse_pdistance*`` / ``ppr_*``) outside the
          ``similarity/`` package — callers must resolve a kernel
          through :class:`~repro.serving.params.SimilarityParams` and
          the :mod:`~repro.similarity.backend` registry so the
          ``backend=`` field actually controls propagation everywhere.
``R007``  A catalog entry emitted *nowhere* in the linted tree — the
          inverse of R002: the catalog must not accumulate phantom
          declarations whose dashboards would flatline forever
          (a whole-tree check via :func:`find_dead_series`, reported
          against ``obs/catalog.py``).
``R008``  A write to a :data:`repro.utils.sync.SHARED_STATE` attribute
          outside its declared owner module / writers, or without the
          declared ``lock:<name>`` guard lexically held (implemented in
          :mod:`repro.devtools.concurrency`).
``R009``  An ndarray stored into ``frozen``-guarded shared state (the
          score cache) without a visible ``setflags(write=False)`` —
          the static form of the writable-buffer cache-poison bug
          (concurrency module).
``R010``  Blocking I/O or a non-serve-safe guard acquisition reachable
          from a ``@serve_path`` root, proven over the
          :mod:`repro.devtools.callgraph` call graph (concurrency
          module).
``R011``  An epoch-keyed cache entry created or re-keyed outside the
          declared revalidation APIs (concurrency module).
========  ==============================================================

Suppression: append ``# noqa: R003`` (or a comma-separated rule list,
or a bare ``# noqa``) to the offending line.  Rules are suppressed per
line, never per file.

The engine walks each file's AST exactly once; rules are methods on a
single visitor, so adding a rule is one method plus one catalog entry
in :data:`RULES`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.obs import catalog

__all__ = [
    "RULES",
    "GRAPH_RULES",
    "LintViolation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "collect_emitted_names",
    "find_dead_series",
    "format_violations",
    "violations_to_json",
]

#: Rule id -> one-line description (the ``repro-kg lint --rules`` table).
RULES: dict[str, str] = {
    "R001": (
        "no direct mutation of CSR buffers (.data/.indices/.indptr) outside "
        "the SimilarityEngine patch API"
    ),
    "R002": (
        "metric/span names passed to obs must be declared in "
        "repro.obs.catalog (typo'd series guard)"
    ),
    "R003": "no print() in library code; use the repro.cli logger / logging",
    "R004": (
        "no module-level or unseeded np.random/random usage outside "
        "utils/rng.py"
    ),
    "R005": "no raw time.time() timing where utils.timing.Stopwatch exists",
    "R006": (
        "no direct inverse_pdistance*/ppr_* kernel calls outside similarity/; "
        "resolve kernels via SimilarityParams.backend and the backend registry"
    ),
    "R007": (
        "every catalog-declared metric/span must be emitted somewhere in the "
        "linted tree (dead/phantom catalog entry guard — the inverse of R002)"
    ),
    "R008": (
        "writes to repro.utils.sync.SHARED_STATE attributes only in the "
        "declared owner module (or declared writers) while holding the "
        "declared guard"
    ),
    "R009": (
        "ndarrays stored into frozen shared state (the score cache) must be "
        "visibly frozen via setflags(write=False) — no writable buffer may "
        "escape the engine boundary"
    ),
    "R010": (
        "functions reachable from @serve_path roots must not call blocking "
        "I/O (fsync, write-mode open, subprocess, sleep) or acquire "
        "non-serve-safe guards"
    ),
    "R011": (
        "epoch-keyed cache entries may only be created/re-keyed through the "
        "declared revalidation APIs (rekey_apis in SHARED_STATE)"
    ),
}

#: The rules implemented by :mod:`repro.devtools.concurrency` on top of
#: the call graph; ``lint_paths`` handles the single-file AST rules and
#: the CLI merges in these whole-tree checks.
GRAPH_RULES = frozenset({"R008", "R009", "R010", "R011"})

#: Files exempt from a rule because they *implement* the guarded API.
_RULE_EXEMPT_FILES: dict[str, tuple[str, ...]] = {
    "R001": ("serving/engine.py",),
    "R004": ("utils/rng.py",),
    "R005": ("utils/timing.py",),
}

#: Directories whose *every* file is exempt from a rule because the
#: directory implements the guarded layer (trailing slash required).
_RULE_EXEMPT_DIRS: dict[str, tuple[str, ...]] = {
    "R006": ("similarity/",),
}

#: Terminal callable-name prefixes that identify a similarity kernel
#: for R006 (the backend registry is the only sanctioned caller).
_KERNEL_PREFIXES = ("inverse_pdistance", "ppr_")

#: Attribute names that identify a CSR buffer for R001.
_CSR_BUFFERS = frozenset({"data", "indices", "indptr"})

#: ``np.random`` members that construct *seedable* generators; every
#: other member is the legacy global-state API and always violates R004.
_SEEDED_RNG_FACTORIES = frozenset({"default_rng", "Generator", "SeedSequence"})

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<rules>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: R00X message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _noqa_rules(source_line: str) -> "frozenset[str] | None":
    """Rules suppressed on this line: ``frozenset()`` means *all*."""
    match = _NOQA_RE.search(source_line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


class _RuleVisitor(ast.NodeVisitor):
    """One-pass AST walk applying every applicable rule."""

    def __init__(self, path: str, active_rules: frozenset[str]) -> None:
        self.path = path
        self.active = active_rules
        self.violations: list[LintViolation] = []
        self._function_depth = 0
        self._numpy_aliases: set[str] = set()
        self._time_aliases: set[str] = set()
        self._time_time_names: set[str] = set()
        #: bound name -> original numpy.random factory name, for the
        #: ``from numpy.random import default_rng`` forms of R004.
        self._np_random_names: dict[str, str] = {}

    # -- helpers -------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.active:
            self.violations.append(
                LintViolation(
                    rule=rule,
                    path=self.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                )
            )

    @property
    def _at_module_level(self) -> bool:
        return self._function_depth == 0

    def _is_np_random(self, node: ast.AST) -> bool:
        """Whether ``node`` is the ``np.random`` attribute expression."""
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self._numpy_aliases
        )

    # -- imports feed the alias tables and R004 ------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                self._numpy_aliases.add(bound)
            elif alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "random" or alias.name.startswith("random."):
                self._emit(
                    "R004",
                    node,
                    "stdlib 'random' is unseeded global state; use "
                    "repro.utils.rng.ensure_rng instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self._emit(
                "R004",
                node,
                "stdlib 'random' is unseeded global state; use "
                "repro.utils.rng.ensure_rng instead",
            )
        if node.module == "numpy.random" and node.level == 0:
            for alias in node.names:
                if alias.name in _SEEDED_RNG_FACTORIES:
                    bound = alias.asname or alias.name
                    self._np_random_names[bound] = alias.name
        if node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name == "time":
                    self._time_time_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- scope tracking ------------------------------------------------
    def _visit_function(self, node: ast.AST) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    # -- R001: CSR buffer mutation -------------------------------------
    def _check_csr_target(self, target: ast.AST, node: ast.AST) -> None:
        # matrix.data[i] = w  /  matrix.data[i] += w
        subscripted = isinstance(target, ast.Subscript)
        if isinstance(target, ast.Subscript):
            target = target.value
        if not (
            isinstance(target, ast.Attribute)
            and target.attr in _CSR_BUFFERS
            and isinstance(target.value, (ast.Attribute, ast.Name))
        ):
            return
        # ``self.data = {}`` is the ordinary instance-attribute idiom,
        # not a CSR buffer; wholesale rebinding of a *generic* ``.data``
        # on bare ``self`` stays legal.  Element stores, aug-assigns,
        # and the CSR-specific ``.indices``/``.indptr`` always flag.
        if (
            not subscripted
            and target.attr == "data"
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        self._emit(
            "R001",
            node,
            f"direct mutation of CSR buffer '.{target.attr}'; route weight "
            f"updates through the SimilarityEngine patch API",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_csr_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_csr_target(node.target, node)
        self.generic_visit(node)

    # -- call-shaped rules ---------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # R003: print()
        if isinstance(func, ast.Name) and func.id == "print":
            self._emit(
                "R003",
                node,
                "print() in library code; use the repro.cli logger / logging",
            )
        # R005: time.time()
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
        ) or (
            isinstance(func, ast.Name) and func.id in self._time_time_names
        ):
            self._emit(
                "R005",
                node,
                "raw time.time() timing; use utils.timing.Stopwatch / "
                "time.perf_counter",
            )
        # R004: np.random.* calls (attribute and from-import spellings)
        rng_factory: str | None = None
        if isinstance(func, ast.Attribute) and self._is_np_random(func.value):
            rng_factory = func.attr
        elif isinstance(func, ast.Name) and func.id in self._np_random_names:
            rng_factory = self._np_random_names[func.id]
        if rng_factory is not None:
            if rng_factory not in _SEEDED_RNG_FACTORIES:
                self._emit(
                    "R004",
                    node,
                    f"np.random.{rng_factory}() drives unseeded global state; "
                    f"use repro.utils.rng.ensure_rng",
                )
            elif rng_factory == "Generator":
                self._emit(
                    "R004",
                    node,
                    "direct Generator(...) construction bypasses seed "
                    "threading; use repro.utils.rng.ensure_rng / spawn_rngs",
                )
            elif rng_factory == "default_rng" and not (
                node.args or node.keywords
            ):
                self._emit(
                    "R004",
                    node,
                    "np.random.default_rng() without a seed breaks "
                    "reproducibility; thread a seed or use ensure_rng",
                )
            elif self._at_module_level:
                self._emit(
                    "R004",
                    node,
                    f"np.random.{rng_factory}(...) at module level runs at "
                    f"import time; construct RNGs inside functions",
                )
        # R006: direct similarity-kernel calls outside similarity/
        terminal = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if terminal is not None and terminal.startswith(_KERNEL_PREFIXES):
            self._emit(
                "R006",
                node,
                f"direct kernel call {terminal}(); resolve it via "
                f"SimilarityParams.backend and "
                f"repro.similarity.backend.resolve_backend",
            )
        # R002: obs names must be in the catalog
        self._check_obs_name(node, func)
        self.generic_visit(node)

    def _check_obs_name(self, node: ast.Call, func: ast.AST) -> None:
        emitted = _obs_name_of(node)
        if emitted is None:
            return
        kind, name = emitted
        if kind == "span" and not catalog.is_registered_span(name):
            self._emit(
                "R002",
                node,
                f"span name {name!r} is not declared in repro.obs.catalog "
                f"(typo, or add it to SPANS)",
            )
        elif kind != "span" and not catalog.is_registered_metric(name):
            self._emit(
                "R002",
                node,
                f"{kind} name {name!r} is not declared in repro.obs.catalog "
                f"(typo, or add it to the catalog)",
            )


def _obs_name_of(node: ast.Call) -> "tuple[str, str] | None":
    """``(kind, name)`` when ``node`` emits an obs series, else ``None``.

    Matches the shapes R002 polices — ``trace_span("...")`` and
    ``<registry>.counter/gauge/histogram("...")`` with a literal first
    argument, plus the local-alias idiom ``counter = registry.counter;
    counter("...")`` — so the dead-series sweep (R007) and the
    phantom-name check (R002) agree on what "emitted" means by
    construction.
    """
    func = node.func
    if not node.args:
        return None
    first = node.args[0]
    if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
        return None
    if isinstance(func, ast.Name):
        if func.id == "trace_span":
            return "span", first.value
        if func.id in ("counter", "gauge", "histogram"):
            return func.id, first.value
        return None
    if isinstance(func, ast.Attribute) and func.attr in (
        "counter",
        "gauge",
        "histogram",
    ):
        return func.attr, first.value
    return None


def _active_rules(path: str) -> frozenset[str]:
    """Rules that apply to ``path`` (exemptions are per implementing file)."""
    normalized = path.replace("\\", "/")
    active = set(RULES)
    for rule, exempt_suffixes in _RULE_EXEMPT_FILES.items():
        if any(normalized.endswith(suffix) for suffix in exempt_suffixes):
            active.discard(rule)
    for rule, exempt_dirs in _RULE_EXEMPT_DIRS.items():
        if any(
            normalized.startswith(directory) or f"/{directory}" in normalized
            for directory in exempt_dirs
        ):
            active.discard(rule)
    return frozenset(active)


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    rules: "Iterable[str] | None" = None,
) -> list[LintViolation]:
    """Lint python ``source``; returns violations sorted by location.

    ``path`` labels the violations and selects per-file rule
    exemptions (the engine may patch its own CSR buffers; the rng
    module may construct generators).  ``rules`` restricts the run to
    a subset of rule ids; ``None`` means all of them.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(
                rule="E999",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    active = _active_rules(path)
    if rules is not None:
        active = active & frozenset(rules)
    visitor = _RuleVisitor(path, active)
    visitor.visit(tree)
    lines = source.splitlines()
    kept: list[LintViolation] = []
    for violation in visitor.violations:
        line_text = lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        suppressed = _noqa_rules(line_text)
        if suppressed is not None and (not suppressed or violation.rule in suppressed):
            continue
        kept.append(violation)
    kept.sort(key=lambda v: (v.line, v.col, v.rule))
    return kept


def lint_file(
    path: "str | Path", *, rules: "Iterable[str] | None" = None
) -> list[LintViolation]:
    """Lint one file on disk."""
    file_path = Path(path)
    return lint_source(
        file_path.read_text(encoding="utf-8"),
        path=str(file_path),
        rules=rules,
    )


def lint_paths(
    paths: Iterable["str | Path"],
    *,
    rules: "Iterable[str] | None" = None,
) -> list[LintViolation]:
    """Lint files and/or directory trees (``*.py``, recursively).

    Paths that do not exist raise ``FileNotFoundError`` — a lint run
    that silently checks nothing is how a CI gate rots.
    """
    rule_set = None if rules is None else frozenset(rules)
    violations: list[LintViolation] = []
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            for file_path in sorted(entry_path.rglob("*.py")):
                violations.extend(lint_file(file_path, rules=rule_set))
        elif entry_path.is_file():
            violations.extend(lint_file(entry_path, rules=rule_set))
        else:
            raise FileNotFoundError(f"lint target does not exist: {entry_path}")
    return violations


def collect_emitted_names(
    paths: Iterable["str | Path"],
) -> tuple[set[str], set[str]]:
    """``(metric names, span names)`` emitted anywhere under ``paths``.

    "Emitted" means the literal-name call shapes R002 polices; a file
    with a syntax error contributes nothing (the regular lint pass
    reports it).
    """
    metrics: set[str] = set()
    spans: set[str] = set()
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            files = sorted(entry_path.rglob("*.py"))
        elif entry_path.is_file():
            files = [entry_path]
        else:
            raise FileNotFoundError(f"lint target does not exist: {entry_path}")
        for file_path in files:
            try:
                tree = ast.parse(
                    file_path.read_text(encoding="utf-8"), filename=str(file_path)
                )
            except SyntaxError:
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Call):
                    emitted = _obs_name_of(node)
                    if emitted is None:
                        continue
                    kind, name = emitted
                    (spans if kind == "span" else metrics).add(name)
    return metrics, spans


def find_dead_series(
    paths: Iterable["str | Path"],
    *,
    metrics: "Iterable[str] | None" = None,
    spans: "Iterable[str] | None" = None,
) -> list[LintViolation]:
    """R007: catalog entries emitted nowhere under ``paths``.

    The inverse of R002: R002 stops a call site from inventing a name
    the catalog never declared; this stops the catalog from accumulating
    phantom declarations no call site emits (a dashboard reading such a
    series would flatline forever).  A whole-tree property rather than a
    per-line one, so violations are attributed to the catalog module
    itself.  ``metrics``/``spans`` override the declared sets for tests.
    """
    declared_metrics = frozenset(catalog.METRICS if metrics is None else metrics)
    declared_spans = frozenset(catalog.SPANS if spans is None else spans)
    emitted_metrics, emitted_spans = collect_emitted_names(paths)
    catalog_path = str(
        Path(catalog.__file__ or "repro/obs/catalog.py")
    )
    violations = [
        LintViolation(
            rule="R007",
            path=catalog_path,
            line=0,
            col=0,
            message=(
                f"metric {name!r} is declared in the catalog but emitted "
                f"nowhere in the linted tree (dead series)"
            ),
        )
        for name in sorted(declared_metrics - emitted_metrics)
    ]
    violations.extend(
        LintViolation(
            rule="R007",
            path=catalog_path,
            line=0,
            col=0,
            message=(
                f"span {name!r} is declared in the catalog but emitted "
                f"nowhere in the linted tree (dead span)"
            ),
        )
        for name in sorted(declared_spans - emitted_spans)
    )
    return violations


def format_violations(violations: Sequence[LintViolation]) -> str:
    """Render violations one per line, plus a summary tail."""
    if not violations:
        return "lint: clean"
    lines = [violation.render() for violation in violations]
    lines.append(f"lint: {len(violations)} violation(s)")
    return "\n".join(lines)


def violations_to_json(
    violations: Sequence[LintViolation],
) -> dict[str, object]:
    """Machine-readable shape for ``repro-kg lint --format json``."""
    return {
        "clean": not violations,
        "count": len(violations),
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in violations
        ],
    }
