"""Whole-package AST call graph with method resolution and reachability.

The concurrency analyzer (:mod:`repro.devtools.concurrency`) needs to
answer questions like "can ``QASystem.ask`` reach ``os.fsync``?"
statically — the lock-free-read invariant of the coming serve/optimize
split is a *reachability* property, not a per-line pattern.  This
module builds the call graph that makes such queries cheap:

- **indexing** — every module under the given roots is parsed once;
  classes, methods, module functions, and both import forms (aliases
  and from-imports, including re-export chains through ``__init__``
  modules) are tabulated;
- **resolution** — call sites resolve through, in order: local variable
  types (a lightweight flow-insensitive inference over constructor
  calls, container literals, and ``self.attr`` reads typed from the
  owning class's ``__init__``), ``self``/``super()`` method lookup with
  single-level base-class fallback, import tables, and finally Class
  Hierarchy Analysis (every package class defining the method name);
- **externals** — calls that leave the package are kept as ``ext:``
  targets (``ext:os.fsync``, ``ext:subprocess.run``, and ``open`` calls
  classified by mode as ``ext:open[w]`` / ``ext:open[r]``) so purity
  rules can pattern-match them;
- **reachability** — BFS from any root set, recording the parent chain
  for human-readable "how does serving reach this?" paths, and
  honoring ``@serve_exempt`` as a declared barrier (the function is
  reported, its callees are not traversed).

Precision notes (deliberate, documented trade-offs): CHA is suppressed
for builtin-container method names (``append``, ``add``, ``get``, …) —
otherwise every ``pending.append(...)`` would conjure an edge to
:meth:`VoteWAL.append` and its fsync; typed receivers still resolve
those precisely.  Nested functions and lambdas are flattened into
their enclosing function.  Dynamic dispatch through stored callables
(listener lists, registry values) is invisible — keep such callbacks
off the serve path or behind declared barriers.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallGraph",
    "ReachResult",
    "build_call_graph",
]

#: Method names for which CHA (unknown-receiver dispatch over every
#: class defining the name) is suppressed: they are overwhelmingly
#: builtin container/string operations, and a single false edge (e.g.
#: ``list.append`` -> ``VoteWAL.append``) would poison reachability.
#: Typed receivers resolve these precisely; dunders are suppressed too.
CHA_SUPPRESSED = frozenset(
    {
        "append", "appendleft", "extend", "insert", "remove", "discard",
        "add", "update", "setdefault", "get", "pop", "popitem", "popleft",
        "clear", "copy", "keys", "values", "items", "sort", "reverse",
        "count", "index", "join", "split", "rsplit", "splitlines",
        "strip", "lstrip", "rstrip", "startswith", "endswith", "format",
        "encode", "decode", "lower", "upper", "replace", "write",
        "writelines", "read", "readline", "readlines", "close", "flush",
        "most_common", "total", "fileno",
    }
)

_BUILTIN_CTORS = frozenset(
    {
        "list", "dict", "set", "tuple", "frozenset", "str", "bytes",
        "bytearray", "int", "float", "bool", "complex", "object",
        "OrderedDict", "defaultdict", "deque", "Counter",
    }
)

_LITERAL_NODES = (
    ast.List, ast.Dict, ast.Set, ast.Tuple, ast.ListComp, ast.DictComp,
    ast.SetComp, ast.GeneratorExp, ast.Constant, ast.JoinedStr,
)

_TYPE_BUILTIN = "builtin"
_TYPE_FILE = "filehandle"


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge leaving a function."""

    target: str  #: package qualname, ``ext:<dotted>``, or ``ext:open[w]``
    line: int
    via: str  #: direct | self | super | typed | import | cha | ctor

    @property
    def external(self) -> bool:
        return self.target.startswith("ext:")


@dataclass
class FunctionInfo:
    """One module-level function or method."""

    qualname: str  #: ``<module>.<Class>.<name>`` or ``<module>.<name>``
    module: str
    cls: "str | None"
    name: str
    path: str
    line: int
    decorators: "dict[str, object]"  #: terminal name -> True or reason
    calls: "list[CallSite]" = field(default_factory=list)
    node: "ast.AST | None" = field(default=None, repr=False, compare=False)

    @property
    def serve_root(self) -> bool:
        return "serve_path" in self.decorators

    @property
    def exempt_reason(self) -> "str | None":
        reason = self.decorators.get("serve_exempt")
        return reason if isinstance(reason, str) else None


@dataclass
class ClassInfo:
    """One class: methods, raw base names, and inferred attribute types."""

    qualname: str
    module: str
    name: str
    bases: "tuple[str, ...]"
    methods: "dict[str, FunctionInfo]" = field(default_factory=dict)
    attr_types: "dict[str, str]" = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution tables."""

    name: str
    path: str
    is_package: bool
    tree: "ast.Module" = field(repr=False)
    import_aliases: "dict[str, str]" = field(default_factory=dict)
    import_names: "dict[str, str]" = field(default_factory=dict)
    classes: "dict[str, ClassInfo]" = field(default_factory=dict)
    functions: "dict[str, FunctionInfo]" = field(default_factory=dict)
    global_types: "dict[str, str]" = field(default_factory=dict)


@dataclass
class ReachResult:
    """A BFS reachability closure with parent chains and barriers."""

    roots: "tuple[str, ...]"
    parent: "dict[str, str | None]"  #: function -> BFS predecessor
    barriers: "dict[str, str]"  #: @serve_exempt functions hit -> reason

    @property
    def functions(self) -> "set[str]":
        """Every reachable function, roots included, barriers excluded."""
        return set(self.parent) - set(self.barriers)

    def __contains__(self, qualname: str) -> bool:
        return qualname in self.parent

    def path(self, qualname: str) -> "list[str]":
        """Root-to-function call chain (empty if unreachable)."""
        if qualname not in self.parent:
            return []
        chain = [qualname]
        while (up := self.parent[chain[-1]]) is not None:
            chain.append(up)
        return list(reversed(chain))

    def render_path(self, qualname: str) -> str:
        return " -> ".join(self.path(qualname))


class CallGraph:
    """The resolved call graph over one or more source roots."""

    def __init__(self, modules: "dict[str, ModuleInfo]") -> None:
        self.modules = modules
        self.classes: "dict[str, ClassInfo]" = {}
        self.functions: "dict[str, FunctionInfo]" = {}
        self.methods_by_name: "dict[str, list[str]]" = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn
        for cls in self.classes.values():
            for fn in cls.methods.values():
                self.functions[fn.qualname] = fn
                self.methods_by_name.setdefault(fn.name, []).append(
                    fn.qualname
                )
        #: package-internal import-layer edges: module -> imported modules
        self.module_imports: "dict[str, set[str]]" = {
            name: self._imported_modules(mod)
            for name, mod in modules.items()
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def serve_roots(self) -> "list[FunctionInfo]":
        """Every ``@serve_path``-decorated function, sorted by qualname."""
        return sorted(
            (fn for fn in self.functions.values() if fn.serve_root),
            key=lambda fn: fn.qualname,
        )

    def callees(self, qualname: str) -> "list[CallSite]":
        fn = self.functions.get(qualname)
        return list(fn.calls) if fn is not None else []

    def reachable(
        self, roots: "list[str]", *, stop_at: str = "serve_exempt"
    ) -> ReachResult:
        """BFS closure from ``roots`` over package-internal edges.

        Functions decorated with ``stop_at`` are recorded as barriers:
        they appear in the result (so reports can list them) but their
        callees are not traversed.
        """
        known = [r for r in roots if r in self.functions]
        parent: "dict[str, str | None]" = {r: None for r in known}
        barriers: "dict[str, str]" = {}
        queue = deque(known)
        while queue:
            current = queue.popleft()
            info = self.functions[current]
            if stop_at in info.decorators and parent[current] is not None:
                reason = info.decorators[stop_at]
                barriers[current] = (
                    reason if isinstance(reason, str) else "declared barrier"
                )
                continue
            for site in info.calls:
                target = site.target
                if site.external or target in parent:
                    continue
                if target not in self.functions:
                    continue
                parent[target] = current
                queue.append(target)
        return ReachResult(tuple(known), parent, barriers)

    def external_calls(
        self, reach: ReachResult
    ) -> "list[tuple[FunctionInfo, CallSite]]":
        """Every ``ext:`` call site inside a reachable (non-barrier)
        function, in deterministic order."""
        out: "list[tuple[FunctionInfo, CallSite]]" = []
        for qualname in sorted(reach.functions):
            info = self.functions[qualname]
            out.extend(
                (info, site) for site in info.calls if site.external
            )
        return out

    def to_json(self) -> "dict[str, object]":
        """JSON-serializable summary (stable ordering)."""
        return {
            "modules": sorted(self.modules),
            "functions": {
                q: {
                    "path": fn.path,
                    "line": fn.line,
                    "decorators": sorted(fn.decorators),
                    "calls": [
                        {"target": s.target, "line": s.line, "via": s.via}
                        for s in fn.calls
                    ],
                }
                for q, fn in sorted(self.functions.items())
            },
            "module_imports": {
                m: sorted(deps)
                for m, deps in sorted(self.module_imports.items())
            },
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _imported_modules(self, mod: ModuleInfo) -> "set[str]":
        deps: "set[str]" = set()
        for dotted in list(mod.import_aliases.values()) + list(
            mod.import_names.values()
        ):
            hit = self._module_prefix(dotted)
            if hit is not None and hit != mod.name:
                deps.add(hit)
        return deps

    def _module_prefix(self, dotted: str) -> "str | None":
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                return prefix
        return None


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def build_call_graph(paths: "list[str | Path]") -> CallGraph:
    """Parse every ``.py`` file under ``paths`` and resolve all calls.

    Each entry may be a source root (like ``src``) or a package
    directory; package directories are anchored at their parent so
    module names come out fully qualified (``repro.serving.engine``).
    """
    builder = _Builder()
    for entry in paths:
        builder.add_root(Path(entry))
    return builder.build()


def _decorator_table(node: "ast.AST") -> "dict[str, object]":
    """Terminal decorator names -> True, or the first literal argument
    (``@serve_exempt("reason")`` keeps its reason)."""
    table: "dict[str, object]" = {}
    for dec in getattr(node, "decorator_list", []):
        reason: object = True
        target = dec
        if isinstance(dec, ast.Call):
            if (
                dec.args
                and isinstance(dec.args[0], ast.Constant)
                and isinstance(dec.args[0].value, str)
            ):
                reason = dec.args[0].value
            target = dec.func
        if isinstance(target, ast.Attribute):
            table[target.attr] = reason
        elif isinstance(target, ast.Name):
            table[target.id] = reason
    return table


def _dotted_from(node: "ast.expr") -> "str | None":
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _open_target(call: "ast.Call") -> str:
    """Classify an ``open()``-shaped call by its mode argument."""
    mode = None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        mode = call.args[1].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = kw.value.value
    if isinstance(mode, str) and any(c in mode for c in "wax+"):
        return "ext:open[w]"
    if mode is None and (len(call.args) >= 2 or call.keywords):
        # Non-literal mode: assume the worst for purity checking.
        return "ext:open[w]"
    return "ext:open[r]"


class _Builder:
    def __init__(self) -> None:
        self.modules: "dict[str, ModuleInfo]" = {}

    # -- pass 0: discovery ---------------------------------------------
    def add_root(self, entry: Path) -> None:
        if entry.is_file():
            root = entry.parent
            files = [entry]
        else:
            root = entry.parent if (entry / "__init__.py").exists() else entry
            files = sorted(entry.rglob("*.py"))
        for file in files:
            rel = file.relative_to(root)
            parts = list(rel.parts)
            parts[-1] = parts[-1][: -len(".py")]
            is_package = parts[-1] == "__init__"
            if is_package:
                parts = parts[:-1]
            if not parts:
                continue
            name = ".".join(parts)
            try:
                tree = ast.parse(file.read_text(encoding="utf-8"))
            except SyntaxError:
                continue
            self.modules[name] = ModuleInfo(
                name=name,
                path=str(file),
                is_package=is_package,
                tree=tree,
            )

    def build(self) -> CallGraph:
        for mod in self.modules.values():
            self._index_module(mod)
        graph = CallGraph(self.modules)
        self._graph = graph
        for mod in self.modules.values():
            for cls in mod.classes.values():
                self._infer_attr_types(mod, cls)
            self._infer_global_types(mod)
        for mod in self.modules.values():
            for fn in mod.functions.values():
                self._resolve_function(mod, None, fn)
            for cls in mod.classes.values():
                for fn in cls.methods.values():
                    self._resolve_function(mod, cls, fn)
        return graph

    # -- pass 1: per-module indexing -----------------------------------
    def _index_module(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.import_aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(mod, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    mod.import_names[bound] = f"{base}.{alias.name}"
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.functions[stmt.name] = self._function_info(
                    mod, None, stmt
                )
            elif isinstance(stmt, ast.ClassDef):
                bases = tuple(
                    b for b in (_dotted_from(base) for base in stmt.bases)
                    if b is not None
                )
                cls = ClassInfo(
                    qualname=f"{mod.name}.{stmt.name}",
                    module=mod.name,
                    name=stmt.name,
                    bases=bases,
                )
                for item in stmt.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        cls.methods[item.name] = self._function_info(
                            mod, cls, item
                        )
                mod.classes[stmt.name] = cls

    def _resolve_from_base(
        self, mod: ModuleInfo, node: "ast.ImportFrom"
    ) -> "str | None":
        if node.level == 0:
            return node.module
        # Relative import: anchor at the module's package.
        parts = mod.name.split(".")
        if not mod.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            parts = parts[: len(parts) - drop] if drop < len(parts) else []
        if not parts:
            return node.module
        base = ".".join(parts)
        return f"{base}.{node.module}" if node.module else base

    def _function_info(
        self, mod: ModuleInfo, cls: "ClassInfo | None", node
    ) -> FunctionInfo:
        prefix = cls.qualname if cls is not None else mod.name
        return FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            module=mod.name,
            cls=cls.name if cls is not None else None,
            name=node.name,
            path=mod.path,
            line=node.lineno,
            decorators=_decorator_table(node),
            node=node,
        )

    # -- pass 2: type tables -------------------------------------------
    def _value_type(
        self, mod: ModuleInfo, value: "ast.expr"
    ) -> "str | None":
        """Best-effort type tag for an assigned value expression."""
        if isinstance(value, _LITERAL_NODES):
            return _TYPE_BUILTIN
        if isinstance(value, ast.IfExp):
            # `X(...) if flag else None` — type from the if-branch.
            return self._value_type(mod, value.body) or self._value_type(
                mod, value.orelse
            )
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                if func.id == "open":
                    return _TYPE_FILE
                entity = self._resolve_bare(mod, func.id)
                if entity is not None and entity[0] == "class":
                    return entity[1]
                if entity is None and func.id in _BUILTIN_CTORS:
                    return _TYPE_BUILTIN
                if entity is not None and entity[0] == "ext":
                    tail = entity[1].rsplit(".", 1)[-1]
                    if tail in _BUILTIN_CTORS:
                        return _TYPE_BUILTIN
            elif isinstance(func, ast.Attribute):
                dotted = _dotted_from(func)
                if dotted is not None:
                    entity = self._resolve_dotted_in(mod, dotted)
                    if entity is not None and entity[0] == "class":
                        return entity[1]
                if func.attr == "open":
                    return _TYPE_FILE
        return None

    def _infer_attr_types(self, mod: ModuleInfo, cls: ClassInfo) -> None:
        for method in cls.methods.values():
            node = method.node
            if node is None:
                continue
            for stmt in ast.walk(node):
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    target, value = stmt.target, stmt.value
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                tag = self._value_type(mod, value)
                if tag is not None and target.attr not in cls.attr_types:
                    cls.attr_types[target.attr] = tag

    def _infer_global_types(self, mod: ModuleInfo) -> None:
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if isinstance(target, ast.Name):
                tag = self._value_type(mod, value)
                if tag is not None:
                    mod.global_types[target.id] = tag

    # -- name resolution ------------------------------------------------
    def _resolve_bare(
        self, mod: ModuleInfo, name: str, depth: int = 0
    ) -> "tuple[str, str] | None":
        """Resolve a bare name to ('func'|'class'|'module'|'ext', target)."""
        if name in mod.functions:
            return ("func", mod.functions[name].qualname)
        if name in mod.classes:
            return ("class", mod.classes[name].qualname)
        if name in mod.import_names:
            return self._resolve_dotted(mod.import_names[name], depth + 1)
        if name in mod.import_aliases:
            dotted = mod.import_aliases[name]
            if dotted in self.modules:
                return ("module", dotted)
            return ("ext", dotted)
        return None

    def _resolve_dotted(
        self, dotted: str, depth: int = 0
    ) -> "tuple[str, str] | None":
        if depth > 8:
            return None
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                rest = parts[i:]
                if not rest:
                    return ("module", prefix)
                return self._lookup_in_module(
                    self.modules[prefix], rest, depth
                )
        return ("ext", dotted)

    def _resolve_dotted_in(
        self, mod: ModuleInfo, dotted: str
    ) -> "tuple[str, str] | None":
        """Resolve ``a.b.c`` whose head is a name bound in ``mod``."""
        head, _, rest = dotted.partition(".")
        entity = self._resolve_bare(mod, head)
        if entity is None:
            return None
        kind, target = entity
        if not rest:
            return entity
        if kind == "module":
            return self._lookup_in_module(
                self.modules[target], rest.split("."), 0
            )
        if kind == "ext":
            return ("ext", f"{target}.{rest}")
        if kind == "class":
            cls = self._graph.classes.get(target)
            parts = rest.split(".")
            if cls is not None and len(parts) == 1 and parts[0] in cls.methods:
                return ("func", cls.methods[parts[0]].qualname)
        return None

    def _lookup_in_module(
        self, mod: ModuleInfo, rest: "list[str]", depth: int
    ) -> "tuple[str, str] | None":
        name = rest[0]
        if name in mod.functions:
            return ("func", mod.functions[name].qualname)
        if name in mod.classes:
            cls = mod.classes[name]
            if len(rest) == 1:
                return ("class", cls.qualname)
            if len(rest) == 2 and rest[1] in cls.methods:
                return ("func", cls.methods[rest[1]].qualname)
            return None
        if name in mod.import_names and depth <= 8:
            tail = ".".join([mod.import_names[name]] + rest[1:])
            return self._resolve_dotted(tail, depth + 1)
        submodule = f"{mod.name}.{name}"
        if submodule in self.modules:
            if len(rest) == 1:
                return ("module", submodule)
            return self._lookup_in_module(
                self.modules[submodule], rest[1:], depth
            )
        return None

    # -- pass 3: call resolution ----------------------------------------
    def _resolve_function(
        self, mod: ModuleInfo, cls: "ClassInfo | None", fn: FunctionInfo
    ) -> None:
        node = fn.node
        if node is None:
            return
        local_types = self._local_types(mod, cls, node)
        sites: "list[CallSite]" = []
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    site = self._resolve_call(mod, cls, local_types, sub)
                    if site is not None:
                        sites.append(site)
                    else:
                        sites.extend(
                            self._cha_sites(mod, cls, local_types, sub)
                        )
        fn.calls = sites

    def _local_types(
        self, mod: ModuleInfo, cls: "ClassInfo | None", node
    ) -> "dict[str, str]":
        types: "dict[str, str]" = {}
        if cls is not None:
            types["self"] = cls.qualname
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if not (
                    isinstance(sub, ast.Assign) and len(sub.targets) == 1
                ):
                    continue
                target = sub.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                tag = self._value_type(mod, sub.value)
                if tag is None and isinstance(sub.value, ast.Attribute):
                    tag = self._expr_type(mod, cls, types, sub.value)
                if tag is None and isinstance(sub.value, ast.Name):
                    tag = types.get(sub.value.id)
                if tag is not None and target.id not in types:
                    types[target.id] = tag
        return types

    def _expr_type(
        self,
        mod: ModuleInfo,
        cls: "ClassInfo | None",
        local_types: "dict[str, str]",
        expr: "ast.expr",
    ) -> "str | None":
        """Type tag of a receiver expression (Name or self-rooted chain)."""
        if isinstance(expr, ast.Name):
            if expr.id in local_types:
                return local_types[expr.id]
            return mod.global_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(mod, cls, local_types, expr.value)
            if base is None or base in (_TYPE_BUILTIN, _TYPE_FILE):
                return None
            owner = self._graph.classes.get(base)
            if owner is not None:
                return owner.attr_types.get(expr.attr)
        return None

    def _resolve_call(
        self,
        mod: ModuleInfo,
        cls: "ClassInfo | None",
        local_types: "dict[str, str]",
        call: "ast.Call",
    ) -> "CallSite | None":
        func = call.func
        line = call.lineno
        if isinstance(func, ast.Name):
            if func.id == "open":
                return CallSite(_open_target(call), line, "direct")
            entity = self._resolve_bare(mod, func.id)
            if entity is None:
                return None
            kind, target = entity
            if kind == "func":
                return CallSite(target, line, "direct")
            if kind == "class":
                init = self._find_method(target, "__init__")
                if init is not None:
                    return CallSite(init, line, "ctor")
                return None
            if kind == "ext":
                return CallSite(f"ext:{target}", line, "import")
            return None
        if isinstance(func, ast.Attribute):
            # super().__init__(...) and friends
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and cls is not None
            ):
                for base in cls.bases:
                    base_entity = self._resolve_bare(mod, base.split(".")[0])
                    base_qual = None
                    if base_entity is not None and base_entity[0] == "class":
                        base_qual = base_entity[1]
                    if base_qual is not None:
                        method = self._find_method(base_qual, func.attr)
                        if method is not None:
                            return CallSite(method, line, "super")
                return None
            if func.attr == "open":
                return CallSite(_open_target(call), line, "direct")
            dotted = _dotted_from(func)
            if dotted is not None:
                entity = self._resolve_dotted_in(mod, dotted)
                if entity is not None:
                    kind, target = entity
                    if kind == "func":
                        return CallSite(target, line, "import")
                    if kind == "class":
                        init = self._find_method(target, "__init__")
                        if init is not None:
                            return CallSite(init, line, "ctor")
                        return None
                    if kind == "ext":
                        return CallSite(f"ext:{target}", line, "import")
            receiver_type = self._expr_type(
                mod, cls, local_types, func.value
            )
            if receiver_type in (_TYPE_BUILTIN, _TYPE_FILE):
                return None
            if receiver_type is not None:
                method = self._find_method(receiver_type, func.attr)
                if method is not None:
                    via = "self" if (
                        isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                    ) else "typed"
                    return CallSite(method, line, via)
                return None
        return None

    def _cha_sites(
        self,
        mod: ModuleInfo,
        cls: "ClassInfo | None",
        local_types: "dict[str, str]",
        call: "ast.Call",
    ) -> "list[CallSite]":
        """CHA fallback for attribute calls nothing else resolved."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return []
        name = func.attr
        if name in CHA_SUPPRESSED or (
            name.startswith("__") and name.endswith("__")
        ):
            return []
        if isinstance(func.value, ast.Call) and isinstance(
            func.value.func, ast.Name
        ):
            if func.value.func.id == "super":
                return []
        dotted = _dotted_from(func)
        if dotted is not None:
            head = dotted.split(".")[0]
            if head in mod.import_aliases or head in mod.import_names:
                entity = self._resolve_dotted_in(mod, dotted)
                if entity is None or entity[0] == "ext":
                    return []  # external library attribute, not dispatch
        receiver_type = self._expr_type(mod, cls, local_types, func.value)
        if receiver_type in (_TYPE_BUILTIN, _TYPE_FILE):
            return []
        targets = self.methods_by_name_get(name)
        return [CallSite(t, call.lineno, "cha") for t in targets]

    def methods_by_name_get(self, name: str) -> "list[str]":
        return self._graph.methods_by_name.get(name, [])

    def _find_method(
        self, class_qual: str, method: str
    ) -> "str | None":
        cls = self._graph.classes.get(class_qual)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method].qualname
        # single-level base fallback
        mod = self.modules.get(cls.module)
        for base in cls.bases:
            entity = None
            if mod is not None:
                entity = (
                    self._resolve_bare(mod, base)
                    if "." not in base
                    else self._resolve_dotted_in(mod, base)
                )
            if entity is not None and entity[0] == "class":
                parent = self._graph.classes.get(entity[1])
                if parent is not None and method in parent.methods:
                    return parent.methods[method].qualname
        return None
