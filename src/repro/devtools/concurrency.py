"""Shared-mutable-state analyzer: rules R008-R011 over the call graph.

This is the enforcement half of :mod:`repro.utils.sync`: that module
*declares* which state is cross-thread-visible and under what
discipline; this one proves, statically, that the tree honors the
declarations — before any optimizer thread exists to race.  Four rules:

R008 (lock discipline / ownership)
    Every write to a declared :data:`~repro.utils.sync.SHARED_STATE`
    attribute must happen in its owner module (or a declared
    cross-module writer) and, for ``lock:<name>`` guards, lexically
    inside ``with <holder>.<name>:``.  Constructor stores
    (``__init__`` of the declaring class) and module-scope definitions
    are pre-publication and exempt.

R009 (frozen escape analysis)
    Stores into a ``frozen``-guarded mapping must store ndarrays that
    were visibly frozen — a ``name.setflags(write=False)`` in the same
    function, or a value read back out of the frozen mapping itself.
    Tracks local aliases (a dict later rebound onto the attribute) and
    the declared :data:`~repro.utils.sync.FROZEN_RETURNS` boundary
    functions' ``return``/``yield`` sites.  This is the static form of
    the PR 5 cache-poison bug: a writable vector escaping into the LRU.

R010 (serve-path purity)
    No function reachable from a ``@serve_path`` root may call
    blocking I/O (``fsync``, write-mode ``open``, ``subprocess``,
    ``time.sleep``, filesystem mutation) or acquire a guard not
    declared ``serve_safe``.  Reachability comes from
    :mod:`repro.devtools.callgraph`; ``@serve_exempt`` functions are
    declared barriers and are reported, not traversed.

R011 (cache re-key discipline)
    States declaring ``rekey_apis`` (the epoch-keyed score cache) may
    only gain, re-key, or rebind entries inside those methods —
    eviction (``pop``/``clear``) is allowed anywhere in the owner.

``analyze_paths`` returns an :class:`AnalysisReport` (inventory +
serve-path purity report + findings, renderable as a table or JSON);
``find_concurrency_violations`` is the thin adapter ``repro-kg lint``
uses so R008-R011 ride the same gate as R001-R007.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    build_call_graph,
)
from repro.devtools.lint import LintViolation, _noqa_rules, format_violations
from repro.utils.sync import (
    FROZEN_RETURNS,
    SHARED_STATE,
    SharedState,
    shared_state_by_attr,
)
from repro.utils.tables import format_table

__all__ = [
    "CONCURRENCY_RULES",
    "AnalysisReport",
    "analyze_paths",
    "find_concurrency_violations",
]

#: The rules this module implements (descriptions live in
#: :data:`repro.devtools.lint.RULES` alongside R001-R007).
CONCURRENCY_RULES = frozenset({"R008", "R009", "R010", "R011"})

#: External call targets that block or touch durable storage — never
#: acceptable in serve-reachable code (R010).
_BLOCKING_EXACT = frozenset(
    {
        "ext:os.fsync", "ext:os.sync", "ext:os.replace", "ext:os.rename",
        "ext:os.remove", "ext:os.unlink", "ext:os.makedirs",
        "ext:os.mkdir", "ext:os.rmdir", "ext:os.truncate",
        "ext:time.sleep", "ext:shutil.rmtree", "ext:shutil.copy",
        "ext:shutil.copyfile", "ext:shutil.copytree", "ext:shutil.move",
        "ext:open[w]",
    }
)
_BLOCKING_PREFIXES = ("ext:subprocess.",)

#: Method names that are blocking no matter the receiver (Path writes
#: and file syncs); unambiguous enough to flag on unknown receivers.
_BLOCKING_ATTR_CALLS = frozenset(
    {"write_text", "write_bytes", "fsync", "touch", "mkdir"}
)

#: Receiver-method calls that mutate a container in place.
_MUTATING_CALLS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "add", "update",
        "setdefault", "remove", "discard", "clear", "pop", "popitem",
        "popleft", "move_to_end",
    }
)

#: The subset of mutations that *create or re-key* entries (R011);
#: eviction stays legal outside the declared revalidation APIs.
_CREATING_CALLS = frozenset({"update", "setdefault"})


@dataclass
class AnalysisReport:
    """Everything ``repro-kg analyze`` shows: graph, inventory, purity."""

    violations: "list[LintViolation]"
    inventory: "list[dict]"
    serve: "dict[str, object]"
    stats: "dict[str, int]"

    def to_json(self) -> "dict[str, object]":
        return {
            "stats": self.stats,
            "inventory": self.inventory,
            "serve": self.serve,
            "violations": [
                {
                    "rule": v.rule,
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "message": v.message,
                }
                for v in self.violations
            ],
        }

    def render(self) -> str:
        sections = [
            "call graph: {modules} modules, {functions} functions, "
            "{classes} classes, {edges} call edges".format(**self.stats)
        ]
        roots = self.serve["roots"]
        sections.append(
            f"serve-path roots ({len(roots)}): " + ", ".join(roots)
        )
        sections.append(
            "serve-reachable functions: "
            f"{self.serve['reachable_functions']}"
        )
        barriers = self.serve["barriers"]
        if barriers:
            lines = [
                f"  {name}  ({reason})"
                for name, reason in sorted(barriers.items())
            ]
            sections.append(
                "declared @serve_exempt barriers:\n" + "\n".join(lines)
            )
        sections.append(
            format_table(
                ["shared state", "kind", "guard", "owner", "writes"],
                [
                    (
                        row["name"],
                        row["kind"],
                        row["guard"],
                        row["owner"],
                        row["writes"],
                    )
                    for row in self.inventory
                ],
                title="shared-state inventory",
            )
        )
        sections.append(format_violations(self.violations))
        return "\n\n".join(sections)


def analyze_paths(
    paths: "list[str | Path]",
    *,
    rules: "set[str] | None" = None,
    shared_state: "tuple[SharedState, ...] | None" = None,
    frozen_returns: "tuple[str, ...] | None" = None,
) -> AnalysisReport:
    """Run the concurrency analysis over ``paths``.

    ``shared_state`` / ``frozen_returns`` default to the package
    registry in :mod:`repro.utils.sync`; tests inject synthetic ones.
    """
    for entry in paths:
        if not Path(entry).exists():
            raise FileNotFoundError(f"no such file or directory: {entry}")
    active = set(rules) if rules is not None else set(CONCURRENCY_RULES)
    states = shared_state if shared_state is not None else SHARED_STATE
    returns = (
        frozen_returns if frozen_returns is not None else FROZEN_RETURNS
    )
    graph = build_call_graph(paths)
    analyzer = _Analyzer(graph, states, returns)
    analyzer.run()

    seen: "set[tuple[str, str, int]]" = set()
    violations = []
    for v in analyzer.violations:
        if v.rule not in active:
            continue
        key = (v.rule, v.path, v.line)
        if key in seen:  # e.g. os.fsync matches both blocking scans
            continue
        seen.add(key)
        violations.append(v)
    violations = _apply_noqa(violations)
    violations.sort(key=lambda v: (v.path, v.line, v.rule, v.col))

    inventory = [
        {
            "name": s.name,
            "kind": s.kind,
            "guard": s.guard,
            "owner": s.owner,
            "serve_safe": s.serve_safe,
            "writers": list(s.writers),
            "rekey_apis": list(s.rekey_apis),
            "writes": analyzer.write_counts.get(s.name, 0),
            "description": s.description,
        }
        for s in states
    ]
    roots = [fn.qualname for fn in graph.serve_roots()]
    serve: "dict[str, object]" = {
        "roots": roots,
        "reachable_functions": len(analyzer.reach.functions),
        "barriers": dict(analyzer.reach.barriers),
    }
    stats = {
        "modules": len(graph.modules),
        "functions": len(graph.functions),
        "classes": len(graph.classes),
        "edges": sum(len(f.calls) for f in graph.functions.values()),
    }
    return AnalysisReport(violations, inventory, serve, stats)


def find_concurrency_violations(
    paths: "list[str | Path]",
    *,
    rules: "set[str] | None" = None,
    shared_state: "tuple[SharedState, ...] | None" = None,
) -> "list[LintViolation]":
    """R008-R011 findings in ``repro-kg lint`` shape."""
    report = analyze_paths(paths, rules=rules, shared_state=shared_state)
    return report.violations


def _apply_noqa(
    violations: "list[LintViolation]",
) -> "list[LintViolation]":
    """Honor per-line ``# noqa`` comments, same semantics as lint."""
    kept: "list[LintViolation]" = []
    lines_cache: "dict[str, list[str]]" = {}
    for violation in violations:
        lines = lines_cache.get(violation.path)
        if lines is None:
            try:
                lines = Path(violation.path).read_text(
                    encoding="utf-8"
                ).splitlines()
            except OSError:
                lines = []
            lines_cache[violation.path] = lines
        if 0 < violation.line <= len(lines):
            suppressed = _noqa_rules(lines[violation.line - 1])
            if suppressed is not None and (
                not suppressed or violation.rule in suppressed
            ):
                continue
        kept.append(violation)
    return kept


# ----------------------------------------------------------------------
# write-site model
# ----------------------------------------------------------------------
@dataclass
class _Site:
    """One write site, classified for the discipline checks."""

    attr: "str | None"  #: attribute name (None for bare-name sites)
    name: "str | None"  #: bare global/local name (None for attr sites)
    receiver: "ast.expr | None"
    line: int
    col: int
    op: str  #: rebind | augassign | subscript | call:<method> | delete
    value: "ast.expr | None" = None


class _Analyzer:
    def __init__(
        self,
        graph: CallGraph,
        states: "tuple[SharedState, ...]",
        frozen_returns: "tuple[str, ...]",
    ) -> None:
        self.graph = graph
        self.states = states
        self.by_attr = shared_state_by_attr(states)
        self.frozen_returns = set(frozen_returns)
        self.violations: "list[LintViolation]" = []
        self.write_counts: "dict[str, int]" = {}
        self.reach = graph.reachable(
            [fn.qualname for fn in graph.serve_roots()]
        )
        #: lock names that may not be acquired on the serve path
        self.unsafe_locks = {
            s.lock_name
            for s in states
            if s.lock_name is not None and not s.serve_safe
        }
        self.frozen_attrs = {s.attr for s in states if s.frozen}

    def run(self) -> None:
        for mod in self.graph.modules.values():
            _ModuleScanner(self, mod).scan()
        self._check_serve_purity()

    # -- R010 -----------------------------------------------------------
    def _check_serve_purity(self) -> None:
        for fn, site in self.graph.external_calls(self.reach):
            target = site.target
            if target in _BLOCKING_EXACT or target.startswith(
                _BLOCKING_PREFIXES
            ):
                self._emit(
                    "R010",
                    fn.path,
                    site.line,
                    0,
                    f"serve path calls blocking {target[4:]} "
                    f"[{self.reach.render_path(fn.qualname)}]",
                )
        for qualname in sorted(self.reach.functions):
            fn = self.graph.functions[qualname]
            if fn.node is None:
                continue
            for stmt in fn.node.body:
                for sub in ast.walk(stmt):
                    self._check_purity_node(fn, sub)

    def _check_purity_node(self, fn: FunctionInfo, node: "ast.AST") -> None:
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            name = node.func.attr
            if name in _BLOCKING_ATTR_CALLS:
                self._emit(
                    "R010",
                    fn.path,
                    node.lineno,
                    node.col_offset,
                    f"serve path calls blocking .{name}() "
                    f"[{self.reach.render_path(fn.qualname)}]",
                )
            elif name == "acquire":
                lock = self._lock_name(node.func.value)
                if lock in self.unsafe_locks:
                    self._emit(
                        "R010",
                        fn.path,
                        node.lineno,
                        node.col_offset,
                        f"serve path acquires non-serve-safe guard "
                        f"{lock!r} "
                        f"[{self.reach.render_path(fn.qualname)}]",
                    )
        elif isinstance(node, ast.With):
            for item in node.items:
                lock = self._lock_name(item.context_expr)
                if lock in self.unsafe_locks:
                    self._emit(
                        "R010",
                        fn.path,
                        node.lineno,
                        node.col_offset,
                        f"serve path acquires non-serve-safe guard "
                        f"{lock!r} "
                        f"[{self.reach.render_path(fn.qualname)}]",
                    )

    @staticmethod
    def _lock_name(expr: "ast.expr") -> "str | None":
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def _emit(
        self, rule: str, path: str, line: int, col: int, message: str
    ) -> None:
        self.violations.append(
            LintViolation(rule, path, line, col, message)
        )


class _ModuleScanner:
    """One module's R008/R009/R011 pass with lexical context tracking."""

    def __init__(self, analyzer: _Analyzer, mod: ModuleInfo) -> None:
        self.a = analyzer
        self.mod = mod
        #: module-global states owned here, by name
        self.own_globals = {
            s.attr: s
            for s in analyzer.states
            if s.kind == "module-global" and s.owner == mod.name
        }

    def scan(self) -> None:
        self._visit_body(
            self.mod.tree.body,
            cls=None,
            func=None,
            guards=frozenset(),
            module_scope=True,
            global_decls=frozenset(),
        )

    # -- traversal ------------------------------------------------------
    def _visit_body(
        self, body, *, cls, func, guards, module_scope, global_decls
    ) -> None:
        for node in body:
            self._visit(
                node,
                cls=cls,
                func=func,
                guards=guards,
                module_scope=module_scope,
                global_decls=global_decls,
            )

    def _visit(
        self, node, *, cls, func, guards, module_scope, global_decls
    ) -> None:
        if isinstance(node, ast.ClassDef):
            self._visit_body(
                node.body,
                cls=node.name,
                func=None,
                guards=guards,
                module_scope=False,
                global_decls=frozenset(),
            )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decls = frozenset(
                name
                for sub in ast.walk(node)
                if isinstance(sub, ast.Global)
                for name in sub.names
            )
            if func is None:
                self._check_frozen_stores(node, cls)
            self._visit_body(
                node.body,
                cls=cls,
                func=node.name if func is None else func,
                guards=guards,
                module_scope=False,
                global_decls=decls if func is None else global_decls,
            )
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            held = set(guards)
            for item in node.items:
                lock = _Analyzer._lock_name(item.context_expr)
                if lock is not None:
                    held.add(lock)
            self._visit_body(
                node.body,
                cls=cls,
                func=func,
                guards=frozenset(held),
                module_scope=module_scope,
                global_decls=global_decls,
            )
            # with-item expressions can contain calls worth checking
            for item in node.items:
                self._scan_expr_sites(
                    item.context_expr, cls, func, guards,
                    module_scope, global_decls,
                )
            return

        for site in self._sites_of(node):
            self._check_site(
                site, cls, func, guards, module_scope, global_decls
            )
        # Recurse into compound statements and expressions.
        for child in ast.iter_child_nodes(node):
            self._visit(
                child,
                cls=cls,
                func=func,
                guards=guards,
                module_scope=module_scope,
                global_decls=global_decls,
            )

    def _scan_expr_sites(
        self, expr, cls, func, guards, module_scope, global_decls
    ) -> None:
        for sub in ast.walk(expr):
            for site in self._sites_of(sub):
                self._check_site(
                    site, cls, func, guards, module_scope, global_decls
                )

    # -- write-site extraction ------------------------------------------
    def _sites_of(self, node) -> "list[_Site]":
        sites: "list[_Site]" = []
        if isinstance(node, ast.Assign):
            for target in node.targets:
                sites.extend(self._target_sites(target, "rebind", node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            sites.extend(
                self._target_sites(node.target, "rebind", node.value)
            )
        elif isinstance(node, ast.AugAssign):
            sites.extend(
                self._target_sites(node.target, "augassign", node.value)
            )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                sites.extend(self._target_sites(target, "delete", None))
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            method = node.func.attr
            if method in _MUTATING_CALLS:
                receiver = node.func.value
                site = self._receiver_site(
                    receiver, f"call:{method}", node
                )
                if site is not None:
                    sites.append(site)
        return sites

    def _target_sites(
        self, target, op: str, value
    ) -> "list[_Site]":
        if isinstance(target, (ast.Tuple, ast.List)):
            out: "list[_Site]" = []
            for element in target.elts:
                out.extend(self._target_sites(element, op, None))
            return out
        if isinstance(target, ast.Attribute):
            return [
                _Site(
                    attr=target.attr,
                    name=None,
                    receiver=target.value,
                    line=target.lineno,
                    col=target.col_offset,
                    op=op,
                    value=value,
                )
            ]
        if isinstance(target, ast.Subscript):
            inner = target.value
            if isinstance(inner, ast.Attribute):
                return [
                    _Site(
                        attr=inner.attr,
                        name=None,
                        receiver=inner.value,
                        line=target.lineno,
                        col=target.col_offset,
                        op="subscript",
                        value=value,
                    )
                ]
            if isinstance(inner, ast.Name):
                return [
                    _Site(
                        attr=None,
                        name=inner.id,
                        receiver=None,
                        line=target.lineno,
                        col=target.col_offset,
                        op="subscript",
                        value=value,
                    )
                ]
            return []
        if isinstance(target, ast.Name):
            return [
                _Site(
                    attr=None,
                    name=target.id,
                    receiver=None,
                    line=target.lineno,
                    col=target.col_offset,
                    op=op,
                    value=value,
                )
            ]
        return []

    def _receiver_site(
        self, receiver, op: str, node
    ) -> "_Site | None":
        if isinstance(receiver, ast.Attribute):
            return _Site(
                attr=receiver.attr,
                name=None,
                receiver=receiver.value,
                line=node.lineno,
                col=node.col_offset,
                op=op,
            )
        if isinstance(receiver, ast.Name):
            return _Site(
                attr=None,
                name=receiver.id,
                receiver=None,
                line=node.lineno,
                col=node.col_offset,
                op=op,
            )
        return None

    # -- R008 / R011 ----------------------------------------------------
    def _check_site(
        self, site: _Site, cls, func, guards, module_scope, global_decls
    ) -> None:
        if site.attr is not None:
            states = self.a.by_attr.get(site.attr, ())
            for state in states:
                if state.kind != "attribute":
                    continue
                self._check_attr_site(site, state, cls, func, guards)
        elif site.name is not None:
            self._check_global_site(
                site, cls, func, guards, module_scope, global_decls
            )

    def _check_attr_site(
        self, site: _Site, state: SharedState, cls, func, guards
    ) -> None:
        is_self = (
            isinstance(site.receiver, ast.Name)
            and site.receiver.id == "self"
        )
        if is_self:
            if cls != state.cls:
                return  # same attr name on an unrelated class
            matched_writer = f"{self.mod.name}:{cls}.{func}"
        else:
            receiver_cls = self._receiver_class(site.receiver)
            if receiver_cls is not None:
                if receiver_cls.rsplit(".", 1)[-1] != state.cls:
                    return
            elif not (
                site.attr.startswith("_")
                and self.mod.name != state.owner
            ):
                # Unknown receiver: only cross-module writes to private
                # shared attrs are suspicious enough to flag.
                return
            matched_writer = f"{self.mod.name}:{cls}.{func}" if cls else (
                f"{self.mod.name}:{func}"
            )
        self.a.write_counts[state.name] = (
            self.a.write_counts.get(state.name, 0) + 1
        )

        in_owner = self.mod.name == state.owner
        declared = matched_writer in state.writers
        if not in_owner and not declared:
            self.a._emit(
                "R008",
                self.mod.path,
                site.line,
                site.col,
                f"write to shared state {state.name} outside owner "
                f"module {state.owner} (guard: {state.guard})",
            )
            return
        # Constructor stores happen before the object is published.
        ctor = func == "__init__" and cls == state.cls
        lock = state.lock_name
        if lock is not None and not ctor and lock not in guards:
            self.a._emit(
                "R008",
                self.mod.path,
                site.line,
                site.col,
                f"write to {state.name} without holding declared "
                f"guard {state.guard!r}",
            )
        if state.rekey_apis and not self._rekey_allowed(site, state, func):
            self.a._emit(
                "R011",
                self.mod.path,
                site.line,
                site.col,
                f"{state.name} entries may only be created/re-keyed in "
                f"{', '.join(state.rekey_apis)} (found in "
                f"{func or '<module>'})",
            )

    def _rekey_allowed(
        self, site: _Site, state: SharedState, func
    ) -> bool:
        creates = (
            site.op in ("rebind", "augassign", "subscript")
            or site.op in {f"call:{c}" for c in _CREATING_CALLS}
        )
        if not creates:
            return True
        return func in state.rekey_apis

    def _check_global_site(
        self, site: _Site, cls, func, guards, module_scope, global_decls
    ) -> None:
        state = self.own_globals.get(site.name)
        if state is None:
            # A module-global state mutated from another module would
            # need an explicit import; check that spelling too.
            target = self.mod.import_names.get(site.name, "")
            for candidate in self.a.by_attr.get(site.name, ()):
                if candidate.kind != "module-global":
                    continue
                if target.startswith(candidate.owner):
                    self.a._emit(
                        "R008",
                        self.mod.path,
                        site.line,
                        site.col,
                        f"write to shared state {candidate.name} outside "
                        f"owner module {candidate.owner}",
                    )
            return
        if site.op in ("rebind", "augassign") and not (
            module_scope or site.name in global_decls
        ):
            return  # a local shadowing the global name, not the state
        if module_scope:
            return  # module-scope definition, pre-publication
        self.a.write_counts[state.name] = (
            self.a.write_counts.get(state.name, 0) + 1
        )
        lock = state.lock_name
        if lock is not None and lock not in guards:
            self.a._emit(
                "R008",
                self.mod.path,
                site.line,
                site.col,
                f"write to {state.name} without holding declared "
                f"guard {state.guard!r}",
            )

    def _receiver_class(self, receiver) -> "str | None":
        """Qualified class of a self-rooted receiver chain, if known."""
        if receiver is None:
            return None
        chain: "list[str]" = []
        node = receiver
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        if node.id != "self":
            return None
        # Walk attr types from every class of this module that could be
        # `self` here — the enclosing class is not tracked on the site,
        # so try all and return the unique resolution.
        resolutions: "set[str]" = set()
        for cls in self.mod.classes.values():
            current = cls.qualname
            for attr in reversed(chain):
                info = self.a.graph.classes.get(current)
                if info is None:
                    current = None
                    break
                current = info.attr_types.get(attr)
                if current is None or current in ("builtin", "filehandle"):
                    current = None
                    break
            if current is not None:
                resolutions.add(current)
        if len(resolutions) == 1:
            return next(iter(resolutions))
        return None

    # -- R009 -----------------------------------------------------------
    def _check_frozen_stores(self, fn_node, cls) -> None:
        frozen = self.a.frozen_attrs
        if not frozen:
            return
        qual = (
            f"{self.mod.name}:{cls}.{fn_node.name}"
            if cls
            else f"{self.mod.name}:{fn_node.name}"
        )
        # 1. Local aliases: names later rebound onto a frozen attribute.
        aliases: "set[str]" = set()
        for sub in ast.walk(fn_node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Attribute)
                and sub.targets[0].attr in frozen
                and isinstance(sub.value, ast.Name)
            ):
                aliases.add(sub.value.id)
        # 2. Names visibly frozen or read back out of the frozen store.
        frozen_names: "set[str]" = set()
        for sub in ast.walk(fn_node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "setflags"
                and isinstance(sub.func.value, ast.Name)
            ):
                frozen_names.add(sub.func.value.id)
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
                if isinstance(target, ast.Name) and self._frozen_read(
                    value, aliases
                ):
                    frozen_names.add(target.id)
        # 3. Every store into the frozen attr (or an alias) must store a
        #    visibly frozen name.
        for sub in ast.walk(fn_node):
            if not (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Subscript)
            ):
                continue
            container = sub.targets[0].value
            is_frozen_target = (
                isinstance(container, ast.Attribute)
                and container.attr in frozen
            ) or (
                isinstance(container, ast.Name)
                and container.id in aliases
            )
            if not is_frozen_target:
                continue
            value = sub.value
            if isinstance(value, ast.Name) and value.id in frozen_names:
                continue
            if self._frozen_read(value, aliases):
                continue
            shown = (
                value.id
                if isinstance(value, ast.Name)
                else type(value).__name__
            )
            self.a._emit(
                "R009",
                self.mod.path,
                sub.lineno,
                sub.col_offset,
                f"ndarray {shown!r} stored into frozen shared state "
                f"without setflags(write=False) — a writable buffer "
                f"would escape the engine boundary",
            )
        # 4. Declared boundary functions: returns/yields must be frozen.
        if qual in self.a.frozen_returns:
            for sub in ast.walk(fn_node):
                value = None
                if isinstance(sub, ast.Return):
                    value = sub.value
                elif isinstance(sub, ast.Yield):
                    value = sub.value
                if value is None or (
                    isinstance(value, ast.Constant)
                    and value.value is None
                ):
                    continue
                if isinstance(value, ast.Name) and value.id in frozen_names:
                    continue
                if self._frozen_read(value, aliases):
                    continue
                self.a._emit(
                    "R009",
                    self.mod.path,
                    sub.lineno,
                    sub.col_offset,
                    f"{fn_node.name} is a declared frozen boundary but "
                    f"returns a value not proven read-only",
                )

    def _frozen_read(self, value, aliases: "set[str]") -> bool:
        """Is ``value`` a read out of a frozen container (hence frozen)?"""
        if isinstance(value, ast.Subscript):
            container = value.value
            return (
                isinstance(container, ast.Attribute)
                and container.attr in self.a.frozen_attrs
            ) or (
                isinstance(container, ast.Name) and container.id in aliases
            )
        if isinstance(value, ast.Call) and isinstance(
            value.func, ast.Attribute
        ):
            container = value.func.value
            if value.func.attr in ("get", "pop"):
                return (
                    isinstance(container, ast.Attribute)
                    and container.attr in self.a.frozen_attrs
                ) or (
                    isinstance(container, ast.Name)
                    and container.id in aliases
                )
        return False
