"""Runtime invariant/contract checks for the paper's core guarantees.

The reproduction's correctness rests on a handful of numeric invariants
that no unit test watches continuously:

- **row-stochasticity** (Eq. 7–9): after ``NormalizeEdges``, every
  touched node's knowledge-graph out-weights sum back to their recorded
  reference mass;
- **box bounds** (Eq. 2): SGP iterates and solutions satisfy
  ``0 < x_l ≤ x ≤ x_u``;
- **posynomial validity** (Eq. 2–3): the condensation solver only ever
  condenses genuine posynomials (all coefficients positive and finite);
- **deviation sanity** (Eq. 15): deviation variables are finite and
  bounded, so the sigmoid objective stays in its informative regime.

This module turns those implicit invariants into *assertable contracts*
installed at the seams (after normalization, after engine weight
patches, on SGP construction, after each solve).  Contracts are **off
by default** — every check starts with a single truthiness test on a
module-level flag, so production pays one attribute load per seam and
nothing else.  The whole test suite runs with contracts on (see
``tests/conftest.py``), and any run can opt in with ``REPRO_CONTRACTS=1``
or :func:`enable_contracts`.

A failed contract raises :class:`ContractViolation` (a
:class:`~repro.errors.ReproError`), naming the seam and the offending
values — the bug surfaces where it is introduced, not three layers
later as a mysteriously wrong ranking.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Iterable, Mapping
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ReproError

if TYPE_CHECKING:  # import cycle: graph modules install these contracts
    from repro.graph.digraph import Node, WeightedDiGraph
    from repro.sgp.terms import Signomial

__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "enable_contracts",
    "disable_contracts",
    "check_row_stochastic",
    "check_weight_bounds",
    "check_posynomial",
    "check_monotone_deviations",
    "check_finite_csr_data",
    "check_delta_scores",
    "check_push_scores",
]

#: Default tolerance for mass-conservation comparisons; generous enough
#: for accumulated float error over thousands of edges, far below any
#: semantically meaningful drift.
MASS_TOL = 1e-6

#: Default tolerance on box-bound membership (solvers clip to the bound,
#: so only representation error remains).
BOUND_TOL = 1e-9

#: Default tolerance for delta-revalidated serving scores against a cold
#: recompute.  The correction DP reassociates the same truncated sum
#: (Eq. 7-9), so only accumulated float64 rounding (~1e-12 even over
#: long patch sequences) separates the two; 1e-7 leaves a wide safety
#: margin while still catching any real formula bug, whose error scales
#: with the patched weights (~1e-3 and up).
DELTA_SCORE_TOL = 1e-7

#: Float-rounding slack granted to push-backend scores *on top of* their
#: derived drop-error budget.  The push kernel computes the same
#: truncated sum as the dense DP with a different summation order, so
#: beyond the deliberate (accounted) dropped mass only reassociation
#: rounding separates the two.
PUSH_SCORE_TOL = 1e-9


class ContractViolation(ReproError, AssertionError):
    """A runtime invariant of the reproduction was violated.

    Subclasses :class:`AssertionError` as well as the package root error
    so both ``except ReproError`` production handlers and test-harness
    assertion machinery treat it appropriately.
    """


# ----------------------------------------------------------------------
# the enable/disable switch
# ----------------------------------------------------------------------
def _env_wants_contracts() -> bool:
    value = os.environ.get("REPRO_CONTRACTS", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


_enabled: bool = _env_wants_contracts()


def contracts_enabled() -> bool:
    """Whether contract checks are currently active."""
    return _enabled


def enable_contracts() -> None:
    """Turn contract checks on for this process."""
    global _enabled
    _enabled = True


def disable_contracts() -> None:
    """Turn contract checks off (the production default)."""
    global _enabled
    _enabled = False


def _violation(seam: str, message: str) -> ContractViolation:
    # Fire the flight recorder *before* the exception is constructed and
    # raised by the caller: the diagnostic bundle captures the event ring
    # as it stood at the moment the invariant broke, even if a handler
    # upstack swallows the violation.  Late import — contracts must stay
    # importable from the graph layer without dragging obs in; a broken
    # recorder never masks the violation itself.
    from repro.obs.recorder import record_violation

    try:
        record_violation(seam, message)
    except Exception:  # pragma: no cover - diagnostics must not mask bugs
        pass
    return ContractViolation(f"contract violated at {seam}: {message}")


# ----------------------------------------------------------------------
# the contracts
# ----------------------------------------------------------------------
def check_row_stochastic(
    graph: "WeightedDiGraph",
    *,
    nodes: "Iterable[Node] | None" = None,
    expected: "Mapping[Node, float] | None" = None,
    edge_filter: "Callable[[Node, Node], bool] | None" = None,
    tol: float = MASS_TOL,
    seam: str = "normalize",
) -> None:
    """Verify per-node out-weight mass (Eq. 7–9's transition structure).

    With ``expected`` (the optimizer's recorded reference sums), each
    node's (optionally edge-filtered) out-weight sum must match its
    reference within ``tol`` — the ``NormalizeEdges`` postcondition:
    the solver redistributes mass, it must not create or destroy it.
    Without ``expected``, each sum must be sub-stochastic (≤ 1 + tol),
    the base-graph invariant.  Every participating weight must also be
    finite and strictly positive.
    """
    if not _enabled:
        return
    node_list = list(nodes) if nodes is not None else list(graph.nodes())
    for node in node_list:
        succ = graph.successors(node)
        if edge_filter is not None:
            succ = {t: w for t, w in succ.items() if edge_filter(node, t)}
        for tail, weight in succ.items():
            if not math.isfinite(weight) or weight <= 0.0:
                raise _violation(
                    seam,
                    f"edge {node!r}->{tail!r} has invalid weight {weight!r} "
                    f"(must be finite and > 0)",
                )
        total = sum(succ.values())
        if expected is not None:
            if node not in expected:
                continue
            target = expected[node]
            if abs(total - target) > tol * max(1.0, abs(target)):
                raise _violation(
                    seam,
                    f"node {node!r} out-weight sum {total!r} drifted from its "
                    f"reference mass {target!r} (tol {tol})",
                )
        elif total > 1.0 + tol:
            raise _violation(
                seam,
                f"node {node!r} out-weight sum {total!r} exceeds 1 "
                f"(row-stochastic bound, tol {tol})",
            )


def check_weight_bounds(
    x: "np.ndarray | Iterable[float]",
    lower: "np.ndarray | float",
    upper: "np.ndarray | float",
    *,
    tol: float = BOUND_TOL,
    seam: str = "sgp",
) -> None:
    """Verify the SGP box bounds ``0 < x_l ≤ x ≤ x_u`` (Eq. 2).

    Checks that the bounds themselves are valid (strictly positive
    lower, lower ≤ upper) and that ``x`` lies inside them within
    ``tol``, with every entry finite.
    """
    if not _enabled:
        return
    arr = np.asarray(x, dtype=float)
    lo = np.broadcast_to(np.asarray(lower, dtype=float), arr.shape)
    hi = np.broadcast_to(np.asarray(upper, dtype=float), arr.shape)
    if not np.all(np.isfinite(arr)):
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise _violation(seam, f"x[{bad}] = {arr[bad]!r} is not finite")
    if np.any(lo <= 0.0):
        bad = int(np.flatnonzero(lo <= 0.0)[0])
        raise _violation(
            seam, f"lower bound x_l[{bad}] = {lo[bad]!r} is not strictly positive"
        )
    if np.any(lo > hi):
        bad = int(np.flatnonzero(lo > hi)[0])
        raise _violation(
            seam, f"bounds inverted at {bad}: x_l={lo[bad]!r} > x_u={hi[bad]!r}"
        )
    below = arr < lo - tol
    if np.any(below):
        bad = int(np.flatnonzero(below)[0])
        raise _violation(
            seam, f"x[{bad}] = {arr[bad]!r} lies below its lower bound {lo[bad]!r}"
        )
    above = arr > hi + tol
    if np.any(above):
        bad = int(np.flatnonzero(above)[0])
        raise _violation(
            seam, f"x[{bad}] = {arr[bad]!r} lies above its upper bound {hi[bad]!r}"
        )


def check_posynomial(
    terms: "Signomial | Iterable[tuple[float, Mapping[int, float]]]",
    *,
    seam: str = "sgp.condensation",
) -> None:
    """Verify posynomial validity (Eq. 2–3): all coefficients finite, > 0.

    Accepts a :class:`~repro.sgp.terms.Signomial` or a bare iterable of
    ``(coefficient, {var: exponent})`` pairs.  Exponents may be any real
    number (that is what makes it a posynomial rather than a polynomial)
    but must be finite.
    """
    if not _enabled:
        return
    term_iter = terms.terms() if hasattr(terms, "terms") else terms
    for coeff, exponents in term_iter:
        if not math.isfinite(coeff) or coeff <= 0.0:
            raise _violation(
                seam,
                f"coefficient {coeff!r} breaks posynomial validity "
                f"(must be finite and > 0)",
            )
        for var, exp in exponents.items():
            if not math.isfinite(exp):
                raise _violation(
                    seam, f"exponent of x_{var} is not finite: {exp!r}"
                )


def check_monotone_deviations(
    deviations: "np.ndarray | Iterable[float]",
    *,
    max_abs: float = 1e6,
    seam: str = "optimize.multi_vote",
) -> None:
    """Verify solved deviation variables (Eq. 15) are sane.

    Each unshifted deviation ``d`` must be finite and within the
    encoder's cap: ``|d| ≤ max_abs`` (the shifted solver variable is
    box-bounded, so anything larger means the shift bookkeeping broke).
    A deviation far beyond the cap would park the sigmoid objective in
    its saturated region and silently stop penalizing violations.
    """
    if not _enabled:
        return
    arr = np.asarray(list(deviations) if not isinstance(deviations, np.ndarray) else deviations, dtype=float)
    if arr.size == 0:
        return
    if not np.all(np.isfinite(arr)):
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise _violation(seam, f"deviation d[{bad}] = {arr[bad]!r} is not finite")
    magnitude = np.abs(arr)
    if np.any(magnitude > max_abs):
        bad = int(np.flatnonzero(magnitude > max_abs)[0])
        raise _violation(
            seam,
            f"deviation d[{bad}] = {arr[bad]!r} exceeds the encoder cap "
            f"{max_abs!r} — the shift bookkeeping is broken",
        )


def check_delta_scores(
    patched: "np.ndarray | Iterable[float]",
    reference: "np.ndarray | Iterable[float]",
    *,
    tol: float = DELTA_SCORE_TOL,
    seam: str = "engine.delta",
) -> None:
    """Verify a delta-revalidated score vector against a cold recompute.

    The delta correction (Eq. 7–9 expanded around the pre-patch matrix)
    computes the *same* truncated sum as full propagation, merely
    reassociated — so every entry must satisfy
    ``|patched − reference| ≤ tol · (1 + |reference|)``.  Anything
    larger means the correction formula (not float rounding) is wrong.
    """
    if not _enabled:
        return
    a = np.asarray(patched, dtype=float)
    b = np.asarray(reference, dtype=float)
    if a.shape != b.shape:
        raise _violation(
            seam,
            f"revalidated vector shape {a.shape} does not match the cold "
            f"recompute shape {b.shape}",
        )
    bad_mask = np.abs(a - b) > tol * (1.0 + np.abs(b))
    if np.any(bad_mask):
        bad = int(np.flatnonzero(bad_mask)[0])
        raise _violation(
            seam,
            f"revalidated score [{bad}] = {a[bad]!r} drifted from the cold "
            f"recompute {b[bad]!r} (|Δ| = {abs(a[bad] - b[bad])!r}, "
            f"tol {tol})",
        )


def check_push_scores(
    pushed: "np.ndarray | Iterable[float]",
    reference: "np.ndarray | Iterable[float]",
    *,
    budget: float,
    tol: float = PUSH_SCORE_TOL,
    seam: str = "engine.push",
) -> None:
    """Verify local-push scores against the dense dynamic program.

    The push kernel's drop-error accounting guarantees a per-target
    absolute bound (its reported ``error_bound``); every entry must
    satisfy ``|pushed − reference| ≤ budget + tol · (1 + |reference|)``
    — the derived budget plus float-reassociation slack.  Anything
    larger means the budget derivation (not rounding) is wrong.
    """
    if not _enabled:
        return
    if not (math.isfinite(budget) and budget >= 0.0):
        raise _violation(
            seam, f"push error budget {budget!r} is not a finite non-negative "
            f"number"
        )
    a = np.asarray(pushed, dtype=float)
    b = np.asarray(reference, dtype=float)
    if a.shape != b.shape:
        raise _violation(
            seam,
            f"push vector shape {a.shape} does not match the dense "
            f"reference shape {b.shape}",
        )
    bad_mask = np.abs(a - b) > budget + tol * (1.0 + np.abs(b))
    if np.any(bad_mask):
        bad = int(np.flatnonzero(bad_mask)[0])
        raise _violation(
            seam,
            f"push score [{bad}] = {a[bad]!r} drifted from the dense "
            f"reference {b[bad]!r} (|Δ| = {abs(a[bad] - b[bad])!r}, "
            f"budget {budget!r}, tol {tol})",
        )


def check_finite_csr_data(
    data: "np.ndarray",
    *,
    positions: "Iterable[int] | None" = None,
    seam: str = "engine.patch",
) -> None:
    """Verify CSR weight-buffer entries after an in-place engine patch.

    Every patched entry (or the whole buffer, when ``positions`` is
    ``None``) must be finite and strictly positive — a zero or NaN in
    the cached adjacency silently corrupts every similarity served
    until the next full rebuild.
    """
    if not _enabled:
        return
    if positions is None:
        view: Any = data
        index_of = range(len(data))
    else:
        index_list = list(positions)
        view = data[index_list] if len(index_list) else data[:0]
        index_of = index_list
    bad_mask = ~(np.isfinite(view) & (view > 0.0))
    if np.any(bad_mask):
        offset = int(np.flatnonzero(bad_mask)[0])
        position = list(index_of)[offset]
        raise _violation(
            seam,
            f"CSR data[{position}] = {view[offset]!r} is not a finite "
            f"positive weight",
        )
