"""Correctness tooling: custom AST lint rules and runtime contracts.

Two halves, one goal — turning the paper's implicit invariants into
enforced ones:

- :mod:`repro.devtools.lint` — project-specific static rules
  (R001–R005) run by ``repro-kg lint`` and the CI lint gate;
- :mod:`repro.devtools.contracts` — cheap assertable invariant checks
  (row-stochasticity, box bounds, posynomial validity, deviation
  sanity) installed at the seams and switched on with
  ``REPRO_CONTRACTS=1`` / :func:`enable_contracts`.

See DESIGN.md § Static analysis & invariants.
"""

from repro.devtools.contracts import (
    ContractViolation,
    check_finite_csr_data,
    check_monotone_deviations,
    check_posynomial,
    check_row_stochastic,
    check_weight_bounds,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
)
from repro.devtools.lint import (
    RULES,
    LintViolation,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "enable_contracts",
    "disable_contracts",
    "check_row_stochastic",
    "check_weight_bounds",
    "check_posynomial",
    "check_monotone_deviations",
    "check_finite_csr_data",
    "RULES",
    "LintViolation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_violations",
]
