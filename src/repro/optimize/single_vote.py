"""The single-vote solution (Algorithm 1, Section IV).

Negative votes are processed one at a time, greedily: each vote becomes
its own SGP (hard constraints, no deviation variables), the program is
solved, the weights are written back and re-normalized, and the next
vote starts from the *updated* graph.  Positive votes are ignored — in
the single-vote setting the top answer is already on top, so there is
nothing to solve (Section IV-B).

The paper discusses the consequences (Section V): later votes overwrite
earlier ones, conflicts are not reconciled, and positive feedback is
wasted — which is exactly what Tables IV/V show, and why the multi-vote
solution exists.  This implementation preserves those semantics
faithfully so the comparison can be reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import SGPModelError, SGPSolverError
from repro.graph.augmented import AugmentedGraph
from repro.obs import trace_span
from repro.optimize.apply import apply_edge_weights, solution_edge_weights
from repro.optimize.encoder import (
    DEFAULT_LOWER,
    DEFAULT_MARGIN,
    DEFAULT_UPPER,
    encode_votes,
)
from repro.optimize.objectives import distance_signomial
from repro.optimize.report import OptimizeReport, record_optimize_run
from repro.serving.params import SimilarityParams, resolve_similarity_params
from repro.sgp.solver import SGPSolution, solve_sgp
from repro.votes.types import Vote, VoteSet


@dataclass
class VoteOutcome:
    """What happened to one negative vote during Algorithm 1."""

    vote: Vote
    solution: "SGPSolution | None"
    changed_edges: dict = field(default_factory=dict)
    skipped_reason: str = ""

    @property
    def solved(self) -> bool:
        """Whether an SGP was actually solved for this vote."""
        return self.solution is not None


@dataclass
class SingleVoteReport(OptimizeReport):
    """Aggregate record of a single-vote optimization run.

    Extends :class:`~repro.optimize.report.OptimizeReport` (``elapsed``,
    ``solve_time``, ``changed_edges``, ``summary()``) with the per-vote
    outcomes of the greedy Algorithm 1 loop.
    """

    strategy = "single-vote"

    outcomes: list[VoteOutcome] = field(default_factory=list)
    encode_time: float = 0.0

    @property
    def num_solved(self) -> int:
        """How many votes produced (and solved) an SGP."""
        return sum(1 for o in self.outcomes if o.solved)

    @property
    def num_skipped(self) -> int:
        """How many votes were skipped (positive, or nothing to encode)."""
        return sum(1 for o in self.outcomes if not o.solved)

    @property
    def changed_edges(self) -> dict:
        """Union of per-vote edge changes; later votes win (greedy order).

        ``{(head, tail): (old, new)}`` where ``old`` comes from the last
        vote that touched the edge — the greedy loop rewrites the graph
        between votes, so a global "before" does not exist here.
        """
        merged: dict = {}
        for outcome in self.outcomes:
            merged.update(outcome.changed_edges)
        return merged

    def all_changed_edges(self) -> dict:
        """Backward-compatible alias for :attr:`changed_edges`."""
        return self.changed_edges

    def summary(self) -> str:
        base = super().summary()
        return f"{base}; {self.num_solved} vote(s) solved, {self.num_skipped} skipped"


def solve_single_votes(
    aug: AugmentedGraph,
    votes: "VoteSet | list[Vote]",
    *,
    params: "SimilarityParams | None" = None,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    margin: float = DEFAULT_MARGIN,
    lower: float = DEFAULT_LOWER,
    upper: float = DEFAULT_UPPER,
    solver_method: str = "slsqp",
    max_iter: int = 200,
    normalize: bool = True,
    in_place: bool = False,
) -> tuple[AugmentedGraph, SingleVoteReport]:
    """Run Algorithm 1 over the negative votes of ``votes``.

    Parameters
    ----------
    aug:
        The augmented graph ``G`` to optimize.  Left untouched unless
        ``in_place`` is set; the optimized graph ``G*`` is returned.
    votes:
        The vote set ``T``; only ``T⁻`` (negative votes) is used.
    params:
        Similarity parameters
        (:class:`~repro.serving.params.SimilarityParams`); the bare
        ``max_length``/``restart_prob`` keywords remain as deprecated
        shims.
    solver_method, max_iter:
        Passed to :func:`repro.sgp.solver.solve_sgp`.
    normalize:
        Run ``NormalizeEdges`` after each vote (Algorithm 1 line 16).
    in_place:
        Mutate ``aug`` directly instead of copying (the split-and-merge
        driver uses this on its own working copies).

    Returns
    -------
    (optimized graph, report)
    """
    params = resolve_similarity_params(
        params, max_length=max_length, restart_prob=restart_prob
    )
    max_length = params.max_length
    restart_prob = params.restart_prob
    with trace_span("optimize.single_vote") as span:
        result = aug if in_place else aug.copy()
        report = SingleVoteReport()
        start = time.perf_counter()
        negative = [v for v in votes if v.is_negative]
        for index, vote in enumerate(negative):
            with trace_span(
                "optimize.vote", index=index, query=str(vote.query)
            ) as vote_span:
                encode_start = time.perf_counter()
                try:
                    encoded = encode_votes(
                        result,
                        [vote],
                        use_deviations=False,
                        max_length=max_length,
                        restart_prob=restart_prob,
                        margin=margin,
                        lower=lower,
                        upper=upper,
                    )
                except SGPModelError as exc:
                    vote_span.set_attrs(skipped=str(exc))
                    report.outcomes.append(
                        VoteOutcome(vote=vote, solution=None, skipped_reason=str(exc))
                    )
                    continue
                if not encoded.constraint_votes:
                    vote_span.set_attrs(skipped="no constraints")
                    report.outcomes.append(
                        VoteOutcome(
                            vote=vote, solution=None, skipped_reason="no constraints"
                        )
                    )
                    continue
                report.encode_time += time.perf_counter() - encode_start

                initial = encoded.problem.x0[: encoded.num_edge_vars]
                encoded.problem.set_objective(distance_signomial(initial))
                try:
                    solution = solve_sgp(
                        encoded.problem, method=solver_method, max_iter=max_iter
                    )
                except SGPSolverError as exc:
                    vote_span.set_attrs(skipped=str(exc))
                    report.outcomes.append(
                        VoteOutcome(vote=vote, solution=None, skipped_reason=str(exc))
                    )
                    continue
                report.solve_time += solution.elapsed

                changes = apply_edge_weights(
                    result,
                    solution_edge_weights(encoded, solution),
                    normalize=normalize,
                )
                vote_span.set_attrs(
                    changed_edges=len(changes),
                    solver_nit=solution.nit,
                    max_residual=solution.max_residual,
                )
                report.outcomes.append(
                    VoteOutcome(vote=vote, solution=solution, changed_edges=changes)
                )
        report.elapsed = time.perf_counter() - start
        span.set_attrs(
            num_votes=len(negative),
            num_solved=report.num_solved,
            num_skipped=report.num_skipped,
            changed_edges=len(report.changed_edges),
        )
        record_optimize_run(report)
        return result, report
