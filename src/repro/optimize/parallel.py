"""Parallel / distributed execution of per-cluster solves (Section VI).

The clusters produced by the split step are independent SGPs, which the
paper exploits two ways: solving them on a process pool locally, and
distributing them over four machines ("the distributed approach
significantly improves the scalability").  This module provides:

- :func:`solve_clusters_parallel` — a ``multiprocessing`` pool over the
  cluster solves, returning slim picklable results;
- :func:`simulated_makespan` — the idealized wall-clock of running the
  measured per-cluster times on ``n`` workers under LPT (longest
  processing time first) list scheduling.  The benchmark uses it to
  reproduce the paper's "Distributed S-M Strategy" series without
  needing four machines: the real distributed runtime is the makespan
  plus dispatch overhead.
"""

from __future__ import annotations

import heapq
import multiprocessing
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.graph.augmented import AugmentedGraph
from repro.obs import trace_span
from repro.optimize.apply import weight_deltas
from repro.votes.types import Vote


@dataclass
class ClusterResult:
    """Slim, picklable result of solving one cluster's multi-vote SGP."""

    index: int
    num_votes: int
    deltas: dict = field(default_factory=dict)
    elapsed: float = 0.0
    solve_time: float = 0.0
    num_constraints: int = 0
    num_satisfied: int = 0
    num_discarded: int = 0
    #: Total trust weight of the cluster's votes (``n_C`` of the merge
    #: rule; equals ``num_votes`` when all votes carry unit weight).
    total_weight: float = 0.0


def solve_one_cluster(
    aug: AugmentedGraph,
    cluster_votes: Sequence[Vote],
    index: int,
    options: dict,
) -> ClusterResult:
    """Solve the multi-vote SGP of one cluster against the base graph.

    Runs :func:`repro.optimize.multi_vote.solve_multi_vote` on a copy of
    ``aug`` (clusters are independent and all start from the same base
    weights) and reduces the outcome to weight *deltas* for the merge
    step.
    """
    from repro.optimize.multi_vote import solve_multi_vote  # local: avoid cycle

    with trace_span(
        "optimize.cluster", index=index, num_votes=len(cluster_votes)
    ) as span:
        _graph, report = solve_multi_vote(aug, list(cluster_votes), **options)
        span.set_attrs(
            num_constraints=report.num_constraints,
            num_satisfied=report.num_satisfied_constraints,
            num_discarded=len(report.discarded_votes),
        )
    return ClusterResult(
        index=index,
        num_votes=len(cluster_votes),
        deltas=weight_deltas(report.changed_edges),
        elapsed=report.elapsed,
        solve_time=report.solve_time,
        num_constraints=report.num_constraints,
        num_satisfied=report.num_satisfied_constraints,
        num_discarded=len(report.discarded_votes),
        total_weight=float(sum(v.weight for v in cluster_votes)),
    )


#: Per-process base graph, installed once by the pool initializer so
#: cluster payloads stay slim (votes + options only).  Shipping the full
#: augmented graph inside every payload used to serialize it once *per
#: cluster*; the initializer ships it once per worker.
_POOL_GRAPH: "AugmentedGraph | None" = None


def _init_pool(aug: AugmentedGraph) -> None:
    global _POOL_GRAPH
    _POOL_GRAPH = aug


def _pool_worker(payload):
    cluster_votes, index, options = payload
    return solve_one_cluster(_POOL_GRAPH, cluster_votes, index, options)


def solve_clusters_parallel(
    aug: AugmentedGraph,
    clusters: Sequence[Sequence[Vote]],
    *,
    num_workers: int = 4,
    options: "dict | None" = None,
) -> list[ClusterResult]:
    """Solve every cluster on a process pool.

    Parameters
    ----------
    aug:
        The base augmented graph.  Shipped to each worker exactly once
        through the pool initializer (with the ``fork`` start method it
        is inherited copy-on-write, costing no serialization at all);
        per-cluster payloads carry only the votes and options.
    clusters:
        One vote sequence per cluster.
    num_workers:
        Pool size (the paper's distributed experiment uses 4 machines).
        ``1`` falls back to in-process execution, which is also the path
        taken when the pool cannot be created (restricted environments).
    options:
        Keyword arguments forwarded to ``solve_multi_vote``.

    Returns
    -------
    list[ClusterResult]
        In cluster order.
    """
    if num_workers < 1:
        raise ReproError(f"num_workers must be at least 1, got {num_workers}")
    opts = dict(options or {})
    payloads = [
        (list(cluster), index, opts) for index, cluster in enumerate(clusters)
    ]
    with trace_span(
        "optimize.solve_clusters",
        num_clusters=len(payloads),
        num_workers=num_workers,
    ) as span:
        if num_workers == 1 or len(payloads) <= 1:
            span.set_attrs(pool=False)
            return [
                solve_one_cluster(aug, cluster_votes, index, options_)
                for cluster_votes, index, options_ in payloads
            ]
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(
                processes=min(num_workers, len(payloads)),
                initializer=_init_pool,
                initargs=(aug,),
            ) as pool:
                results = pool.map(_pool_worker, payloads)
            # Worker-side spans/metrics live in the worker processes;
            # surface the measured per-cluster times on this span so the
            # parent trace still shows where the wall-clock went.
            span.set_attrs(
                pool=True,
                cluster_seconds=[round(r.elapsed, 6) for r in results],
            )
        except (OSError, ValueError):
            # Sandboxed environments may forbid subprocesses; degrade
            # gracefully.
            span.set_attrs(pool=False, pool_unavailable=True)
            results = [
                solve_one_cluster(aug, cluster_votes, index, options_)
                for cluster_votes, index, options_ in payloads
            ]
        return sorted(results, key=lambda r: r.index)


def simulated_makespan(
    times: Sequence[float],
    num_workers: int,
    *,
    dispatch_overhead: float = 0.0,
) -> float:
    """Idealized parallel wall-clock under LPT list scheduling.

    Sorts the per-cluster times descending and repeatedly assigns the
    next job to the least-loaded worker; the makespan is the heaviest
    worker's load.  LPT is within 4/3 of optimal, which is accurate
    enough to model the paper's 4-machine deployment.

    Parameters
    ----------
    times:
        Measured sequential per-cluster solve times.
    num_workers:
        Number of machines.
    dispatch_overhead:
        Fixed per-cluster cost (serialization + network) added to each
        job before scheduling.
    """
    if num_workers < 1:
        raise ReproError(f"num_workers must be at least 1, got {num_workers}")
    if dispatch_overhead < 0:
        raise ReproError("dispatch_overhead must be non-negative")
    loads = [0.0] * num_workers
    heapq.heapify(loads)
    for duration in sorted((float(t) for t in times), reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + duration + dispatch_overhead)
    return max(loads) if loads else 0.0
