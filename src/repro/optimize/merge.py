"""The merge rule of the split-and-merge strategy (Section VI-A).

After the per-cluster SGPs are solved, each cluster reports how it
changed each edge weight.  Because Affinity Propagation minimizes
cross-cluster edge overlap, most edges are changed by exactly one
cluster; for the others the paper's voting mechanism decides:

- the *sign* of the merged change is the sign of the vote-count-weighted
  sum ``Σ_C n_C · Δx_C``;
- the *magnitude* is the extreme in that direction — the maximum of the
  per-cluster changes when the sign is positive, the minimum when
  negative (the paper's Fig. 4 example: changes ⟨−0.01, +0.03, +0.07⟩
  with counts ⟨10, 8, 9⟩ merge to +0.07).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ReproError

#: Deltas below this magnitude count as "unchanged" for merge purposes.
MERGE_TOL = 1e-9


def merge_changes(
    cluster_deltas: Sequence[tuple[Mapping, int]],
) -> dict:
    """Merge per-cluster weight changes into one delta per edge.

    Parameters
    ----------
    cluster_deltas:
        One ``({edge: delta}, num_votes)`` pair per cluster, where
        ``delta`` is the cluster's (signed) change to the edge weight
        and ``num_votes`` is the cluster's vote count ``n_C`` (or, with
        trust-weighted votes, the cluster's total trust weight — any
        non-negative real).

    Returns
    -------
    dict
        ``{edge: merged_delta}`` over every edge any cluster changed.
    """
    if not cluster_deltas:
        raise ReproError("merge_changes needs at least one cluster result")
    per_edge: dict = {}
    for deltas, num_votes in cluster_deltas:
        if num_votes < 0:
            raise ReproError(f"negative vote count {num_votes}")
        for edge, delta in deltas.items():
            if abs(delta) <= MERGE_TOL:
                continue
            per_edge.setdefault(edge, []).append((float(delta), float(num_votes)))

    merged: dict = {}
    for edge, entries in per_edge.items():
        if len(entries) == 1:
            merged[edge] = entries[0][0]
            continue
        weighted_sum = sum(delta * votes for delta, votes in entries)
        deltas_only = [delta for delta, _ in entries]
        merged[edge] = max(deltas_only) if weighted_sum >= 0 else min(deltas_only)
    return merged


def merged_weights(
    base_weights: Mapping,
    merged_deltas: Mapping,
    *,
    lower: float = 1e-4,
    upper: float = 1.0,
) -> dict:
    """Apply merged deltas to the base weights, clipped into bounds.

    ``base_weights`` are the pre-split weights of the edges in
    ``merged_deltas``; the clip keeps the result a legal transition
    probability even when two clusters pushed the same edge in the same
    direction (their extremes can overshoot).
    """
    out = {}
    for edge, delta in merged_deltas.items():
        try:
            base = float(base_weights[edge])
        except KeyError:
            raise ReproError(f"no base weight recorded for edge {edge!r}") from None
        out[edge] = min(max(base + float(delta), lower), upper)
    return out
