"""The online feedback loop: votes stream in, the graph keeps improving.

:class:`OnlineOptimizer` is the deployment-shaped wrapper around the
batch solutions: it buffers incoming votes, asks a batching policy
(:mod:`repro.votes.stream`) when to optimize, runs the configured
strategy over each batch on the *live* graph, and keeps a trajectory of
per-batch outcomes so the operator can watch quality converge.

A strategy escalation mirrors the paper's efficiency story: small
batches go to the basic multi-vote solution, large batches to
split-and-merge (whose clustering overhead only pays off at scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VoteError
from repro.eval.harness import vote_omega_avg
from repro.graph.augmented import AugmentedGraph
from repro.optimize.multi_vote import solve_multi_vote
from repro.optimize.split_merge import solve_split_merge
from repro.votes.stream import CountPolicy
from repro.votes.types import Vote, VoteSet


@dataclass
class BatchOutcome:
    """One optimization pass over one batch of streamed votes."""

    batch_index: int
    num_votes: int
    num_negative: int
    strategy: str
    omega_avg: float
    elapsed: float
    changed_edges: int


@dataclass
class OnlineOptimizer:
    """Streaming wrapper over the batch optimizers.

    Parameters
    ----------
    aug:
        The live augmented graph; optimized *in place* batch by batch.
    policy:
        A batching policy with ``should_optimize(pending) -> bool``
        (defaults to every 10 votes).
    split_merge_threshold:
        Batches with at least this many votes use split-and-merge
        instead of the basic multi-vote solution.
    options:
        Extra keyword arguments forwarded to the batch solvers.
    """

    aug: AugmentedGraph
    policy: object = field(default_factory=CountPolicy)
    split_merge_threshold: int = 15
    options: dict = field(default_factory=dict)
    pending: VoteSet = field(default_factory=VoteSet)
    history: list[BatchOutcome] = field(default_factory=list)

    def submit(self, vote: Vote) -> "BatchOutcome | None":
        """Buffer one vote; optimize (and return the outcome) if due."""
        if not isinstance(vote, Vote):
            raise VoteError(f"expected a Vote, got {type(vote).__name__}")
        self.pending.add(vote)
        if self.policy.should_optimize(self.pending):
            return self.flush()
        return None

    def flush(self) -> "BatchOutcome | None":
        """Optimize against all pending votes now (no-op when empty)."""
        if not len(self.pending):
            return None
        batch = self.pending
        self.pending = VoteSet()

        if len(batch) >= self.split_merge_threshold:
            strategy = "split-merge"
            _, run = solve_split_merge(
                self.aug, batch, in_place=True, **self.options
            )
            changed = len(run.changed_edges)
        else:
            strategy = "multi"
            _, run = solve_multi_vote(
                self.aug, batch, in_place=True, **self.options
            )
            changed = len(run.changed_edges)

        outcome = BatchOutcome(
            batch_index=len(self.history),
            num_votes=len(batch),
            num_negative=batch.num_negative,
            strategy=strategy,
            omega_avg=vote_omega_avg(self.aug, batch),
            elapsed=run.elapsed,
            changed_edges=changed,
        )
        self.history.append(outcome)
        return outcome

    @property
    def total_votes_processed(self) -> int:
        """Votes consumed by completed optimization passes."""
        return sum(outcome.num_votes for outcome in self.history)

    def omega_trajectory(self) -> list[float]:
        """Per-batch Ω_avg values, in batch order."""
        return [outcome.omega_avg for outcome in self.history]
