"""The online feedback loop: votes stream in, the graph keeps improving.

:class:`OnlineOptimizer` is the deployment-shaped wrapper around the
batch solutions: it buffers incoming votes, asks a batching policy
(:mod:`repro.votes.stream`) when to optimize, runs the configured
strategy over each batch on the *live* graph, and keeps a trajectory of
per-batch outcomes so the operator can watch quality converge.

A strategy escalation mirrors the paper's efficiency story: small
batches go to the basic multi-vote solution, large batches to
split-and-merge (whose clustering overhead only pays off at scale).

Durable mode (``store=DurableStore(...)``) makes the loop crash-safe:

- ``submit()`` appends the vote to the write-ahead log (fsynced)
  *before* buffering it — log before apply;
- a successful ``flush()`` checkpoints: the graph is snapshotted
  atomically, stamped with the batch's last WAL sequence, and the WAL
  is rotated past it — snapshot after flush;
- :meth:`OnlineOptimizer.recover` rebuilds the pre-crash state from the
  newest snapshot plus a deterministic replay of the WAL tail through
  the same policy and solvers, reproducing the weights bit for bit.

A solver failure during ``flush()`` re-queues the batch (it is *not*
discarded), rolls the knowledge-graph weights back to their pre-flush
values (the solvers run in place, so an exception mid-apply could
otherwise leave a partial solve behind), and re-raises — the votes
survive in memory (and, in durable mode, on disk) and a retry re-runs
against exactly the state a durable recovery would rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import PersistenceError, VoteError
from repro.eval.harness import vote_omega_avg
from repro.obs import trace_span
from repro.graph.augmented import AugmentedGraph
from repro.optimize.multi_vote import solve_multi_vote
from repro.optimize.split_merge import solve_split_merge
from repro.persistence import DurableStore, RecoveredState, WalRecord
from repro.utils.sync import mutator
from repro.votes.stream import CountPolicy
from repro.votes.types import Vote, VoteSet

if TYPE_CHECKING:  # annotation only; the engine is passed in, never built
    from repro.serving.engine import SimilarityEngine


@dataclass
class BatchOutcome:
    """One optimization pass over one batch of streamed votes.

    ``edge_keys`` lists the ``(head, tail)`` knowledge-graph edges the
    solve changed — the optimizer worker reads the solved weights for
    exactly these keys off its shadow graph when publishing a patch
    epoch.  ``last_seq`` is the newest WAL sequence the batch covered
    (``None`` when the batch carried no tracked sequences), the mark a
    post-publish checkpoint rotates the WAL up to.
    """

    batch_index: int
    num_votes: int
    num_negative: int
    strategy: str
    omega_avg: float
    elapsed: float
    changed_edges: int
    edge_keys: tuple = ()
    last_seq: "int | None" = None


@dataclass
class OnlineOptimizer:
    """Streaming wrapper over the batch optimizers.

    Parameters
    ----------
    aug:
        The live augmented graph; optimized *in place* batch by batch.
    policy:
        A batching policy with ``should_optimize(pending) -> bool``
        (defaults to every 10 votes).
    split_merge_threshold:
        Batches with at least this many votes use split-and-merge
        instead of the basic multi-vote solution.
    options:
        Extra keyword arguments forwarded to the batch solvers.
    store:
        Optional :class:`~repro.persistence.DurableStore` enabling
        durable mode (vote WAL + snapshot checkpoints).  For recovery
        to reproduce state exactly, reopen the store with the *same*
        policy and solver options the original run used — replay is
        deterministic only under identical configuration.
    engine:
        Optional :class:`~repro.serving.engine.SimilarityEngine`
        serving the same graph.  Each successful :meth:`flush`
        revalidates it immediately, so the batch's weight patches are
        folded into one delta-revalidation pass
        (:mod:`repro.serving.delta`) off the serve path and the first
        post-flush serve hits a warm cache.
    """

    aug: AugmentedGraph
    policy: object = field(default_factory=CountPolicy)
    split_merge_threshold: int = 15
    options: dict = field(default_factory=dict)
    pending: VoteSet = field(default_factory=VoteSet)
    history: list[BatchOutcome] = field(default_factory=list)
    store: "DurableStore | None" = None
    engine: "SimilarityEngine | None" = None
    _pending_seqs: list[int] = field(default_factory=list, init=False, repr=False)

    @mutator
    def submit(self, vote: Vote) -> "BatchOutcome | None":
        """Buffer one vote; optimize (and return the outcome) if due.

        In durable mode the vote is fsynced to the WAL *before* it is
        buffered: once ``submit`` returns, no crash can lose it.  The
        sequence number is tracked only after the buffer accepted the
        vote — a vote the buffer rejects (a deduplicating or validating
        :class:`~repro.votes.types.VoteSet` subclass) stays in the WAL
        but never in ``_pending_seqs``, so a later checkpoint cannot
        stamp a snapshot with a sequence that was never applied.
        Recovery replays the logged vote into the same buffer, which
        rejects it the same way — rejected votes are dropped for good,
        never resurrected.
        """
        if not isinstance(vote, Vote):
            raise VoteError(f"expected a Vote, got {type(vote).__name__}")
        if self.store is not None:
            seq = self.store.log_vote(vote)
            self.pending.add(vote)
            self._pending_seqs.append(seq)
        else:
            self.pending.add(vote)
        if self.policy.should_optimize(self.pending):
            return self.flush()
        return None

    @mutator
    def buffer(self, vote: Vote, *, seq: "int | None" = None) -> "BatchOutcome | None":
        """Buffer one *already-durable* vote; optimize if due.

        The concurrent ingest path (:class:`repro.serving.worker.OptimizerWorker`)
        logs votes to the WAL on the caller's thread — log before
        enqueue — and hands the assigned sequence over here, so nothing
        is re-logged.  Seqs and pending votes stay in lockstep exactly
        as in :meth:`submit`: the seq is tracked only once the buffer
        accepted the vote.
        """
        if not isinstance(vote, Vote):
            raise VoteError(f"expected a Vote, got {type(vote).__name__}")
        self.pending.add(vote)
        if seq is not None:
            self._pending_seqs.append(seq)
        if self.policy.should_optimize(self.pending):
            return self.flush()
        return None

    @mutator
    def flush(self) -> "BatchOutcome | None":
        """Optimize against all pending votes now (no-op when empty).

        If the solver raises, the batch is restored to the pending
        buffer (ahead of any votes submitted since), the graph's
        knowledge-graph weights are rolled back to their pre-flush
        values, and the exception propagates — a failed flush never
        discards votes *and* never leaves a half-applied solve behind,
        so an in-process retry re-runs the batch against exactly the
        state a durable recovery would rebuild.  On success in durable
        mode, the graph is checkpointed (snapshot + WAL rotation)
        before the outcome is returned.
        """
        if not len(self.pending):
            return None
        batch = self.pending
        batch_seqs = self._pending_seqs
        self.pending = VoteSet()
        self._pending_seqs = []
        # The solvers run with in_place=True, and their one mutation of
        # the graph is knowledge-graph edge weights (apply_edge_weights)
        # — snapshot those so an exception thrown mid-apply can be
        # rolled back instead of leaving a partial solve on the live
        # graph.
        weights_before = {edge.key: edge.weight for edge in self.aug.kg_edges()}

        try:
            if len(batch) >= self.split_merge_threshold:
                strategy = "split-merge"
                _, run = solve_split_merge(
                    self.aug, batch, in_place=True, **self.options
                )
                changed = len(run.changed_edges)
            else:
                strategy = "multi"
                _, run = solve_multi_vote(
                    self.aug, batch, in_place=True, **self.options
                )
                changed = len(run.changed_edges)
        except BaseException:
            # Roll back any weights the failed solve already wrote, so
            # a retry starts from the same graph recovery would rebuild.
            for (head, tail), weight in weights_before.items():
                if self.aug.kg_weight(head, tail) != weight:
                    self.aug.set_kg_weight(head, tail, weight)
            # Re-queue: the failed batch keeps its arrival order ahead
            # of anything submitted while it was (briefly) detached.
            self.pending = VoteSet(batch.votes + self.pending.votes)
            self._pending_seqs = batch_seqs + self._pending_seqs
            raise

        if self.store is not None and batch_seqs:
            self.store.checkpoint(self.aug, max(batch_seqs))
        if self.engine is not None:
            self.engine.revalidate()
        outcome = BatchOutcome(
            batch_index=len(self.history),
            num_votes=len(batch),
            num_negative=batch.num_negative,
            strategy=strategy,
            omega_avg=vote_omega_avg(self.aug, batch),
            elapsed=run.elapsed,
            changed_edges=changed,
            edge_keys=tuple(run.changed_edges),
            last_seq=max(batch_seqs) if batch_seqs else None,
        )
        self.history.append(outcome)
        return outcome

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot the current graph explicitly (durable mode only).

        Useful before a planned shutdown while votes are still pending:
        the snapshot covers everything already *applied*; pending votes
        stay in the WAL and are re-buffered on recovery.
        """
        if self.store is None:
            raise PersistenceError("checkpoint() requires a DurableStore")
        if self._pending_seqs:
            applied_through = min(self._pending_seqs) - 1
        else:
            applied_through = self.store.wal.last_seq
        self.store.checkpoint(self.aug, applied_through)

    @classmethod
    def recover(
        cls,
        store: DurableStore,
        *,
        fallback: "AugmentedGraph | None" = None,
        policy: "object | None" = None,
        split_merge_threshold: int = 15,
        options: "dict | None" = None,
        state: "RecoveredState | None" = None,
    ) -> "OnlineOptimizer":
        """Rebuild the optimizer from a store's snapshot + WAL tail.

        Loads the newest valid snapshot (or ``fallback`` when none
        exists yet — the bootstrap graph of a first run) and replays
        the WAL records past the snapshot through the normal
        submit/flush machinery, *without* re-logging them.  With the
        same policy, threshold, and solver options as the original run,
        replay fires flushes at exactly the original batch boundaries,
        so the recovered edge weights equal the pre-crash ones bit for
        bit.

        ``state`` accepts an already-fetched
        :class:`~repro.persistence.RecoveredState` (e.g. when the
        caller inspected it first); by default the store is asked.
        """
        if state is None:
            state = store.recover()
        aug = state.aug if state.aug is not None else fallback
        if aug is None:
            raise PersistenceError(
                f"{store.directory}: no snapshot to recover from and no "
                f"fallback graph was provided"
            )
        online = cls(
            aug,
            policy=policy if policy is not None else CountPolicy(),
            split_merge_threshold=split_merge_threshold,
            options=options if options is not None else {},
            store=store,
        )
        online._replay(state.tail)
        return online

    def _replay(self, records: "tuple[WalRecord, ...] | list[WalRecord]") -> None:
        """Re-buffer already-durable votes, firing flushes as live mode did."""
        if not records:
            return
        with trace_span("wal.replay") as span:
            batches_before = len(self.history)
            for record in records:
                if record.links is not None and not self.aug.is_query(
                    record.vote.query
                ):
                    # A tail vote's query can postdate every snapshot
                    # (the concurrent ingest path logs votes for
                    # serve-time query nodes); re-attach it from the
                    # logged links so the replayed solve sees the same
                    # constraint graph the live run did.
                    self.aug.add_query(record.vote.query, dict(record.links))
                try:
                    self.pending.add(record.vote)
                except VoteError:
                    # The live run logged this vote and then had the
                    # buffer reject it; replay rejects it identically
                    # and must not track its seq (lockstep with
                    # submit()).
                    continue
                self._pending_seqs.append(record.seq)
                if self.policy.should_optimize(self.pending):
                    self.flush()
            if span.recording:
                span.set_attrs(
                    records=len(records),
                    batches_fired=len(self.history) - batches_before,
                )

    @property
    def pending_seqs(self) -> tuple[int, ...]:
        """WAL sequences of the pending votes, in buffer order.

        Stays in lockstep with ``pending`` in durable mode; empty when
        no store is attached.  The optimizer worker reads this when it
        adopts a recovered optimizer's un-flushed buffer.
        """
        return tuple(self._pending_seqs)

    @property
    def total_votes_processed(self) -> int:
        """Votes consumed by completed optimization passes."""
        return sum(outcome.num_votes for outcome in self.history)

    def omega_trajectory(self) -> list[float]:
        """Per-batch Ω_avg values, in batch order."""
        return [outcome.omega_avg for outcome in self.history]
