"""The shared return contract of the three optimization drivers.

``QASystem.optimize()`` can run any of the paper's three strategies, and
each used to return an unrelated report class — callers had to switch on
a three-way union to read even the timing fields.  All three report
classes now derive from :class:`OptimizeReport`, which guarantees:

- ``elapsed`` — wall-clock seconds of the whole run;
- ``solve_time`` — seconds spent inside the SGP solver(s);
- ``changed_edges`` — ``{(head, tail): (old_weight, new_weight)}`` of
  every knowledge-graph edge the run actually modified (a dataclass
  field on the batch strategies, a derived property on the greedy
  single-vote strategy);
- ``summary()`` — a one-line human-readable digest.

Subclasses keep their strategy-specific extras (constraint counts,
cluster structure, per-vote outcomes, ...) on top of this contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.obs import get_registry

if TYPE_CHECKING:
    from collections.abc import Mapping


@dataclass
class OptimizeReport:
    """Base record of one edge-weight optimization run.

    Concrete subclasses: :class:`~repro.optimize.single_vote.SingleVoteReport`,
    :class:`~repro.optimize.multi_vote.MultiVoteReport`, and
    :class:`~repro.optimize.split_merge.SplitMergeReport`.  Every
    subclass provides ``changed_edges`` (field or property).
    """

    #: Human-readable strategy name, overridden per subclass.
    strategy: ClassVar[str] = "optimize"

    elapsed: float = 0.0
    solve_time: float = 0.0

    if TYPE_CHECKING:
        # Declared here for the type checker only: every subclass provides
        # it as a dataclass field or a derived property, so adding it as a
        # runtime field would shadow those and change their signatures.
        changed_edges: "Mapping[tuple, tuple[float, float]]"

    @property
    def num_changed_edges(self) -> int:
        """How many knowledge-graph edges the run modified."""
        return len(self.changed_edges)

    def summary(self) -> str:
        """One-line digest of the run, uniform across strategies."""
        return (
            f"{self.strategy}: {self.num_changed_edges} edge(s) changed in "
            f"{self.elapsed:.3f}s (solve {self.solve_time:.3f}s)"
        )


def record_optimize_run(report: OptimizeReport) -> None:
    """Registry telemetry for one finished optimization run.

    Called by every driver just before returning — including the early
    returns where all votes were filtered or nothing was encodable, so
    ``optimize_runs_total`` counts attempts, not successes.
    """
    registry = get_registry()
    strategy = report.strategy
    registry.counter("optimize_runs_total", strategy=strategy).inc()
    registry.histogram("optimize_run_seconds", strategy=strategy).observe(
        report.elapsed
    )
    registry.counter("optimize_changed_edges_total", strategy=strategy).inc(
        len(report.changed_edges)
    )
