"""The multi-vote solution (Section V).

All votes — negative *and* positive — are encoded into a single SGP:

- every constraint carries a deviation variable ``d`` (Eq. 15), so
  conflicting votes do not make the program infeasible;
- the objective (Eq. 19) combines the minimal-change distance (Eq. 12)
  with the smoothed count of violated constraints (Eq. 18), weighted by
  the preference parameters ``λ1``/``λ2``;
- erroneous votes that cannot be satisfied by any weight assignment are
  removed up front by the extreme-condition feasibility judgment.

Positive votes contribute "keep the top answer on top" constraints, so
the solver is penalized for edits that would dethrone confirmed
answers — the ingredient whose absence makes the single-vote solution
*degrade* overall quality in Tables IV/V.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.devtools.contracts import check_monotone_deviations, check_weight_bounds
from repro.errors import SGPModelError
from repro.graph.augmented import AugmentedGraph
from repro.obs import get_registry, trace_span
from repro.optimize.apply import apply_edge_weights, solution_edge_weights
from repro.optimize.encoder import (
    DEFAULT_LOWER,
    DEFAULT_MARGIN,
    DEFAULT_UPPER,
    EncodedProgram,
    encode_votes,
)
from repro.optimize.objectives import (
    DEFAULT_SIGMOID_W,
    combined_objective,
    distance_objective,
    sigmoid_deviation_objective,
    step_count,
)
from repro.optimize.report import OptimizeReport, record_optimize_run
from repro.serving.params import SimilarityParams, resolve_similarity_params
from repro.sgp.solver import SGPSolution, solve_sgp
from repro.votes.feasibility import filter_feasible
from repro.votes.types import Vote, VoteSet


#: Fixed buckets for the deviation-variable magnitude histogram: the
#: Eq. 15 deviations live on [0, ~1), far below the latency scale.
DEVIATION_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass
class MultiVoteReport(OptimizeReport):
    """Record of one multi-vote optimization run.

    Extends :class:`~repro.optimize.report.OptimizeReport` (``elapsed``,
    ``solve_time``, ``changed_edges``, ``summary()``) with the batch
    SGP's specifics.
    """

    strategy = "multi-vote"

    solution: "SGPSolution | None" = None
    encoded: "EncodedProgram | None" = None
    changed_edges: dict = field(default_factory=dict)
    discarded_votes: list[Vote] = field(default_factory=list)
    num_votes_encoded: int = 0
    num_constraints: int = 0
    num_violated_deviations: int = 0
    filter_time: float = 0.0
    encode_time: float = 0.0

    @property
    def num_satisfied_constraints(self) -> int:
        """Constraints satisfied at the solution (soft form)."""
        if self.solution is None:
            return 0
        return self.solution.num_satisfied

    def summary(self) -> str:
        base = super().summary()
        return (
            f"{base}; {self.num_satisfied_constraints}/{self.num_constraints} "
            f"constraints satisfied, {len(self.discarded_votes)} vote(s) "
            f"discarded"
        )


def solve_multi_vote(
    aug: AugmentedGraph,
    votes: "VoteSet | list[Vote]",
    *,
    lambda1: float = 0.5,
    lambda2: float = 0.5,
    sigmoid_w: float = DEFAULT_SIGMOID_W,
    feasibility_filter: bool = True,
    params: "SimilarityParams | None" = None,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    margin: float = DEFAULT_MARGIN,
    lower: float = DEFAULT_LOWER,
    upper: float = DEFAULT_UPPER,
    solver_method: str = "slsqp",
    max_iter: int = 300,
    normalize: bool = False,
    in_place: bool = False,
) -> tuple[AugmentedGraph, MultiVoteReport]:
    """Solve all of ``votes`` in one batch SGP.

    Unlike Algorithm 1, the multi-vote solution does *not* re-normalize
    out-weights after the solve (the paper's ``NormalizeEdges`` step
    appears only in the single-vote algorithm): re-normalization resets
    any change routed through an out-degree-1 node — the majority of
    nodes on sparse graphs — which would undo most of the optimization.
    The box bounds already keep each weight a valid probability; pass
    ``normalize=True`` to restore per-node mass anyway.

    Parameters
    ----------
    lambda1, lambda2:
        The Eq. 19 preference weights on minimal graph change vs. vote
        satisfaction (paper experiments use 0.5/0.5).
    sigmoid_w:
        Steepness of the step-function approximation (paper: 300).
    feasibility_filter:
        Run the extreme-condition judgment first (Section V) and drop
        unsatisfiable votes.
    params:
        Similarity parameters
        (:class:`~repro.serving.params.SimilarityParams`); the bare
        ``max_length``/``restart_prob`` keywords remain as deprecated
        shims.
    Other parameters as in
    :func:`repro.optimize.single_vote.solve_single_votes`.

    Returns
    -------
    (optimized graph, report)
        When every vote is filtered out (or nothing is encodable) the
        graph is returned unchanged and the report's ``solution`` is
        ``None``.
    """
    params = resolve_similarity_params(
        params, max_length=max_length, restart_prob=restart_prob
    )
    max_length = params.max_length
    restart_prob = params.restart_prob
    with trace_span("optimize.multi_vote") as span:
        result = aug if in_place else aug.copy()
        report = MultiVoteReport()
        start = time.perf_counter()

        vote_list = list(votes)
        if feasibility_filter:
            filter_start = time.perf_counter()
            kept, discarded = filter_feasible(
                result,
                VoteSet(vote_list),
                max_length=max_length,
                restart_prob=restart_prob,
            )
            report.filter_time = time.perf_counter() - filter_start
            report.discarded_votes = discarded
            vote_list = list(kept)
        if not vote_list:
            report.elapsed = time.perf_counter() - start
            span.set_attrs(num_votes=0, discarded=len(report.discarded_votes))
            record_optimize_run(report)
            return result, report

        encode_start = time.perf_counter()
        try:
            with trace_span("optimize.encode", num_votes=len(vote_list)):
                encoded = encode_votes(
                    result,
                    vote_list,
                    use_deviations=True,
                    max_length=max_length,
                    restart_prob=restart_prob,
                    margin=margin,
                    lower=lower,
                    upper=upper,
                )
        except SGPModelError:
            # Nothing adjustable within reach of any vote: return unchanged.
            report.elapsed = time.perf_counter() - start
            span.set_attrs(num_votes=len(vote_list), encodable=False)
            record_optimize_run(report)
            return result, report
        report.encode_time = time.perf_counter() - encode_start
        report.encoded = encoded
        report.num_votes_encoded = len(vote_list) - len(encoded.skipped_votes)
        report.num_constraints = encoded.problem.num_constraints

        num_vars = encoded.problem.num_vars
        distance = distance_objective(
            encoded.problem.x0[: encoded.num_edge_vars],
            num_vars,
            var_ids=range(encoded.num_edge_vars),
        )
        deviation = sigmoid_deviation_objective(
            encoded.deviation_ids,
            num_vars,
            w=sigmoid_w,
            weights=encoded.constraint_weights,
        )
        encoded.problem.set_objective(
            combined_objective(distance, deviation, lambda1=lambda1, lambda2=lambda2)
        )

        solution = solve_sgp(encoded.problem, method=solver_method, max_iter=max_iter)
        report.solve_time = solution.elapsed
        report.solution = solution
        report.num_violated_deviations = step_count(
            encoded.deviation_values(solution.x)
        )
        deviations = np.abs(encoded.deviation_values(solution.x))
        # Contract seams: the solved edge weights respect the Eq. 2 box
        # and the Eq. 15 deviation variables stayed within their cap.
        check_weight_bounds(
            solution.x[: encoded.num_edge_vars],
            encoded.problem.lower[: encoded.num_edge_vars],
            encoded.problem.upper[: encoded.num_edge_vars],
            seam="optimize.multi_vote",
        )
        check_monotone_deviations(deviations, seam="optimize.multi_vote")
        if deviations.size:
            deviation_hist = get_registry().histogram(
                "optimize_deviation_magnitude", buckets=DEVIATION_BUCKETS
            )
            for magnitude in deviations:
                deviation_hist.observe(float(magnitude))
        span.set_attrs(
            num_votes=len(vote_list),
            num_constraints=report.num_constraints,
            num_satisfied=report.num_satisfied_constraints,
            num_violated_deviations=report.num_violated_deviations,
            max_deviation=float(deviations.max()) if deviations.size else 0.0,
            max_residual=solution.max_residual,
            solver_nit=solution.nit,
        )

        report.changed_edges = apply_edge_weights(
            result,
            solution_edge_weights(encoded, solution),
            normalize=normalize,
        )
        report.elapsed = time.perf_counter() - start
        span.set_attrs(changed_edges=len(report.changed_edges))
        record_optimize_run(report)
        return result, report
