"""The paper's core contribution: vote-driven edge-weight optimization.

Pipeline (Sections IV–VI):

1. :mod:`repro.optimize.encoder` turns votes into an SGP program —
   variables are the adjustable edge weights reachable from the votes'
   queries, constraints are the pairwise similarity inequalities, and
   (for the multi-vote solution) per-constraint deviation variables
   absorb conflicts.
2. :mod:`repro.optimize.objectives` builds the objectives: the Eq. 12
   minimal-change distance and the Eq. 17–19 sigmoid count of violated
   constraints.
3. :mod:`repro.optimize.single_vote` is Algorithm 1 (greedy, one SGP
   per negative vote); :mod:`repro.optimize.multi_vote` is the batch
   solution; :mod:`repro.optimize.split_merge` scales the batch solution
   by clustering votes and merging per-cluster results;
   :mod:`repro.optimize.parallel` runs cluster solves on a process pool
   and models the paper's 4-machine distributed deployment.
"""

from repro.optimize.encoder import EncodedProgram, encode_votes
from repro.optimize.report import OptimizeReport
from repro.optimize.objectives import (
    combined_objective,
    distance_objective,
    distance_signomial,
    sigmoid,
    sigmoid_deviation_objective,
    step_count,
)
from repro.optimize.single_vote import SingleVoteReport, solve_single_votes
from repro.optimize.multi_vote import MultiVoteReport, solve_multi_vote
from repro.optimize.split_merge import SplitMergeReport, solve_split_merge
from repro.optimize.merge import merge_changes
from repro.optimize.online import BatchOutcome, OnlineOptimizer
from repro.optimize.parallel import simulated_makespan, solve_clusters_parallel

__all__ = [
    "EncodedProgram",
    "encode_votes",
    "OptimizeReport",
    "distance_signomial",
    "distance_objective",
    "sigmoid",
    "step_count",
    "sigmoid_deviation_objective",
    "combined_objective",
    "SingleVoteReport",
    "solve_single_votes",
    "MultiVoteReport",
    "solve_multi_vote",
    "SplitMergeReport",
    "solve_split_merge",
    "merge_changes",
    "simulated_makespan",
    "solve_clusters_parallel",
    "OnlineOptimizer",
    "BatchOutcome",
]
