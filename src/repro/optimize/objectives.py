"""Objective functions for the graph-optimization SGPs.

Two ingredients (Sections IV-B and V):

- the *minimal-change* objective (Eq. 12): the squared Euclidean
  distance between the optimized and the original edge weights, which
  regularizes the infinitely many ways of satisfying the constraints
  toward the smallest edit of the graph;
- the *vote-satisfaction* objective (Eq. 17–18): the number of violated
  constraints ``|{d_x > 0}|``, smoothed by replacing the step function
  with the sigmoid ``1 / (1 + e^{−w·d_x})`` (the paper sets ``w = 300``,
  citing Fig. 2 for the approximation quality).

The multi-vote solution minimizes the weighted combination (Eq. 19):
``λ1 · Σ (x − x₀)² + λ2 · Σ sigmoid(w · d_x)``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SGPModelError
from repro.sgp.problem import SmoothObjective
from repro.sgp.terms import Signomial

#: Paper default sigmoid steepness (Section V, Fig. 2).
DEFAULT_SIGMOID_W = 300.0


def distance_signomial(initial: Sequence[float], var_ids: "Sequence[int] | None" = None) -> Signomial:
    """Eq. 12 as a signomial: ``Σ_i (x_i − x0_i)²`` expanded termwise.

    Parameters
    ----------
    initial:
        The reference weights ``x0`` (one per variable).
    var_ids:
        Variable ids to use; defaults to ``0 .. len(initial)-1``.  The
        multi-vote encoder passes only the edge-variable block so the
        deviation variables stay out of the distance term.

    The signomial form is what the condensation solver requires; for the
    SQP solvers :func:`distance_objective` (a direct quadratic) is
    equivalent and cheaper to evaluate.
    """
    ids = list(var_ids) if var_ids is not None else list(range(len(initial)))
    if len(ids) != len(initial):
        raise SGPModelError(
            f"got {len(initial)} initial values for {len(ids)} variables"
        )
    objective = Signomial()
    for var, value in zip(ids, initial):
        objective.add_term(1.0, {var: 2.0})
        objective.add_term(-2.0 * float(value), {var: 1.0})
        objective.add_term(float(value) * float(value), {})
    return objective


def distance_objective(
    initial: Sequence[float],
    num_vars: int,
    var_ids: "Sequence[int] | None" = None,
) -> SmoothObjective:
    """Eq. 12 as a direct smooth quadratic with analytic gradient."""
    ids = np.asarray(
        list(var_ids) if var_ids is not None else range(len(initial)), dtype=int
    )
    x0 = np.asarray(initial, dtype=float)
    if ids.size != x0.size:
        raise SGPModelError(f"got {x0.size} initial values for {ids.size} variables")
    if ids.size and ids.max() >= num_vars:
        raise SGPModelError(
            f"variable id {ids.max()} outside the problem's {num_vars} variables"
        )

    def fn(x: np.ndarray) -> tuple[float, np.ndarray]:
        x = np.asarray(x, dtype=float)
        delta = x[ids] - x0
        grad = np.zeros(num_vars)
        grad[ids] = 2.0 * delta
        return float(delta @ delta), grad

    return SmoothObjective(fn, name="distance")


def sigmoid(value: "float | np.ndarray", w: float = DEFAULT_SIGMOID_W):
    """The smoothed step ``L(d) = 1 / (1 + e^{−w·d})`` (Eq. 17).

    Evaluated stably for large ``|w·d|`` (no overflow in ``exp``).
    """
    z = np.clip(-w * np.asarray(value, dtype=float), -500.0, 500.0)
    out = 1.0 / (1.0 + np.exp(z))
    if np.isscalar(value) or np.asarray(value).ndim == 0:
        return float(out)
    return out


def step_count(values: Sequence[float]) -> int:
    """The exact (non-smooth) objective of Eq. 16: ``|{d : d > 0}|``."""
    return int(sum(1 for v in values if v > 0))


def sigmoid_deviation_objective(
    deviation_ids: Sequence[int],
    num_vars: int,
    *,
    shift: float = 1.0,
    w: float = DEFAULT_SIGMOID_W,
    weights: "Sequence[float] | None" = None,
) -> SmoothObjective:
    """Eq. 18: ``Σ_d trust_d · sigmoid(w · d)`` over the deviation block.

    The encoder stores each deviation variable *shifted* so the solver
    sees a positive variable: the stored value is ``d' = d + shift``
    (see :mod:`repro.optimize.encoder`).  This objective undoes the
    shift before applying the sigmoid.

    ``weights`` (optional, one per deviation) carry per-vote trust: a
    constraint from a vote of weight 2 counts twice as much toward the
    violation penalty.  Omitted = the paper's unweighted Eq. 18.
    """
    ids = np.asarray(list(deviation_ids), dtype=int)
    if ids.size and ids.max() >= num_vars:
        raise SGPModelError(
            f"deviation id {ids.max()} outside the problem's {num_vars} variables"
        )
    if w <= 0:
        raise SGPModelError(f"sigmoid steepness w must be positive, got {w}")
    if weights is None:
        trust = np.ones(ids.size)
    else:
        trust = np.asarray(list(weights), dtype=float)
        if trust.shape != (ids.size,):
            raise SGPModelError(
                f"got {trust.size} trust weights for {ids.size} deviations"
            )
        if np.any(trust <= 0):
            raise SGPModelError("trust weights must be positive")

    def fn(x: np.ndarray) -> tuple[float, np.ndarray]:
        x = np.asarray(x, dtype=float)
        grad = np.zeros(num_vars)
        if ids.size == 0:
            return 0.0, grad
        d = x[ids] - shift
        values = sigmoid(d, w)
        grad[ids] = trust * w * values * (1.0 - values)
        return float(np.sum(trust * values)), grad

    return SmoothObjective(fn, name="sigmoid-deviation")


def combined_objective(
    distance: SmoothObjective,
    deviation: SmoothObjective,
    *,
    lambda1: float = 0.5,
    lambda2: float = 0.5,
) -> SmoothObjective:
    """Eq. 19: ``λ1 · distance + λ2 · deviation``.

    ``λ1`` prefers small graph edits; ``λ2`` prefers satisfying votes.
    The paper's experiments use ``λ1 = λ2 = 0.5``.
    """
    if lambda1 < 0 or lambda2 < 0:
        raise SGPModelError("preference weights must be non-negative")
    return SmoothObjective.weighted_sum(
        [(float(lambda1), distance), (float(lambda2), deviation)],
        name="eq19",
    )
