"""Applying an SGP solution back onto the graph.

Shared by the single-vote, multi-vote, and split-and-merge drivers:
write the solved edge weights into the augmented graph, then re-run
``NormalizeEdges`` (Algorithm 1 line 16) on every touched node so its
knowledge-graph out-weights keep the probability mass they had before
the solve — the solver redistributes mass, it must not create it.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import TYPE_CHECKING

import numpy as np

from repro.devtools.contracts import check_row_stochastic
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import Node
from repro.graph.normalize import normalize_edges, out_weight_sums

if TYPE_CHECKING:  # annotation only; engines are passed in, never built
    from repro.serving.engine import SimilarityEngine

#: Weight changes smaller than this are considered "unchanged" both for
#: reporting and for the split-and-merge merge rule.
CHANGE_TOL = 1e-9


#: A directed knowledge-graph edge key.
EdgeKey = tuple[Node, Node]


def apply_edge_weights(
    aug: AugmentedGraph,
    new_weights: Mapping[EdgeKey, float],
    *,
    normalize: bool = True,
    engines: "Iterable[SimilarityEngine] | None" = None,
) -> dict[EdgeKey, tuple[float, float]]:
    """Write ``{(head, tail): weight}`` into ``aug`` and re-normalize.

    Parameters
    ----------
    aug:
        The augmented graph to mutate.
    new_weights:
        Solved weights for (a subset of) the knowledge-graph edges.
    normalize:
        Run ``NormalizeEdges`` on the touched nodes, restoring each
        node's pre-update knowledge-graph out-weight sum.
    engines:
        Serving engines to revalidate right after the weights land:
        each one folds the whole patch burst into a single
        delta-revalidation pass (:mod:`repro.serving.delta`) off the
        serve path, so the first post-optimize serve is a cache hit.

    Returns
    -------
    dict
        ``{(head, tail): (old_weight, final_weight)}`` for every edge
        whose weight actually changed (after normalization), which is
        what Table III reports.
    """
    graph = aug.graph
    touched_nodes = {head for head, _tail in new_weights}
    before = {
        (head, tail): graph.weight(head, tail)
        for head, tail in new_weights
    }
    # Record sums over the *knowledge-graph* out-edges only: query and
    # answer links are constants and must not absorb normalization.
    reference = out_weight_sums(
        graph, touched_nodes, edge_filter=aug.is_kg_edge
    )
    for (head, tail), weight in new_weights.items():
        aug.set_kg_weight(head, tail, float(weight))
    if normalize:
        normalize_edges(
            graph,
            nodes=touched_nodes,
            reference_sums=reference,
            edge_filter=aug.is_kg_edge,
        )
        # Contract seam (NormalizeEdges, Algorithm 1 line 16): every
        # touched node's knowledge-graph out-mass is back at its
        # pre-solve reference — the solver redistributed, not created.
        check_row_stochastic(
            graph,
            nodes=[node for node in touched_nodes if node in reference],
            expected=reference,
            edge_filter=aug.is_kg_edge,
            seam="optimize.apply_edge_weights",
        )
    if engines is not None:
        for engine in engines:
            engine.revalidate()
    changes: dict[EdgeKey, tuple[float, float]] = {}
    for (head, tail), old in before.items():
        final = graph.weight(head, tail)
        if abs(final - old) > CHANGE_TOL:
            changes[(head, tail)] = (old, final)
    return changes


def weight_deltas(
    changes: Mapping[EdgeKey, tuple[float, float]]
) -> dict[EdgeKey, float]:
    """``{edge: new − old}`` from an :func:`apply_edge_weights` record."""
    return {edge: new - old for edge, (old, new) in changes.items()}


def solution_edge_weights(encoded, solution) -> dict:
    """Extract ``{edge: weight}`` from a solver solution for ``encoded``.

    Thin helper so drivers do not reach into the variable index
    directly.
    """
    x = np.asarray(solution.x, dtype=float)
    return encoded.edge_values(x)
