"""Encoding votes into SGP programs (Sections IV-B and V).

For every vote the encoder:

1. collects the adjustable (entity→entity) edges on any ≤ L walk from
   the vote's query to any shown answer and registers them as variables
   (``ObtainVariableSet`` of Algorithm 1);
2. builds the symbolic similarity ``Φ_L`` of each shown answer as a
   posynomial over those variables (one shared walk enumeration per
   vote);
3. emits one constraint per non-best answer:

   - hard form (Eq. 11/13):  ``Φ(other) − Φ(best) + margin ≤ 0``;
   - deviation form (Eq. 15): ``Φ(other) − Φ(best) − d + margin ≤ 0``
     with a fresh deviation variable ``d`` per constraint.

Two numerical refinements over the paper's formal presentation (both are
solver hygiene, not semantic changes):

- **Constraint scaling.**  Raw similarities live at ``1e-3``–``1e-6``
  scale, far below solver tolerances.  Each vote's constraints are
  divided by the best answer's current similarity, so "beat the best
  answer" becomes a ~unit-scale inequality, the relative ``margin`` has
  a uniform meaning across votes, and the deviation variables (and the
  sigmoid's ``w``) operate at the scale Fig. 2 depicts.
- **Deviation shifting.**  SGP variables are positive, but deviations
  must range over negative values (``d ≤ 0`` = constraint satisfied).
  Each deviation is stored as ``d' = d + shift`` with ``shift = 1``;
  the encoder rewrites constraints accordingly and the sigmoid
  objective (:mod:`repro.optimize.objectives`) undoes the shift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SGPModelError
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import Node
from repro.paths.edgesets import vote_edge_set
from repro.paths.polynomial import EdgeVariableIndex, path_polynomials
from repro.sgp.problem import SGPProblem
from repro.sgp.terms import Signomial
from repro.similarity.inverse_pdistance import (
    DEFAULT_MAX_LENGTH,
    DEFAULT_RESTART_PROB,
)
from repro.votes.types import Vote, VoteSet

#: Default box bounds for edge-weight variables: weights stay valid
#: transition probabilities, bounded away from zero so the positive
#: orthant (and log-space evaluation) is respected.
DEFAULT_LOWER = 1e-4
DEFAULT_UPPER = 1.0

#: Shift applied to deviation variables so they are positive to the solver.
DEVIATION_SHIFT = 1.0

#: Upper bound on an (unshifted) deviation.  The paper leaves deviations
#: unbounded above; a large finite cap keeps the box bounds finite while
#: letting a deviation absorb any realistic constraint violation, so
#: hard conflicts never force weight movement on their own.
DEVIATION_MAX = 1e6

#: Default relative margin: the best answer must beat each rival by this
#: fraction of its own current similarity.
DEFAULT_MARGIN = 1e-3


@dataclass
class EncodedProgram:
    """An SGP program together with its variable bookkeeping.

    Attributes
    ----------
    problem:
        The ready-to-solve :class:`SGPProblem` (objective *not* set —
        the single-vote and multi-vote drivers attach different ones).
    variables:
        Edge-variable index.  Ids ``0 .. num_edge_vars-1`` are edge
        weights; ids ``num_edge_vars ..`` are (shifted) deviation
        variables, in constraint order.
    num_edge_vars, num_deviation_vars:
        Block sizes.
    constraint_votes:
        For each constraint, the index (into the *input* vote list,
        which is stored in ``votes``) of the vote it came from — used
        when reporting which votes ended up satisfied.
    skipped_votes:
        Votes that produced no constraints (no adjustable edges on any
        walk, or an unreachable best answer) and are excluded from the
        program.
    """

    problem: SGPProblem
    variables: EdgeVariableIndex
    num_edge_vars: int
    num_deviation_vars: int
    votes: list[Vote] = field(default_factory=list)
    constraint_votes: list[int] = field(default_factory=list)
    skipped_votes: list[Vote] = field(default_factory=list)

    @property
    def deviation_ids(self) -> list[int]:
        """The variable ids of the deviation block."""
        return list(range(self.num_edge_vars, self.num_edge_vars + self.num_deviation_vars))

    @property
    def constraint_weights(self) -> list[float]:
        """Per-constraint trust weights (the source vote's ``weight``)."""
        return [self.votes[i].weight for i in self.constraint_votes]

    def edge_values(self, x: np.ndarray) -> "dict[tuple[Node, Node], float]":
        """Map a solution vector back to ``{(head, tail): weight}``."""
        return {
            self.variables.edge_of(var): float(x[var])
            for var in range(self.num_edge_vars)
        }

    def deviation_values(self, x: np.ndarray) -> np.ndarray:
        """Unshifted deviation values ``d`` (negative = satisfied)."""
        ids = self.deviation_ids
        return np.asarray(x)[ids] - DEVIATION_SHIFT if ids else np.zeros(0)


def encode_votes(
    aug: AugmentedGraph,
    votes: "VoteSet | list[Vote]",
    *,
    use_deviations: bool = True,
    max_length: int = DEFAULT_MAX_LENGTH,
    restart_prob: float = DEFAULT_RESTART_PROB,
    margin: float = DEFAULT_MARGIN,
    lower: float = DEFAULT_LOWER,
    upper: float = DEFAULT_UPPER,
    scale_constraints: bool = True,
) -> EncodedProgram:
    """Encode a batch of votes into one SGP program.

    Parameters
    ----------
    aug:
        The augmented graph whose current weights seed the variables.
    votes:
        The votes to encode.  The single-vote driver passes a list of
        one; the multi-vote driver passes the whole (filtered) set.
    use_deviations:
        Add a deviation variable per constraint (Eq. 15, multi-vote).
        Without them the constraints are hard (Eq. 11, single-vote).
    margin:
        Required winning gap.  With ``scale_constraints`` this is
        *relative* to the best answer's current similarity; otherwise it
        is an absolute similarity gap.
    lower, upper:
        Box bounds for edge-weight variables.
    scale_constraints:
        Normalize each vote's constraints by the best answer's current
        similarity (see the module docstring).

    Returns
    -------
    EncodedProgram
        With constraints installed and bounds/initial point set; the
        caller attaches an objective and solves.

    Notes
    -----
    Votes whose best answer has zero current similarity and no variable
    terms (unreachable within ``L``) are skipped and recorded — no
    weight assignment can help them, mirroring the feasibility filter's
    judgment for this degenerate case.
    """
    vote_list = list(votes)
    if not vote_list:
        raise SGPModelError("cannot encode an empty vote collection")
    if not 0 < lower <= upper:
        raise SGPModelError(f"bad bounds: lower={lower}, upper={upper}")

    graph = aug.graph
    variables = EdgeVariableIndex()
    # Pass 1: register the adjustable edges of every vote so variable ids
    # are stable before any polynomial is built.
    per_vote_edges = []
    for vote in vote_list:
        edges = vote_edge_set(graph, vote.query, vote.ranked_answers, max_length)
        adjustable = {e for e in edges if aug.is_kg_edge(*e)}
        per_vote_edges.append(adjustable)
        for head, tail in sorted(adjustable, key=repr):
            variables.register(head, tail)
    num_edge_vars = len(variables)

    # Pass 2: build polynomials and constraints.
    pending: list[tuple[int, Signomial, float]] = []  # (vote idx, signomial, scale)
    skipped: list[Vote] = []
    for vote_idx, vote in enumerate(vote_list):
        polynomials = path_polynomials(
            graph,
            vote.query,
            vote.ranked_answers,
            variables,
            max_length=max_length,
            restart_prob=restart_prob,
        )
        best_poly = polynomials[vote.best_answer]
        if best_poly.num_terms == 0:
            skipped.append(vote)
            continue
        if scale_constraints:
            initial = variables.initial_values(graph)
            x0_map = {var: value for var, value in enumerate(initial)}
            best_now = best_poly.evaluate(x0_map) if num_edge_vars else (
                best_poly.constant_value()
            )
            scale = 1.0 / max(best_now, 1e-30)
        else:
            scale = 1.0
        emitted = False
        for other in vote.others():
            difference = (polynomials[other] - best_poly) * scale
            if difference.num_terms == 0:
                continue  # structurally identical similarities; nothing to do
            pending.append((vote_idx, difference, scale))
            emitted = True
        if not emitted:
            skipped.append(vote)

    if num_edge_vars == 0 or not pending:
        raise SGPModelError(
            "the votes touch no adjustable edges; nothing to optimize"
        )

    num_deviation_vars = len(pending) if use_deviations else 0
    initial = variables.initial_values(graph)
    x0 = list(np.clip(initial, lower, upper))
    lower_bounds = [lower] * num_edge_vars
    upper_bounds = [upper] * num_edge_vars

    problem_constraints = []
    if use_deviations:
        for dev_offset, (vote_idx, difference, _scale) in enumerate(pending):
            dev_id = num_edge_vars + dev_offset
            # g(x) − d ≤ 0 with d = d' − shift:  g(x) − d' + shift ≤ 0.
            with_deviation = difference.copy()
            with_deviation.add_term(-1.0, {dev_id: 1.0})
            with_deviation.add_term(DEVIATION_SHIFT, {})
            problem_constraints.append((vote_idx, with_deviation))
        # Deviation block: d' ∈ (ε, shift + MAX], i.e. d ∈ (−shift, +MAX].
        lower_bounds += [1e-9] * num_deviation_vars
        upper_bounds += [DEVIATION_SHIFT + DEVIATION_MAX] * num_deviation_vars
    else:
        problem_constraints = [(vote_idx, diff) for vote_idx, diff, _ in pending]

    problem = SGPProblem(
        x0 + [DEVIATION_SHIFT] * num_deviation_vars,
        lower=lower_bounds,
        upper=upper_bounds,
    )
    constraint_votes: list[int] = []
    for index, (vote_idx, signomial) in enumerate(problem_constraints):
        problem.add_constraint(
            signomial,
            name=f"v{vote_idx}:c{index}",
            margin=float(margin),
        )
        constraint_votes.append(vote_idx)

    # Deviations start at d = 0 (stored d' = shift).  Starting instead at
    # the feasibility residual looks attractive (the solver begins
    # strictly feasible) but parks violated constraints deep in the
    # sigmoid's saturated region where its gradient vanishes, so the
    # solver never pulls them back.  At d = 0 the sigmoid gradient is
    # maximal and the constraint residual is handled by the solver's own
    # feasibility restoration.

    return EncodedProgram(
        problem=problem,
        variables=variables,
        num_edge_vars=num_edge_vars,
        num_deviation_vars=num_deviation_vars,
        votes=vote_list,
        constraint_votes=constraint_votes,
        skipped_votes=skipped,
    )
