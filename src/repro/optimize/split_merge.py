"""The split-and-merge strategy (Section VI).

The multi-vote SGP's solver time grows steeply with the vote count
(more variables, more constraints) — SGP is NP-hard, so the paper
proposes a heuristic: *split* the vote set into clusters of votes whose
similarity evaluations touch overlapping edges (Eq. 20 similarity +
Affinity Propagation), solve one small multi-vote SGP per cluster
against the same base graph, and *merge* the per-cluster weight changes
with a vote-count-weighted voting rule.

This trades a little optimization quality (each cluster is blind to the
others' constraints) for a large speedup — the paper reports >6× at 70+
votes — and makes the clusters embarrassingly parallel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.clustering.affinity_propagation import cluster_votes
from repro.clustering.similarity import vote_edge_sets, vote_similarity_matrix
from repro.graph.augmented import AugmentedGraph
from repro.obs import trace_span
from repro.optimize.apply import apply_edge_weights
from repro.optimize.encoder import DEFAULT_LOWER, DEFAULT_MARGIN, DEFAULT_UPPER
from repro.optimize.merge import merge_changes, merged_weights
from repro.optimize.objectives import DEFAULT_SIGMOID_W
from repro.optimize.parallel import (
    ClusterResult,
    simulated_makespan,
    solve_clusters_parallel,
    solve_one_cluster,
)
from repro.optimize.report import OptimizeReport, record_optimize_run
from repro.serving.params import SimilarityParams, resolve_similarity_params
from repro.votes.types import Vote, VoteSet


@dataclass
class SplitMergeReport(OptimizeReport):
    """Record of one split-and-merge run.

    Extends :class:`~repro.optimize.report.OptimizeReport` (``elapsed``,
    ``solve_time``, ``changed_edges``, ``summary()``) with the cluster
    structure and split/solve/merge stage timings.  The inherited
    ``solve_time`` equals ``solve_time_total`` (the sequential sum over
    clusters); ``solve_time_max`` is the parallel lower bound.
    """

    strategy = "split-merge"

    clusters: list[list[int]] = field(default_factory=list)
    cluster_results: list[ClusterResult] = field(default_factory=list)
    merged_deltas: dict = field(default_factory=dict)
    changed_edges: dict = field(default_factory=dict)
    split_time: float = 0.0
    solve_time_total: float = 0.0
    solve_time_max: float = 0.0
    merge_time: float = 0.0

    @property
    def num_clusters(self) -> int:
        """How many clusters the AP step produced."""
        return len(self.clusters)

    @property
    def average_cluster_size(self) -> float:
        """Mean votes per cluster (the paper reports ≈5)."""
        if not self.clusters:
            return 0.0
        return sum(len(c) for c in self.clusters) / len(self.clusters)

    def distributed_makespan(self, num_workers: int = 4,
                             dispatch_overhead: float = 0.0) -> float:
        """Idealized wall-clock on ``num_workers`` machines.

        Split and merge stay sequential; the cluster solves are
        scheduled by LPT.  This models the paper's "Distributed S-M
        Strategy" series.
        """
        return (
            self.split_time
            + self.merge_time
            + simulated_makespan(
                [r.elapsed for r in self.cluster_results],
                num_workers,
                dispatch_overhead=dispatch_overhead,
            )
        )

    def summary(self) -> str:
        base = super().summary()
        return (
            f"{base}; {self.num_clusters} cluster(s), "
            f"avg size {self.average_cluster_size:.1f}"
        )


def solve_split_merge(
    aug: AugmentedGraph,
    votes: "VoteSet | list[Vote]",
    *,
    preference: "float | str" = "median",
    damping: float = 0.7,
    num_workers: int = 1,
    lambda1: float = 0.5,
    lambda2: float = 0.5,
    sigmoid_w: float = DEFAULT_SIGMOID_W,
    feasibility_filter: bool = True,
    params: "SimilarityParams | None" = None,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    margin: float = DEFAULT_MARGIN,
    lower: float = DEFAULT_LOWER,
    upper: float = DEFAULT_UPPER,
    solver_method: str = "slsqp",
    max_iter: int = 300,
    normalize: bool = False,
    in_place: bool = False,
) -> tuple[AugmentedGraph, SplitMergeReport]:
    """Run the split-and-merge multi-vote optimization.

    ``normalize`` defaults to off, matching the multi-vote solution it
    wraps (see :func:`repro.optimize.multi_vote.solve_multi_vote`).

    Parameters
    ----------
    preference, damping:
        Affinity Propagation parameters; the default ``"median"``
        preference is the paper's choice.
    num_workers:
        ``1`` solves clusters sequentially in-process; ``>1`` uses a
        process pool (the distributed deployment).
    params:
        Similarity parameters
        (:class:`~repro.serving.params.SimilarityParams`); the bare
        ``max_length``/``restart_prob`` keywords remain as deprecated
        shims.
    Remaining parameters as in
    :func:`repro.optimize.multi_vote.solve_multi_vote`, applied to every
    per-cluster solve.

    Returns
    -------
    (optimized graph, report)
    """
    params = resolve_similarity_params(
        params, max_length=max_length, restart_prob=restart_prob
    )
    with trace_span("optimize.split_merge") as span:
        result = aug if in_place else aug.copy()
        report = SplitMergeReport()
        start = time.perf_counter()
        vote_list = list(votes)
        if not vote_list:
            report.elapsed = time.perf_counter() - start
            span.set_attrs(num_votes=0)
            record_optimize_run(report)
            return result, report

        # --- split -------------------------------------------------------
        split_start = time.perf_counter()
        with trace_span("optimize.split", num_votes=len(vote_list)) as split_span:
            edge_sets = vote_edge_sets(
                result, vote_list, max_length=params.max_length
            )
            similarity = vote_similarity_matrix(edge_sets)
            clusters = cluster_votes(
                similarity, preference=preference, damping=damping
            )
            split_span.set_attrs(num_clusters=len(clusters))
        report.clusters = clusters
        report.split_time = time.perf_counter() - split_start

        # --- per-cluster solves -------------------------------------------
        options = dict(
            lambda1=lambda1,
            lambda2=lambda2,
            sigmoid_w=sigmoid_w,
            feasibility_filter=feasibility_filter,
            params=params,
            margin=margin,
            lower=lower,
            upper=upper,
            solver_method=solver_method,
            max_iter=max_iter,
            normalize=normalize,
        )
        cluster_vote_lists = [[vote_list[i] for i in cluster] for cluster in clusters]
        if num_workers > 1:
            results = solve_clusters_parallel(
                result, cluster_vote_lists, num_workers=num_workers, options=options
            )
        else:
            results = [
                solve_one_cluster(result, cluster, index, options)
                for index, cluster in enumerate(cluster_vote_lists)
            ]
        report.cluster_results = results
        report.solve_time_total = sum(r.elapsed for r in results)
        report.solve_time = report.solve_time_total
        report.solve_time_max = max((r.elapsed for r in results), default=0.0)

        # --- merge ---------------------------------------------------------
        merge_start = time.perf_counter()
        with trace_span("optimize.merge", num_clusters=len(results)) as merge_span:
            contributing = [
                (r.deltas, r.total_weight or r.num_votes) for r in results
            ]
            if any(deltas for deltas, _ in contributing):
                merged = merge_changes(contributing)
                base = {
                    edge: result.graph.weight(*edge) for edge in merged
                }
                new_weights = merged_weights(base, merged, lower=lower, upper=upper)
                report.merged_deltas = merged
                report.changed_edges = apply_edge_weights(
                    result, new_weights, normalize=normalize
                )
            merge_span.set_attrs(changed_edges=len(report.changed_edges))
        report.merge_time = time.perf_counter() - merge_start
        report.elapsed = time.perf_counter() - start
        span.set_attrs(
            num_votes=len(vote_list),
            num_clusters=report.num_clusters,
            avg_cluster_size=report.average_cluster_size,
            changed_edges=len(report.changed_edges),
        )
        record_optimize_run(report)
        return result, report
