"""Audit log for vote-driven weight changes, with revert.

A production system adjusting its knowledge graph from user feedback
needs to answer "who changed this edge, when, and why?" and to undo a
bad batch (a brigaded vote wave, a mis-configured run).  The audit log
records every optimization pass as an entry of per-edge
``(before, after)`` pairs plus provenance (strategy, vote count), and
supports:

- querying the change history of a single edge;
- reverting the most recent entries (LIFO, so intermediate states are
  reconstructed exactly);
- JSON export/import for offline analysis.

The batch drivers do not write the log themselves (they are pure
functions over graphs); the integration point is
:meth:`AuditLog.record` called with a driver's ``changed_edges``
mapping, as :class:`~repro.optimize.online.OnlineOptimizer` users do in
``examples/online_feedback_loop.py``.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.graph.augmented import AugmentedGraph


@dataclass(frozen=True)
class AuditEntry:
    """One recorded optimization pass."""

    index: int
    strategy: str
    num_votes: int
    changes: tuple  # ((head, tail, before, after), ...)

    @property
    def num_edges(self) -> int:
        """How many edges this pass changed."""
        return len(self.changes)


@dataclass
class AuditLog:
    """Append-only history of weight changes with revert support."""

    entries: list[AuditEntry] = field(default_factory=list)

    def record(
        self,
        changed_edges: Mapping,
        *,
        strategy: str = "multi",
        num_votes: int = 0,
    ) -> AuditEntry:
        """Append one pass.

        Parameters
        ----------
        changed_edges:
            ``{(head, tail): (before, after)}`` as returned in every
            driver report's ``changed_edges``.
        strategy, num_votes:
            Provenance for the entry.
        """
        changes = tuple(
            (head, tail, float(before), float(after))
            for (head, tail), (before, after) in changed_edges.items()
        )
        entry = AuditEntry(
            index=len(self.entries),
            strategy=strategy,
            num_votes=int(num_votes),
            changes=changes,
        )
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def edge_history(self, head, tail) -> list[tuple[int, float, float]]:
        """``(entry index, before, after)`` for every change of one edge."""
        history = []
        for entry in self.entries:
            for h, t, before, after in entry.changes:
                if h == head and t == tail:
                    history.append((entry.index, before, after))
        return history

    def total_drift(self) -> float:
        """Sum of |after − before| across all recorded changes."""
        return sum(
            abs(after - before)
            for entry in self.entries
            for _h, _t, before, after in entry.changes
        )

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # revert
    # ------------------------------------------------------------------
    def revert_last(self, aug: AugmentedGraph, *, passes: int = 1) -> int:
        """Undo the most recent ``passes`` entries on ``aug`` (LIFO).

        Returns the number of edge writes performed.  Reverting entry N
        restores each changed edge to its recorded ``before`` value; if
        the edge has been modified again since (out of log order), the
        revert raises rather than silently clobbering unknown state.
        """
        if passes < 1:
            raise ReproError(f"passes must be ≥ 1, got {passes}")
        if passes > len(self.entries):
            raise ReproError(
                f"cannot revert {passes} passes; only {len(self.entries)} recorded"
            )
        writes = 0
        for _ in range(passes):
            entry = self.entries.pop()
            for head, tail, before, after in entry.changes:
                current = aug.graph.weight(head, tail)
                if abs(current - after) > 1e-9:
                    self.entries.append(entry)  # leave the log consistent
                    raise ReproError(
                        f"edge {head!r}->{tail!r} is {current:.6f}, expected "
                        f"{after:.6f} from entry {entry.index}; the graph has "
                        f"diverged from the log"
                    )
                aug.set_kg_weight(head, tail, before)
                writes += 1
        return writes

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> None:
        """Write the log to JSON."""
        payload = {
            "format": "repro-audit-log",
            "entries": [
                {
                    "index": entry.index,
                    "strategy": entry.strategy,
                    "num_votes": entry.num_votes,
                    "changes": [list(change) for change in entry.changes],
                }
                for entry in self.entries
            ],
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: "str | Path") -> "AuditLog":
        """Read a log previously written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}: not valid JSON") from exc
        if not isinstance(payload, dict) or payload.get("format") != "repro-audit-log":
            raise ReproError(f"{path}: not a repro audit log")
        log = cls()
        for raw in payload["entries"]:
            log.entries.append(
                AuditEntry(
                    index=int(raw["index"]),
                    strategy=str(raw["strategy"]),
                    num_votes=int(raw["num_votes"]),
                    changes=tuple(
                        (h, t, float(before), float(after))
                        for h, t, before, after in raw["changes"]
                    ),
                )
            )
        return log
