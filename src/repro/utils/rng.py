"""Random-number-generator plumbing.

All stochastic code in this library takes a ``seed`` argument that may be
``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream).  Centralizing the
coercion here keeps every call site one line long and guarantees that the
whole experiment pipeline is reproducible from a single integer.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Anything :func:`ensure_rng` accepts.  (Previously assigned as a bare
#: string, which type checkers treated as a ``str`` constant, not an
#: alias — the explicit ``TypeAlias`` makes it usable in annotations.)
SeedLike: TypeAlias = "int | None | np.random.Generator"


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or
        an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Used by parallel code (e.g. the distributed split-and-merge strategy)
    so that per-worker randomness neither collides nor depends on worker
    scheduling order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
