"""Plain-text table rendering for experiment reports.

The benchmark harness prints every reproduced table/figure as an aligned
text table so the output can be diffed against the paper's numbers.  No
third-party dependency (tabulate etc.) is available offline, so this is a
small self-contained renderer.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _render_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned, pipe-separated table.

    Parameters
    ----------
    headers:
        Column names; every row must have the same number of cells.
    rows:
        Iterable of row sequences.  Floats are formatted with ``float_fmt``.
    title:
        Optional caption printed above the table.
    float_fmt:
        ``format()`` spec applied to float cells (default ``.4g``).

    Returns
    -------
    str
        A multi-line string; rows are separated by newlines and the header
        is underlined with dashes.
    """
    header_cells = [str(h) for h in headers]
    body = []
    for row in rows:
        cells = [_render_cell(v, float_fmt) for v in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row {cells!r} has {len(cells)} cells, expected {len(header_cells)}"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(header_cells))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(cells) for cells in body)
    return "\n".join(parts)
