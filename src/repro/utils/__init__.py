"""Small shared utilities: RNG handling, timers, text tables, validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "format_table",
    "check_fraction",
    "check_positive",
    "check_probability",
]
