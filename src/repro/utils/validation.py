"""Argument validation helpers.

These raise ``ValueError`` with a message that names the offending
argument, so call sites stay one line long and error messages stay
uniform across the package.
"""

from __future__ import annotations

import math


def check_positive(name: str, value: float) -> float:
    """Require ``value`` to be a finite number strictly greater than zero."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``value`` to be a probability in the closed interval [0, 1]."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``value`` to lie strictly inside (0, 1).

    Used for restart probabilities and weight bounds, which degenerate at
    either endpoint (a restart probability of 0 never terminates the walk
    sum; 1 never leaves the query node).
    """
    if not math.isfinite(value) or not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be strictly between 0 and 1, got {value!r}")
    return value
