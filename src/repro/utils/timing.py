"""Wall-clock measurement helpers used by the benchmark harness."""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import TracebackType


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    A single stopwatch can be started and stopped repeatedly; ``elapsed``
    is the total time across all completed intervals.  The experiment
    harness uses one stopwatch per pipeline stage so that stage costs can
    be reported separately (encode time vs. solver time, for example).
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing.  Starting twice is an error."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the total elapsed seconds so far."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently timing an interval."""
        return self._started_at is not None

    def reset(self) -> None:
        """Zero the accumulated time; a running interval is discarded."""
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        """``with Stopwatch() as sw:`` times the block into ``sw.elapsed``."""
        return self.start()

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        self.stop()


@contextmanager
def timed(store: dict[str, float], key: str) -> Iterator[None]:
    """Context manager that records the block's duration into ``store[key]``.

    Durations for repeated keys accumulate, which matches how the paper
    reports "elapsed time" for a whole batch of solver calls.
    """
    stopwatch = Stopwatch()
    try:
        with stopwatch:
            yield
    finally:
        store[key] = store.get(key, 0.0) + stopwatch.elapsed
