"""Concurrency annotation vocabulary: who may touch what, under which guard.

The ROADMAP's next tentpole is a concurrent serve/optimize architecture
(background optimizer thread, double-buffered matrix epochs, lock-free
reads on the serve path).  Before any thread lands, every piece of
cross-thread-visible state must be *declared*: where it lives, who owns
it, and what discipline guards it.  This module is that declaration —
a registry the static analyzer (:mod:`repro.devtools.concurrency`)
checks the whole tree against, in the spirit of Clang's thread-safety
annotations or Go's ``vet`` lock checks.

Guard disciplines (the ``guard`` field grammar):

``owner:<module>``
    Writes may only occur in the owning module (and, for attributes,
    inside the declaring class or a declared cross-module writer).
    The single-writer discipline: the future optimizer thread is the
    only mutator, readers see immutable snapshots.
``lock:<name>``
    Every write must be lexically inside ``with <holder>.<name>:`` (or
    ``with <name>:`` for module-level locks) in the owning module.
``gil-atomic``
    A single bytecode-atomic operation (``deque.append``, one ``dict``
    store, a plain rebind) in the owning module; safe today under the
    GIL and documented as needing review for free-threaded builds.
``frozen``
    Ownership rules apply *and* every value stored must be a read-only
    ndarray — callers must freeze with ``setflags(write=False)`` before
    the store (rule R009; the PR 5 cache-poison bug, made impossible).
``frozen+lock:<name>``
    Both disciplines at once: every write must be lexically inside
    ``with <holder>.<name>:`` *and* every value stored must be a frozen
    ndarray.  This is the serve/optimize cache contract — the optimizer
    worker re-keys entries under the engine lock, and readers outside
    the lock can only ever observe immutable vectors.

Decorators (consumed by the analyzer, free at runtime):

``@serve_path``
    Marks a function as a serve-path root: everything reachable from it
    must stay free of blocking I/O and of non-``serve_safe`` guard
    acquisition (rule R010).
``@mutator``
    Marks a declared mutation entry point — the functions allowed to
    restructure shared state.  Documentation for the reader and
    inventory metadata for ``repro-kg analyze``.
``@serve_exempt(reason)``
    A declared reachability barrier: the analyzer does not descend into
    the decorated function when walking the serve path.  Reserved for
    failure-path diagnostics (e.g. the flight recorder's dump) whose
    cost is accepted and audited; every use is listed in the analyze
    report with its reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = [
    "SharedState",
    "SHARED_STATE",
    "FROZEN_RETURNS",
    "serve_path",
    "mutator",
    "serve_exempt",
    "shared_state_by_attr",
]

F = TypeVar("F", bound=Callable)


def serve_path(func: F) -> F:
    """Mark ``func`` as a serve-path root for R010 reachability."""
    func.__serve_path__ = True  # type: ignore[attr-defined]
    return func


def mutator(func: F) -> F:
    """Mark ``func`` as a declared mutation entry point for shared state."""
    func.__mutator__ = True  # type: ignore[attr-defined]
    return func


def serve_exempt(reason: str) -> Callable[[F], F]:
    """Declare ``func`` a serve-path barrier (diagnostics-only cost)."""

    def decorate(func: F) -> F:
        func.__serve_exempt__ = reason  # type: ignore[attr-defined]
        return func

    return decorate


@dataclass(frozen=True)
class SharedState:
    """One declared piece of cross-thread-visible state.

    Parameters
    ----------
    name:
        ``Class.attr`` for instance attributes, ``module_basename.name``
        for module globals (``kind`` disambiguates).
    owner:
        Fully qualified owning module, e.g. ``repro.serving.engine``.
    kind:
        ``"attribute"`` (matched against ``obj.attr`` write sites) or
        ``"module-global"`` (matched against bare-name sites in the
        owning module).
    guard:
        Discipline string — see the module docstring for the grammar.
    writers:
        Extra declared cross-module writers as ``module:Class.method``
        (the owning module is always allowed).
    rekey_apis:
        When non-empty, R011 applies: entries may only be created,
        re-keyed, or rebound inside these methods of the owning class.
    serve_safe:
        For ``lock:`` guards only — acquisition is cheap and permitted
        on the serve path (R010 flags acquisition of non-serve-safe
        guards in serve-reachable code).
    description:
        Why this state is shared — rendered in the analyze inventory.
    """

    name: str
    owner: str
    guard: str
    description: str
    kind: str = "attribute"
    writers: tuple = ()
    rekey_apis: tuple = ()
    serve_safe: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("attribute", "module-global"):
            raise ValueError(f"unknown shared-state kind: {self.kind!r}")
        ok = self.guard in ("gil-atomic", "frozen") or self.guard.startswith(
            ("lock:", "owner:", "frozen+lock:")
        )
        if not ok:
            raise ValueError(f"unknown guard discipline: {self.guard!r}")

    @property
    def cls(self) -> "str | None":
        """Declaring class for attribute kind (``None`` for globals)."""
        if self.kind != "attribute":
            return None
        return self.name.rsplit(".", 1)[0]

    @property
    def attr(self) -> str:
        """The attribute / global name matched at write sites."""
        return self.name.rsplit(".", 1)[1]

    @property
    def lock_name(self) -> "str | None":
        """The lock attribute for ``lock:`` guards (else ``None``)."""
        if self.guard.startswith("lock:") or self.guard.startswith("frozen+lock:"):
            return self.guard.split(":", 1)[1]
        return None

    @property
    def frozen(self) -> bool:
        """Whether stored values must be read-only ndarrays (R009)."""
        return self.guard == "frozen" or self.guard.startswith("frozen+lock:")


# ----------------------------------------------------------------------
# The inventory.  Every attribute here is visible across the future
# serve/optimize thread boundary; the analyzer enforces the declared
# discipline at every write site in the tree (rule R008, plus R009 for
# ``frozen`` and R011 where ``rekey_apis`` is declared).
# ----------------------------------------------------------------------
SHARED_STATE: "tuple[SharedState, ...]" = (
    # -- serving engine: the epoch-consistent read state -----------------
    #
    # Since the concurrent serve/optimize PR these are written under the
    # engine's ``_state_lock`` (an RLock): the background optimizer
    # worker publishes weight-patch epochs through
    # ``SimilarityEngine.publish`` while serve threads revalidate lazily
    # in ``_flush``.  Reads on the serve path stay lock-free — they
    # capture object references (the CSR matrix, a cached vector) that
    # are never mutated in place once published (copy-on-write patches).
    SharedState(
        name="SimilarityEngine._matrix",
        owner="repro.serving.engine",
        guard="lock:_state_lock",
        serve_safe=True,
        rekey_apis=("__init__", "close", "_flush", "_rebuild", "_append_answer_rows"),
        description="CSR truncated inverse-P-distance matrix; patched "
        "copy-on-write (rebound, never mutated in place) so lock-free "
        "readers keep an internally consistent epoch snapshot",
    ),
    SharedState(
        name="SimilarityEngine._index",
        owner="repro.serving.engine",
        guard="lock:_state_lock",
        serve_safe=True,
        rekey_apis=("__init__", "close", "_rebuild", "_append_answer_rows"),
        description="answer-entity -> matrix-row map, versioned with _matrix",
    ),
    SharedState(
        name="SimilarityEngine._pos",
        owner="repro.serving.engine",
        guard="lock:_state_lock",
        serve_safe=True,
        rekey_apis=("__init__", "close", "_rebuild", "_append_answer_rows"),
        description="(entity, answer) -> CSR offset map for delta patches",
    ),
    SharedState(
        name="SimilarityEngine._cache",
        owner="repro.serving.engine",
        guard="frozen+lock:_state_lock",
        serve_safe=True,
        rekey_apis=(
            "__init__",
            "close",
            "_flush",
            "_rekey_cache",
            "_delta_revalidate",
            "_cache_put",
        ),
        description="epoch-keyed score LRU; values are frozen ndarrays "
        "(R009), every access holds _state_lock, and keys only change "
        "through declared revalidation APIs (R011)",
    ),
    SharedState(
        name="SimilarityEngine._push_meta",
        owner="repro.serving.engine",
        guard="lock:_state_lock",
        serve_safe=True,
        rekey_apis=(
            "__init__",
            "close",
            "_flush",
            "_rekey_cache",
            "_delta_revalidate",
            "_cache_put",
            "_serve_push",
        ),
        description="push-backend residual metadata, keyed alongside _cache",
    ),
    SharedState(
        name="SimilarityEngine._push_adj",
        owner="repro.serving.engine",
        guard="lock:_state_lock",
        serve_safe=True,
        description="push kernel adjacency snapshot for the current epoch "
        "(copy-on-write under weight patches)",
    ),
    SharedState(
        name="SimilarityEngine._push_map",
        owner="repro.serving.engine",
        guard="lock:_state_lock",
        serve_safe=True,
        description="push kernel node-id map for the current epoch",
    ),
    SharedState(
        name="SimilarityEngine._push_rho",
        owner="repro.serving.engine",
        guard="lock:_state_lock",
        serve_safe=True,
        description="push kernel residual threshold for the current epoch",
    ),
    SharedState(
        name="SimilarityEngine._epoch",
        owner="repro.serving.engine",
        guard="lock:_state_lock",
        serve_safe=True,
        rekey_apis=("__init__", "_flush", "_rebuild"),
        description="monotonic revalidation epoch; cache keys embed it",
    ),
    SharedState(
        name="SimilarityEngine._events",
        owner="repro.serving.engine",
        guard="gil-atomic",
        description="buffered graph-mutation events awaiting revalidation "
        "(list append / swap-and-drain)",
    ),
    SharedState(
        name="SimilarityEngine.params",
        owner="repro.serving.engine",
        guard="owner:repro.serving.engine",
        writers=("repro.qa.system:QASystem.params",),
        description="similarity parameters; QASystem's params setter is "
        "the declared cross-module writer (flushes on change)",
    ),
    # -- persistence: WAL sequence counter and replay buffer -------------
    #
    # The ingest side appends (log-before-enqueue) while the optimizer
    # worker rotates after a checkpoint — two threads, one file handle,
    # so both critical sections serialize on ``_wal_lock``.
    SharedState(
        name="VoteWAL._last_seq",
        owner="repro.persistence.wal",
        guard="lock:_wal_lock",
        description="monotonic durable sequence counter (log before apply)",
    ),
    SharedState(
        name="VoteWAL._records",
        owner="repro.persistence.wal",
        guard="lock:_wal_lock",
        description="in-memory mirror of the durable log for replay",
    ),
    SharedState(
        name="VoteWAL._file",
        owner="repro.persistence.wal",
        guard="lock:_wal_lock",
        description="append handle; rotation swaps it while ingest appends",
    ),
    # -- online optimizer: the vote queue the serve side feeds -----------
    SharedState(
        name="OnlineOptimizer.pending",
        owner="repro.optimize.online",
        guard="owner:repro.optimize.online",
        description="buffered votes awaiting the next optimization batch",
    ),
    SharedState(
        name="OnlineOptimizer._pending_seqs",
        owner="repro.optimize.online",
        guard="owner:repro.optimize.online",
        description="WAL sequence numbers for the pending batch",
    ),
    SharedState(
        name="OnlineOptimizer.history",
        owner="repro.optimize.online",
        guard="owner:repro.optimize.online",
        description="per-batch outcome trajectory (append-only)",
    ),
    # -- serving worker: the ingest queue between threads -----------------
    #
    # ``VoteQueue`` is the only structure both the ingest thread and the
    # optimizer worker mutate; every touch is inside ``with self._cond:``
    # (a Condition wrapping one mutex).  The worker's own optimizer and
    # shadow graph are thread-confined and deliberately *not* listed.
    SharedState(
        name="VoteQueue._items",
        owner="repro.serving.worker",
        guard="lock:_cond",
        description="bounded deque of durable, not-yet-buffered votes",
    ),
    SharedState(
        name="VoteQueue._closed",
        owner="repro.serving.worker",
        guard="lock:_cond",
        description="shutdown latch; put() refuses once set",
    ),
    SharedState(
        name="OptimizerWorker._last_error",
        owner="repro.serving.worker",
        guard="gil-atomic",
        description="newest worker-loop exception (plain rebind; readers "
        "poll it for health checks)",
    ),
    SharedState(
        name="OptimizerWorker._drain",
        owner="repro.serving.worker",
        guard="gil-atomic",
        description="stop-mode flag (plain bool rebind by stop(); the "
        "worker loop reads it after the stop event is set)",
    ),
    # -- observability: registries, rings, instruments -------------------
    SharedState(
        name="MetricsRegistry._metrics",
        owner="repro.obs.metrics",
        guard="lock:_lock",
        serve_safe=True,
        description="name -> instrument map; get-or-create under _lock",
    ),
    SharedState(
        name="MetricsRegistry._types",
        owner="repro.obs.metrics",
        guard="lock:_lock",
        serve_safe=True,
        description="name -> instrument-type map, updated with _metrics",
    ),
    SharedState(
        name="Counter.value",
        owner="repro.obs.metrics",
        guard="lock:_lock",
        serve_safe=True,
        description="counter total; += is a read-modify-write, locked",
    ),
    SharedState(
        name="Gauge.value",
        owner="repro.obs.metrics",
        guard="lock:_lock",
        serve_safe=True,
        description="gauge level; inc/dec are read-modify-writes, locked",
    ),
    SharedState(
        name="Histogram.counts",
        owner="repro.obs.metrics",
        guard="lock:_lock",
        serve_safe=True,
        description="per-bucket sample counts; observe() is a three-field "
        "read-modify-write, locked",
    ),
    SharedState(
        name="Histogram.sum",
        owner="repro.obs.metrics",
        guard="lock:_lock",
        serve_safe=True,
        description="running sample sum, updated with counts",
    ),
    SharedState(
        name="Histogram.count",
        owner="repro.obs.metrics",
        guard="lock:_lock",
        serve_safe=True,
        description="total sample count, updated with counts",
    ),
    SharedState(
        name="tracing._finished",
        owner="repro.obs.tracing",
        kind="module-global",
        guard="lock:_ring_lock",
        serve_safe=True,
        description="bounded ring of completed root traces",
    ),
    SharedState(
        name="tracing._listeners",
        owner="repro.obs.tracing",
        kind="module-global",
        guard="lock:_ring_lock",
        serve_safe=True,
        description="trace-completion callbacks; mutated under the ring "
        "lock, iterated over a copy",
    ),
    SharedState(
        name="tracing._root_seen",
        owner="repro.obs.tracing",
        kind="module-global",
        guard="gil-atomic",
        description="root-span sampling counter; a lost increment only "
        "shifts which span is sampled",
    ),
    SharedState(
        name="tracing._sample_every",
        owner="repro.obs.tracing",
        kind="module-global",
        guard="gil-atomic",
        description="sampling modulus (single rebind in configure call)",
    ),
    SharedState(
        name="FlightRecorder._events",
        owner="repro.obs.recorder",
        guard="gil-atomic",
        description="bounded deque ring of flight events (single append; "
        "dumps snapshot via list() copy)",
    ),
    SharedState(
        name="FlightRecorder._dump_seq",
        owner="repro.obs.recorder",
        guard="lock:_dump_lock",
        description="dump counter for the bundle cap / rate limit",
    ),
    SharedState(
        name="FlightRecorder._last_dump_at",
        owner="repro.obs.recorder",
        guard="lock:_dump_lock",
        description="monotonic timestamp of the newest bundle",
    ),
    SharedState(
        name="recorder._active",
        owner="repro.obs.recorder",
        kind="module-global",
        guard="gil-atomic",
        description="process-wide armed recorder (plain rebind)",
    ),
)


# Functions whose returned/yielded ndarrays cross the engine boundary
# and must therefore be frozen (R009 checks their return/yield sites in
# addition to every store into a ``frozen`` attribute).
FROZEN_RETURNS: "tuple[str, ...]" = (
    "repro.serving.engine:SimilarityEngine._cache_get",
)


def shared_state_by_attr(
    states: "tuple[SharedState, ...] | None" = None,
) -> "dict[str, list[SharedState]]":
    """Index a registry by write-site attribute/global name."""
    index: "dict[str, list[SharedState]]" = {}
    for state in states if states is not None else SHARED_STATE:
        index.setdefault(state.attr, []).append(state)
    return index
