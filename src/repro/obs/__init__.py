"""Unified observability: metrics registry, tracing spans, exporters.

Everything the serving and optimization layers emit flows through this
package:

- :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  of counters, gauges, and fixed-bucket latency histograms; hot-path
  cheap, snapshot-able as a plain dict;
- :mod:`repro.obs.tracing` — :func:`trace_span`, nested per-request
  span trees collected into :class:`Trace` objects (JSONL-exportable,
  console-renderable);
- :mod:`repro.obs.exporters` — JSONL writers, Prometheus text
  exposition, and :func:`summary_table` for end-of-run CLI breakdowns;
- :mod:`repro.obs.recorder` — the flight recorder: a bounded ring of
  per-operation events dumped as a self-contained diagnostic bundle
  when a contract violation, delta fallback, SLO breach, or slow query
  fires a trigger;
- :mod:`repro.obs.slo` — latency objectives graded from
  bucket-interpolated histogram quantiles, with error-budget burn
  gauges and breach-triggered dumps;
- :mod:`repro.obs.diag` — the ``repro-kg diag`` health report, rendered
  from a live snapshot or a dumped bundle alike.

See DESIGN.md § Observability for the span hierarchy and the metric
naming/label conventions.
"""

from repro.obs.catalog import (
    COUNTERS,
    GAUGES,
    HISTOGRAMS,
    METRIC_PREFIXES,
    SPAN_PREFIXES,
    SPANS,
    catalog_errors,
    is_registered_metric,
    is_registered_span,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracing import (
    Span,
    Trace,
    add_trace_listener,
    clear_traces,
    current_span,
    last_trace,
    recent_traces,
    remove_trace_listener,
    set_trace_sampling,
    trace_span,
)
from repro.obs.exporters import (
    JsonlTraceWriter,
    metrics_to_prometheus,
    summary_table,
    traces_to_jsonl,
    write_metrics_json,
    write_traces_jsonl,
)
from repro.obs.recorder import (
    FlightRecorder,
    RecorderEvent,
    active_recorder,
    arm_recorder,
    disarm_recorder,
)
from repro.obs.slo import (
    LatencyObjective,
    SLOStatus,
    SLOWatchdog,
    default_objectives,
    evaluate_objective,
)
from repro.obs.diag import (
    DiagBundle,
    load_bundle,
    render_bundle_report,
    render_health_report,
)

__all__ = [
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "METRIC_PREFIXES",
    "SPAN_PREFIXES",
    "SPANS",
    "catalog_errors",
    "is_registered_metric",
    "is_registered_span",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "Span",
    "Trace",
    "trace_span",
    "set_trace_sampling",
    "current_span",
    "recent_traces",
    "last_trace",
    "clear_traces",
    "add_trace_listener",
    "remove_trace_listener",
    "JsonlTraceWriter",
    "traces_to_jsonl",
    "write_traces_jsonl",
    "write_metrics_json",
    "metrics_to_prometheus",
    "summary_table",
    "FlightRecorder",
    "RecorderEvent",
    "arm_recorder",
    "disarm_recorder",
    "active_recorder",
    "LatencyObjective",
    "SLOStatus",
    "SLOWatchdog",
    "default_objectives",
    "evaluate_objective",
    "DiagBundle",
    "load_bundle",
    "render_bundle_report",
    "render_health_report",
]
