"""The flight recorder: a bounded event ring with dump-on-trigger.

Aggregate counters answer "how many delta fallbacks today"; they cannot
answer "what was the engine doing in the two seconds *before* this
fallback cascade".  The flight recorder closes that gap: every
interesting operation (an ask with its backend/cache/cost attribution,
an optimize with its patch size, a WAL append, a checkpoint) appends one
small structured event to a bounded ring, and a *trigger* — a
:class:`~repro.devtools.contracts.ContractViolation`, a
:class:`~repro.serving.delta.DeltaFallbackError` fallback, an SLO
breach, or a single slow operation — freezes the story by writing a
self-contained **diagnostic bundle** to disk:

- ``events.jsonl`` — the recent event ring, oldest first;
- ``metrics.json`` — a full registry snapshot at dump time;
- ``traces.jsonl`` — the recent finished trace trees;
- ``MANIFEST.json`` — reason, trigger detail, timestamps, counts.

A bundle needs nothing from the live process: ``repro-kg diag <bundle>``
renders the post-mortem from the files alone (:mod:`repro.obs.diag`).

Cost model: recording is one dict build, one deque append, and one
counter increment on a pre-bound handle — no locks on the hot path (the
GIL makes a ``deque.append`` atomic), no I/O until a trigger fires.
When no recorder is armed, instrumented call sites pay a single
module-global load (``active_recorder() is None``); the throughput
benchmark asserts the armed overhead stays under 5%.

Arming mirrors :mod:`repro.devtools.contracts`: set ``REPRO_FLIGHT_DIR``
in the environment (CI does, so a failed test run uploads its bundles),
or call :func:`arm_recorder` explicitly.  Dumps are rate-limited
(``min_dump_interval``) and capped (``max_dumps``) so a trigger storm —
the exact situation the recorder exists for — cannot fill the disk.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections import deque
from collections.abc import Mapping
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import recent_traces, trace_span
from repro.utils.sync import serve_exempt

__all__ = [
    "RecorderEvent",
    "FlightRecorder",
    "arm_recorder",
    "disarm_recorder",
    "active_recorder",
    "record_violation",
    "DEFAULT_CAPACITY",
    "DEFAULT_SLOW_THRESHOLDS",
    "BUNDLE_SCHEMA_VERSION",
]

logger = logging.getLogger(__name__)

#: Events the ring retains (a few minutes of busy serving).
DEFAULT_CAPACITY = 4096

#: Per-operation slow thresholds (seconds) that fire a ``slow_op`` dump.
#: Keyed by event kind; operations without an entry never self-trigger.
DEFAULT_SLOW_THRESHOLDS: Mapping[str, float] = {
    "qa.ask": 0.5,
    "engine.serve": 0.25,
    "qa.optimize": 60.0,
    "wal.append": 0.25,
}

#: Earliest seconds between two dumps (trigger-storm protection).
DEFAULT_MIN_DUMP_INTERVAL = 10.0

#: Most bundles one recorder will ever write (disk protection).
DEFAULT_MAX_DUMPS = 32

#: Bundle format version recorded in every manifest.
BUNDLE_SCHEMA_VERSION = 1

#: Bundle files (besides the manifest); the manifest lists them so a
#: reader can verify completeness.
BUNDLE_FILES = ("events.jsonl", "metrics.json", "traces.jsonl")


class RecorderEvent:
    """One recorded operation: kind, monotonic timestamp, attributes."""

    __slots__ = ("kind", "t", "attrs")

    def __init__(self, kind: str, t: float, attrs: dict[str, object]) -> None:
        self.kind = kind
        self.t = t
        self.attrs = attrs

    def to_dict(self) -> dict[str, object]:
        """JSON-ready shape (``t`` is ``perf_counter`` seconds: ordering
        and spacing are meaningful, the absolute origin is not)."""
        return {"kind": self.kind, "t": round(self.t, 6), **self.attrs}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RecorderEvent {self.kind!r} {self.attrs!r}>"


def _safe_reason(reason: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "_" for c in reason) or "unknown"


class FlightRecorder:
    """Bounded ring of :class:`RecorderEvent` with dump-on-trigger.

    One instance per process is the normal deployment (see
    :func:`arm_recorder`), but instances are self-contained — tests run
    throwaway recorders against throwaway registries.
    """

    def __init__(
        self,
        dump_dir: "str | os.PathLike[str]",
        *,
        capacity: int = DEFAULT_CAPACITY,
        slow_thresholds: "Mapping[str, float] | None" = None,
        min_dump_interval: float = DEFAULT_MIN_DUMP_INTERVAL,
        max_dumps: int = DEFAULT_MAX_DUMPS,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be ≥ 1, got {capacity}")
        self.dump_dir = Path(dump_dir)
        self.capacity = capacity
        self.slow_thresholds: dict[str, float] = dict(
            DEFAULT_SLOW_THRESHOLDS if slow_thresholds is None else slow_thresholds
        )
        self.min_dump_interval = min_dump_interval
        self.max_dumps = max_dumps
        self._registry = registry
        self._events: deque[RecorderEvent] = deque(maxlen=capacity)
        self._dump_lock = threading.Lock()
        self._dump_seq = 0
        self._last_dump_at: "float | None" = None
        reg = self._resolve_registry()
        self._m_events = reg.counter("obs_recorder_events_total")
        self._m_dropped = reg.counter("obs_recorder_dropped_total")
        self._m_dumps = reg.counter("obs_recorder_dumps_total")

    def _resolve_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------
    # recording (hot path)
    # ------------------------------------------------------------------
    def record(self, kind: str, **attrs: object) -> None:
        """Append one event (cheap: no lock, no I/O)."""
        events = self._events
        if len(events) == self.capacity:
            self._m_dropped.inc()
        events.append(RecorderEvent(kind, perf_counter(), attrs))
        self._m_events.inc()

    def record_timed(self, kind: str, seconds: float, **attrs: object) -> None:
        """Append a latency-carrying event; slow operations self-trigger.

        ``seconds`` lands in the event as ``latency``; if ``kind`` has a
        configured slow threshold and exceeds it, a ``slow_op`` dump is
        triggered (rate-limited like every trigger).
        """
        self.record(kind, latency=round(seconds, 6), **attrs)
        threshold = self.slow_thresholds.get(kind)
        if threshold is not None and seconds > threshold:
            self.trigger(
                "slow_op",
                detail=f"{kind} took {seconds:.4f}s (threshold {threshold:g}s)",
            )

    def events(self) -> list[RecorderEvent]:
        """Snapshot of the ring, oldest first."""
        return list(self._events)

    # ------------------------------------------------------------------
    # triggering and dumping
    # ------------------------------------------------------------------
    @serve_exempt(
        "failure-path diagnostics: a rate-limited, capped bundle dump is "
        "an accepted serve-path cost when an anomaly seam fires"
    )
    def trigger(self, reason: str, detail: str = "") -> "Path | None":
        """Request a dump; returns the bundle path or ``None`` if
        rate-limited / capped.  Never raises out of an instrumented
        seam: a broken dump directory must not take down serving."""
        with self._dump_lock:
            now = perf_counter()
            if self._dump_seq >= self.max_dumps:
                return None
            if (
                self._last_dump_at is not None
                and now - self._last_dump_at < self.min_dump_interval
            ):
                return None
            self._last_dump_at = now
            self._dump_seq += 1
            seq = self._dump_seq
        try:
            return self._write_bundle(seq, reason, detail)
        except OSError:
            logger.exception("flight recorder failed to write bundle (%s)", reason)
            return None

    @serve_exempt("operator escape hatch: unconditional bundle write")
    def dump(self, reason: str = "manual", detail: str = "") -> Path:
        """Write a bundle unconditionally (no rate limit, no cap).

        The escape hatch for operators and tests; automated seams go
        through :meth:`trigger`.
        """
        with self._dump_lock:
            self._dump_seq += 1
            self._last_dump_at = perf_counter()
            seq = self._dump_seq
        return self._write_bundle(seq, reason, detail)

    def _write_bundle(self, seq: int, reason: str, detail: str) -> Path:
        with trace_span("obs.dump", reason=reason) as span:
            bundle = self.dump_dir / f"flight-{seq:03d}-{_safe_reason(reason)}"
            bundle.mkdir(parents=True, exist_ok=True)
            events = self.events()
            with open(bundle / "events.jsonl", "w", encoding="utf-8") as handle:
                for event in events:
                    handle.write(json.dumps(_jsonable(event.to_dict())) + "\n")
            snapshot = self._resolve_registry().snapshot()
            with open(bundle / "metrics.json", "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
            traces = recent_traces()
            with open(bundle / "traces.jsonl", "w", encoding="utf-8") as handle:
                for trace in traces:
                    for line in trace.to_json_lines():
                        handle.write(line + "\n")
            manifest: dict[str, object] = {
                "schema_version": BUNDLE_SCHEMA_VERSION,
                "reason": reason,
                "detail": detail,
                "created_at": datetime.now(timezone.utc).isoformat(),
                "pid": os.getpid(),
                "dump_seq": seq,
                "num_events": len(events),
                "num_traces": len(traces),
                "num_series": len(snapshot),
                "events_dropped": self._m_dropped.value,
                "files": list(BUNDLE_FILES),
            }
            with open(bundle / "MANIFEST.json", "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            self._m_dumps.inc()
            if span.recording:
                span.set_attrs(bundle=str(bundle), num_events=len(events))
            logger.warning("flight recorder dumped %s (%s)", bundle, reason)
            return bundle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FlightRecorder dir={str(self.dump_dir)!r} "
            f"events={len(self._events)}/{self.capacity} dumps={self._dump_seq}>"
        )


def _jsonable(attrs: dict[str, object]) -> dict[str, object]:
    out: dict[str, object] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


# ----------------------------------------------------------------------
# process-wide arming (mirrors devtools.contracts' enable switch)
# ----------------------------------------------------------------------
_active: "FlightRecorder | None" = None


def active_recorder() -> "FlightRecorder | None":
    """The armed process-wide recorder, or ``None`` (the default).

    Instrumented call sites do ``rec = active_recorder()`` then guard on
    ``rec is not None`` so a disarmed process pays one global load and
    one comparison per seam.
    """
    return _active


def arm_recorder(
    dump_dir: "str | os.PathLike[str]",
    *,
    capacity: int = DEFAULT_CAPACITY,
    slow_thresholds: "Mapping[str, float] | None" = None,
    min_dump_interval: float = DEFAULT_MIN_DUMP_INTERVAL,
    max_dumps: int = DEFAULT_MAX_DUMPS,
    registry: "MetricsRegistry | None" = None,
) -> FlightRecorder:
    """Arm a process-wide :class:`FlightRecorder` dumping to ``dump_dir``.

    Arguments mirror :class:`FlightRecorder`.  Re-arming replaces the
    previous recorder (its ring is discarded).
    """
    global _active
    _active = FlightRecorder(
        dump_dir,
        capacity=capacity,
        slow_thresholds=slow_thresholds,
        min_dump_interval=min_dump_interval,
        max_dumps=max_dumps,
        registry=registry,
    )
    return _active


def disarm_recorder() -> "FlightRecorder | None":
    """Disarm; returns the recorder that was active (tests restore it)."""
    global _active
    previous = _active
    _active = None
    return previous


def record_violation(seam: str, message: str) -> None:
    """Contract-violation hook: record the event and trigger a dump.

    Called by :mod:`repro.devtools.contracts` *before* the
    ``ContractViolation`` propagates, so the bundle captures the ring as
    it stood at the moment the invariant broke.  A no-op when disarmed.
    """
    rec = _active
    if rec is None:
        return
    rec.record("contract.violation", seam=seam, message=message)
    rec.trigger("contract_violation", detail=f"{seam}: {message}")


def _env_flight_dir() -> "str | None":
    value = os.environ.get("REPRO_FLIGHT_DIR", "").strip()
    return value or None


_env_dir = _env_flight_dir()
if _env_dir is not None:  # pragma: no cover - exercised via subprocess tests
    arm_recorder(_env_dir)
