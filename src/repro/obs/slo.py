"""SLO watchdog: latency objectives evaluated from histogram quantiles.

An objective is a sentence — "p95 of ``qa_ask_seconds`` stays under
250ms" — made checkable: :class:`LatencyObjective` names the histogram,
the target quantile, and the threshold; :class:`SLOWatchdog.check`
estimates the quantile with the bucket-interpolation math from
:mod:`repro.obs.metrics`, computes **attainment** (the interpolated
fraction of operations under the threshold) and **error-budget burn**
(``(1 - attainment) / (1 - target_quantile)`` — burn > 1 means the
budget is being spent faster than the objective allows), and publishes
all three as per-objective gauges in the catalog:

- ``slo_attainment_ratio{slo="..."}``
- ``slo_budget_burn{slo="..."}``
- ``slo_latency_estimate_seconds{slo="..."}``

A breach — estimated quantile above the threshold — increments
``slo_breaches_total`` and, on the not-breached → breached transition,
fires the armed flight recorder (:mod:`repro.obs.recorder`), so the
bundle captures the window in which the objective was lost rather than
a steady-state of failure.

The evaluation core (:func:`evaluate_objective`) is a pure function of
``(bounds, cumulative counts)``, which is exactly what both a live
:class:`~repro.obs.metrics.Histogram` and a dumped ``metrics.json``
snapshot provide — the ``repro-kg diag`` report grades a dead bundle
with the same math the live watchdog uses.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    estimate_quantile,
    fraction_at_or_below,
    get_registry,
)
from repro.obs.recorder import FlightRecorder, active_recorder

__all__ = [
    "LatencyObjective",
    "SLOStatus",
    "SLOWatchdog",
    "evaluate_objective",
    "merge_histograms",
    "default_objectives",
]


@dataclass(frozen=True)
class LatencyObjective:
    """"p``quantile`` of ``metric`` stays ≤ ``threshold`` seconds"."""

    name: str  #: objective id, the ``slo`` label value (e.g. ``ask-p95``)
    metric: str  #: histogram series name (e.g. ``qa_ask_seconds``)
    quantile: float  #: target quantile in (0, 1) (e.g. 0.95)
    threshold: float  #: latency threshold in seconds

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(
                f"objective {self.name!r}: quantile must be in (0, 1), "
                f"got {self.quantile}"
            )
        if self.threshold <= 0.0:
            raise ValueError(
                f"objective {self.name!r}: threshold must be > 0, "
                f"got {self.threshold}"
            )


@dataclass(frozen=True)
class SLOStatus:
    """One objective's verdict at one evaluation."""

    objective: LatencyObjective
    count: int  #: samples observed (0 ⇒ nothing to grade)
    estimate: float  #: estimated latency at the target quantile (nan if empty)
    attainment: float  #: interpolated fraction ≤ threshold (nan if empty)
    burn: float  #: error-budget burn rate (nan if empty)
    breached: bool  #: estimate above threshold


def evaluate_objective(
    objective: LatencyObjective,
    bounds: Sequence[float],
    cumulative: Sequence[int],
) -> SLOStatus:
    """Grade one objective against merged histogram data (pure)."""
    total = cumulative[-1] if cumulative else 0
    if total == 0:
        return SLOStatus(
            objective=objective,
            count=0,
            estimate=math.nan,
            attainment=math.nan,
            burn=math.nan,
            breached=False,
        )
    estimate = estimate_quantile(bounds, cumulative, objective.quantile)
    attainment = fraction_at_or_below(bounds, cumulative, objective.threshold)
    budget = 1.0 - objective.quantile
    if budget <= 0.0:
        # An objective asymptotically close to p100 has no error budget
        # left to divide by: full attainment burns nothing, anything
        # less burns infinitely fast.
        burn = 0.0 if attainment >= 1.0 else math.inf
    else:
        burn = (1.0 - attainment) / budget
    return SLOStatus(
        objective=objective,
        count=total,
        estimate=estimate,
        attainment=attainment,
        burn=burn,
        breached=estimate > objective.threshold,
    )


def merge_histograms(
    histograms: Iterable[Histogram],
) -> "tuple[tuple[float, ...], list[int]] | None":
    """Merge same-name label series into one ``(bounds, cumulative)``.

    Only series sharing the first one's bucket bounds participate (bucket
    layouts are per-creation-site, so in practice all series of one name
    agree); returns ``None`` for an empty iterable.
    """
    bounds: "tuple[float, ...] | None" = None
    merged: list[int] = []
    for histogram in histograms:
        if bounds is None:
            bounds = histogram.buckets
            merged = [0] * (len(bounds) + 1)
        elif histogram.buckets != bounds:
            continue
        for i, c in enumerate(histogram.cumulative_counts()):
            merged[i] += c
    if bounds is None:
        return None
    return bounds, merged


def default_objectives() -> tuple[LatencyObjective, ...]:
    """The stock serving-loop objectives the CLI and diag report grade.

    Thresholds are generous for CI hardware; a deployment tightens them
    by passing its own list to :class:`SLOWatchdog`.
    """
    return (
        LatencyObjective("ask-p95", "qa_ask_seconds", 0.95, 0.25),
        LatencyObjective("ask-p99", "qa_ask_seconds", 0.99, 1.0),
        LatencyObjective("wal-append-p99", "wal_append_seconds", 0.99, 0.25),
        LatencyObjective("solve-p95", "sgp_solve_seconds", 0.95, 10.0),
    )


class SLOWatchdog:
    """Evaluates objectives against the live registry; the breach trigger.

    Call :meth:`check` periodically (the CLI does at end of run; a
    service would on a timer).  Each check grades the **interval** since
    the previous one: the watchdog keeps a per-objective snapshot of the
    merged cumulative bucket counts and evaluates the elementwise delta,
    so a long healthy history can no longer dilute a fresh latency
    regression out of the estimate (a histogram carrying a million fast
    samples would otherwise hide minutes of breached traffic).  The
    first check, and any check after a counter reset (negative delta —
    a replaced registry), grades the full cumulative data.  A check
    that saw *no* new samples carries the previous verdict forward: a
    standing breach keeps burning the counter, but gauges keep their
    last real values and no new transition fires.

    Gauges are refreshed every non-empty check; the breach counter
    increments every breached check; the flight-recorder trigger fires
    only on the not-breached → breached *transition*, so a persistent
    breach dumps one bundle, not one per poll.
    """

    def __init__(
        self,
        objectives: "Iterable[LatencyObjective] | None" = None,
        *,
        registry: "MetricsRegistry | None" = None,
        recorder: "FlightRecorder | None" = None,
    ) -> None:
        self.objectives: tuple[LatencyObjective, ...] = tuple(
            default_objectives() if objectives is None else objectives
        )
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self._registry = registry
        self._recorder = recorder
        self._was_breached: dict[str, bool] = {}
        # Per-objective snapshot of the merged cumulative bucket counts
        # at the previous check; the next check grades the delta.
        self._prev_counts: dict[str, tuple[tuple[float, ...], tuple[int, ...]]] = {}

    def _resolve_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _resolve_recorder(self) -> "FlightRecorder | None":
        return self._recorder if self._recorder is not None else active_recorder()

    def _interval_window(
        self,
        name: str,
        bounds: "tuple[float, ...]",
        cumulative: "list[int]",
    ) -> "list[int]":
        """Bucket counts observed since the previous check of ``name``.

        Falls back to the full cumulative data on the first check, on a
        bucket-layout change, and on a counter reset (any negative
        elementwise delta — a replaced registry starts from zero).
        """
        prev = self._prev_counts.get(name)
        self._prev_counts[name] = (bounds, tuple(cumulative))
        if prev is None or prev[0] != bounds:
            return cumulative
        deltas = [c - p for c, p in zip(cumulative, prev[1])]
        if any(d < 0 for d in deltas):
            return cumulative
        return deltas

    def check(self) -> list[SLOStatus]:
        """Grade every objective; refresh gauges; trigger on new breaches."""
        registry = self._resolve_registry()
        by_metric: dict[str, list[Histogram]] = {}
        for instrument in registry.series().values():
            if isinstance(instrument, Histogram):
                by_metric.setdefault(instrument.name, []).append(instrument)

        statuses: list[SLOStatus] = []
        for objective in self.objectives:
            merged = merge_histograms(by_metric.get(objective.metric, []))
            label = {"slo": objective.name}
            if merged is None:
                status = evaluate_objective(objective, (), [0])
            else:
                window = self._interval_window(
                    objective.name, merged[0], merged[1]
                )
                status = evaluate_objective(objective, merged[0], window)
                if status.count == 0 and self._was_breached.get(
                    objective.name, False
                ):
                    # No traffic since the previous check — nothing to
                    # re-grade, so the standing breach carries forward:
                    # the counter keeps burning, gauges keep their last
                    # real values, and no new transition fires.
                    status = replace(status, breached=True)
                    statuses.append(status)
                    registry.counter("slo_breaches_total", **label).inc()
                    continue
            statuses.append(status)
            if status.count:
                registry.gauge("slo_attainment_ratio", **label).set(status.attainment)
                registry.gauge("slo_budget_burn", **label).set(status.burn)
                registry.gauge("slo_latency_estimate_seconds", **label).set(
                    status.estimate
                )
            newly = status.breached and not self._was_breached.get(
                objective.name, False
            )
            self._was_breached[objective.name] = status.breached
            if status.breached:
                registry.counter("slo_breaches_total", **label).inc()
            if newly:
                recorder = self._resolve_recorder()
                if recorder is not None:
                    recorder.record(
                        "slo.breach",
                        slo=objective.name,
                        estimate=round(status.estimate, 6),
                        threshold=objective.threshold,
                        burn=round(status.burn, 4),
                    )
                    recorder.trigger(
                        "slo_breach",
                        detail=(
                            f"{objective.name}: p{objective.quantile * 100:g} "
                            f"estimate {status.estimate:.4f}s > threshold "
                            f"{objective.threshold:g}s "
                            f"(attainment {status.attainment:.2%}, "
                            f"burn {status.burn:.2f}x)"
                        ),
                    )
        return statuses
