"""The central catalog of metric and span names.

Every metric series and tracing span the codebase emits is declared
here, once, next to its kind.  The point is typo-proofing: a metric
name is a stringly-typed API, and a misspelled ``engine_cache_hit_total``
silently creates a phantom series that no dashboard reads while the
real one flatlines.  Two guards consume this catalog:

- the custom lint rule **R002** (:mod:`repro.devtools.lint`) rejects
  any string literal passed to ``registry.counter/gauge/histogram`` or
  ``trace_span`` that is not declared here, at lint time;
- the test suite asserts every catalog entry follows the naming
  conventions below, so the catalog cannot drift into chaos either.

Naming conventions (also documented in DESIGN.md):

- metric names are ``<subsystem>_<what>[_<unit>]`` with a subsystem
  prefix from :data:`METRIC_PREFIXES`; counters end in ``_total``,
  latency histograms in ``_seconds``;
- span names are ``<subsystem>.<stage>`` with a prefix from
  :data:`SPAN_PREFIXES`.

Adding a new series is a two-line change: declare it here, then use it;
the lint self-check keeps the two in sync in both directions.
"""

from __future__ import annotations

__all__ = [
    "METRIC_PREFIXES",
    "SPAN_PREFIXES",
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "METRICS",
    "SPANS",
    "is_registered_metric",
    "is_registered_span",
    "catalog_errors",
]

#: Allowed metric-name prefixes, one per instrumented subsystem.
METRIC_PREFIXES: tuple[str, ...] = (
    "qa_",
    "engine_",
    "sgp_",
    "optimize_",
    "votes_",
    "eval_",
    "wal_",
    "snapshot_",
)

#: Allowed span-name prefixes (dotted form of the same subsystems).
SPAN_PREFIXES: tuple[str, ...] = (
    "qa.",
    "engine.",
    "sgp.",
    "optimize.",
    "votes.",
    "eval.",
    "wal.",
    "snapshot.",
)

#: Monotonic counters (must end in ``_total``).
COUNTERS: frozenset[str] = frozenset(
    {
        # serving engine (repro/serving/engine.py)
        "engine_builds_total",
        "engine_rebuilds_avoided_total",
        "engine_weight_patches_total",
        "engine_rows_appended_total",
        "engine_query_events_ignored_total",
        "engine_cache_hits_total",
        "engine_cache_misses_total",
        "engine_serves_total",
        "engine_batch_serves_total",
        "engine_delta_revalidations_total",
        "engine_delta_entries_patched_total",
        "engine_delta_fallbacks_total",
        "engine_delta_rekeys_total",
        "engine_push_serves_total",
        "engine_push_repushes_total",
        "engine_push_rekeys_total",
        # QA front end (repro/qa/system.py)
        "qa_asks_total",
        "qa_votes_total",
        # SGP solvers (repro/sgp/solver.py, condensation.py)
        "sgp_solves_total",
        "sgp_iterations_total",
        "sgp_fallbacks_total",
        "sgp_partial_solutions_total",
        "sgp_condensation_rounds_total",
        # optimization drivers (repro/optimize/report.py)
        "optimize_runs_total",
        "optimize_changed_edges_total",
        # feasibility judgment (repro/votes/feasibility.py)
        "votes_feasible_total",
        "votes_infeasible_total",
        # durability layer (repro/persistence/)
        "wal_appends_total",
        "wal_rotations_total",
        "wal_torn_records_total",
        "wal_replayed_total",
        "snapshot_writes_total",
        "snapshot_recoveries_total",
        "snapshot_invalid_total",
    }
)

#: Point-in-time gauges.
GAUGES: frozenset[str] = frozenset(
    {
        "engine_cache_entries",
        "engine_graph_version",
        "wal_last_seq",
        "snapshot_last_seq",
    }
)

#: Histograms (latency series end in ``_seconds``; the deviation
#: magnitude series is explicitly unitless — deviations live on [0, 1)).
HISTOGRAMS: frozenset[str] = frozenset(
    {
        "engine_build_seconds",
        "engine_propagate_seconds",
        "engine_delta_seconds",
        "engine_push_edges_touched",
        "qa_ask_seconds",
        "sgp_solve_seconds",
        "optimize_run_seconds",
        "optimize_deviation_magnitude",
        "wal_append_seconds",
        "snapshot_write_seconds",
        "snapshot_recover_seconds",
    }
)

#: Every declared metric name, any kind.
METRICS: frozenset[str] = COUNTERS | GAUGES | HISTOGRAMS

#: Every declared tracing-span name.
SPANS: frozenset[str] = frozenset(
    {
        # QA front end
        "qa.ask",
        "qa.ask_many",
        "qa.optimize",
        # serving engine
        "engine.rebuild",
        "engine.propagate",
        "engine.push",
        "engine.delta",
        # SGP solvers
        "sgp.solve",
        "sgp.condensation",
        # optimization drivers
        "optimize.single_vote",
        "optimize.multi_vote",
        "optimize.split_merge",
        "optimize.split",
        "optimize.merge",
        "optimize.encode",
        "optimize.vote",
        "optimize.cluster",
        "optimize.solve_clusters",
        # votes / evaluation
        "votes.feasibility_filter",
        "eval.test_set",
        # durability layer
        "wal.replay",
        "snapshot.write",
        "snapshot.recover",
    }
)

#: Histograms exempt from the ``_seconds`` suffix rule (unitless data).
_UNITLESS_HISTOGRAMS: frozenset[str] = frozenset(
    {
        "optimize_deviation_magnitude",
        # per-query edge traversals of the push backend (a count, not a
        # latency — the series the sublinearity claim is asserted on)
        "engine_push_edges_touched",
    }
)


def is_registered_metric(name: str) -> bool:
    """Whether ``name`` is a declared metric series."""
    return name in METRICS


def is_registered_span(name: str) -> bool:
    """Whether ``name`` is a declared tracing span."""
    return name in SPANS


def catalog_errors() -> list[str]:
    """Convention violations inside the catalog itself (empty = clean).

    Checked by the test suite so the catalog stays the single source of
    naming truth: every entry must carry a known subsystem prefix,
    counters must end in ``_total``, and latency histograms in
    ``_seconds``.
    """
    errors: list[str] = []
    for name in sorted(METRICS):
        if not name.startswith(METRIC_PREFIXES):
            errors.append(
                f"metric {name!r} has no registered subsystem prefix "
                f"{METRIC_PREFIXES}"
            )
    for name in sorted(COUNTERS):
        if not name.endswith("_total"):
            errors.append(f"counter {name!r} must end in '_total'")
    for name in sorted(GAUGES | HISTOGRAMS):
        if name.endswith("_total"):
            errors.append(f"non-counter {name!r} must not end in '_total'")
    for name in sorted(HISTOGRAMS - _UNITLESS_HISTOGRAMS):
        if not name.endswith("_seconds"):
            errors.append(
                f"histogram {name!r} must end in '_seconds' (or be declared "
                f"unitless in the catalog)"
            )
    return errors
