"""The central catalog of metric and span names.

Every metric series and tracing span the codebase emits is declared
here, once, next to its kind.  The point is typo-proofing: a metric
name is a stringly-typed API, and a misspelled ``engine_cache_hit_total``
silently creates a phantom series that no dashboard reads while the
real one flatlines.  Two guards consume this catalog:

- the custom lint rule **R002** (:mod:`repro.devtools.lint`) rejects
  any string literal passed to ``registry.counter/gauge/histogram`` or
  ``trace_span`` that is not declared here, at lint time;
- the test suite asserts every catalog entry follows the naming
  conventions below, so the catalog cannot drift into chaos either.

Naming conventions (also documented in DESIGN.md):

- metric names are ``<subsystem>_<what>[_<unit>]`` with a subsystem
  prefix from :data:`METRIC_PREFIXES`; counters end in ``_total``,
  latency histograms in ``_seconds``;
- span names are ``<subsystem>.<stage>`` with a prefix from
  :data:`SPAN_PREFIXES`.

Adding a new series is a two-line change: declare it here, then use it;
the lint self-check keeps the two in sync in both directions.
"""

from __future__ import annotations

__all__ = [
    "METRIC_PREFIXES",
    "SPAN_PREFIXES",
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "METRICS",
    "SPANS",
    "METRIC_HELP",
    "metric_help",
    "is_registered_metric",
    "is_registered_span",
    "catalog_errors",
]

#: Allowed metric-name prefixes, one per instrumented subsystem.
METRIC_PREFIXES: tuple[str, ...] = (
    "qa_",
    "engine_",
    "sgp_",
    "optimize_",
    "votes_",
    "eval_",
    "wal_",
    "snapshot_",
    "obs_",
    "slo_",
)

#: Allowed span-name prefixes (dotted form of the same subsystems).
SPAN_PREFIXES: tuple[str, ...] = (
    "qa.",
    "engine.",
    "sgp.",
    "optimize.",
    "votes.",
    "eval.",
    "wal.",
    "snapshot.",
    "obs.",
)

#: Monotonic counters (must end in ``_total``).
COUNTERS: frozenset[str] = frozenset(
    {
        # serving engine (repro/serving/engine.py)
        "engine_builds_total",
        "engine_rebuilds_avoided_total",
        "engine_weight_patches_total",
        "engine_rows_appended_total",
        "engine_query_events_ignored_total",
        "engine_cache_hits_total",
        "engine_cache_misses_total",
        "engine_serves_total",
        "engine_batch_serves_total",
        "engine_delta_revalidations_total",
        "engine_delta_entries_patched_total",
        "engine_delta_fallbacks_total",
        "engine_delta_rekeys_total",
        "engine_push_serves_total",
        "engine_push_repushes_total",
        "engine_push_rekeys_total",
        # cache inserts computed against an epoch that a concurrent
        # publish already superseded — dropped instead of stored, so a
        # stale-basis score can never be delta-corrected into a live
        # epoch (repro/serving/engine.py)
        "engine_stale_cache_drops_total",
        # QA front end (repro/qa/system.py)
        "qa_asks_total",
        "qa_votes_total",
        # SGP solvers (repro/sgp/solver.py, condensation.py)
        "sgp_solves_total",
        "sgp_iterations_total",
        "sgp_fallbacks_total",
        "sgp_partial_solutions_total",
        "sgp_condensation_rounds_total",
        # optimization drivers (repro/optimize/report.py)
        "optimize_runs_total",
        "optimize_changed_edges_total",
        # concurrent ingest / background worker (repro/serving/worker.py)
        "optimize_ingest_votes_total",
        "optimize_ingest_blocked_total",
        "optimize_epochs_published_total",
        "optimize_worker_errors_total",
        # feasibility judgment (repro/votes/feasibility.py)
        "votes_feasible_total",
        "votes_infeasible_total",
        # durability layer (repro/persistence/)
        "wal_appends_total",
        "wal_rotations_total",
        "wal_torn_records_total",
        "wal_replayed_total",
        "snapshot_writes_total",
        "snapshot_recoveries_total",
        "snapshot_invalid_total",
        # observability internals (repro/obs/recorder.py, tracing.py)
        "obs_recorder_events_total",
        "obs_recorder_dropped_total",
        "obs_recorder_dumps_total",
        "obs_traces_dropped_total",
        # SLO watchdog (repro/obs/slo.py)
        "slo_breaches_total",
    }
)

#: Point-in-time gauges.
GAUGES: frozenset[str] = frozenset(
    {
        "engine_cache_entries",
        "engine_graph_version",
        "wal_last_seq",
        "snapshot_last_seq",
        # durability staleness (repro/persistence/store.py): how far the
        # WAL tail has run ahead of the newest snapshot, and how old that
        # snapshot is — the two numbers a recovery-time estimate needs.
        "wal_lag_records",
        "snapshot_age_seconds",
        # concurrent ingest backpressure / staleness (repro/serving/worker.py):
        # votes parked in the ingest queue, total votes the worker has
        # not yet folded into a published epoch, and the age of the
        # oldest queued vote
        "optimize_queue_depth",
        "optimize_worker_lag_votes",
        "optimize_worker_lag_seconds",
        # SLO watchdog (repro/obs/slo.py), one series per objective
        "slo_attainment_ratio",
        "slo_budget_burn",
        "slo_latency_estimate_seconds",
    }
)

#: Histograms (latency series end in ``_seconds``; the deviation
#: magnitude series is explicitly unitless — deviations live on [0, 1)).
HISTOGRAMS: frozenset[str] = frozenset(
    {
        "engine_build_seconds",
        "engine_propagate_seconds",
        "engine_delta_seconds",
        "engine_push_edges_touched",
        "engine_push_error_bound",
        "qa_ask_seconds",
        "sgp_solve_seconds",
        "optimize_run_seconds",
        "optimize_deviation_magnitude",
        "wal_append_seconds",
        "snapshot_write_seconds",
        "snapshot_recover_seconds",
        # wall-clock cost of one atomic weight-patch publication (live
        # graph apply + engine flush under the state lock)
        "optimize_epoch_publish_seconds",
    }
)

#: Every declared metric name, any kind.
METRICS: frozenset[str] = COUNTERS | GAUGES | HISTOGRAMS

#: Every declared tracing-span name.
SPANS: frozenset[str] = frozenset(
    {
        # QA front end
        "qa.ask",
        "qa.ask_many",
        "qa.optimize",
        # serving engine
        "engine.rebuild",
        "engine.propagate",
        "engine.push",
        "engine.delta",
        # SGP solvers
        "sgp.solve",
        "sgp.condensation",
        # optimization drivers
        "optimize.single_vote",
        "optimize.multi_vote",
        "optimize.split_merge",
        "optimize.split",
        "optimize.merge",
        "optimize.encode",
        "optimize.vote",
        "optimize.cluster",
        "optimize.solve_clusters",
        "optimize.publish",
        # votes / evaluation
        "votes.feasibility_filter",
        "eval.test_set",
        # durability layer
        "wal.replay",
        "snapshot.write",
        "snapshot.recover",
        # observability (flight-recorder bundle dumps)
        "obs.dump",
    }
)

#: Histograms exempt from the ``_seconds`` suffix rule (unitless data).
_UNITLESS_HISTOGRAMS: frozenset[str] = frozenset(
    {
        "optimize_deviation_magnitude",
        # per-query edge traversals of the push backend (a count, not a
        # latency — the series the sublinearity claim is asserted on)
        "engine_push_edges_touched",
        # per-query accounted dropped mass of the push backend (a score
        # error, not a latency — the accuracy half of the cost/accuracy
        # attribution the flight recorder captures per ask)
        "engine_push_error_bound",
    }
)

#: One-line ``# HELP`` text per metric, keyed by series name.  Optional —
#: :func:`metric_help` generates a fallback for undocumented series — but
#: the operator-facing ones (everything the ``diag`` report reads) should
#: be described here.
METRIC_HELP: dict[str, str] = {
    "engine_cache_hits_total": "Score-LRU lookups served without propagation.",
    "engine_cache_misses_total": "Score-LRU lookups that required propagation.",
    "engine_serves_total": "Single-query score requests served by the engine.",
    "engine_delta_fallbacks_total": (
        "Delta revalidations abandoned for a full cache invalidation "
        "(dense patch frontier)."
    ),
    "engine_push_edges_touched": (
        "Edges traversed per push-backend query (the cost half of the "
        "push cost/accuracy tradeoff)."
    ),
    "engine_push_error_bound": (
        "Accounted dropped-mass score error per push-backend query (the "
        "accuracy half of the push cost/accuracy tradeoff)."
    ),
    "engine_push_repushes_total": (
        "Cached push entries recomputed because an optimizer patch "
        "touched their frontier."
    ),
    "engine_stale_cache_drops_total": (
        "Cache inserts dropped because their basis epoch was superseded "
        "by a concurrent publish before the store."
    ),
    "optimize_ingest_votes_total": (
        "Votes accepted by the concurrent ingest path (logged and "
        "enqueued for the background optimizer worker)."
    ),
    "optimize_ingest_blocked_total": (
        "Ingest submissions that hit a full vote queue and had to wait "
        "(backpressure events)."
    ),
    "optimize_epochs_published_total": (
        "Weight-patch epochs the background worker published atomically "
        "to the serving engine."
    ),
    "optimize_worker_errors_total": (
        "Exceptions swallowed by the background optimizer worker loop "
        "(the failed batch stays buffered for retry)."
    ),
    "optimize_epoch_publish_seconds": (
        "Latency of one atomic epoch publication: live-graph weight "
        "apply plus engine flush under the state lock."
    ),
    "optimize_queue_depth": "Votes currently parked in the ingest queue.",
    "optimize_worker_lag_votes": (
        "Ingested votes not yet folded into a published epoch (queue "
        "depth plus the worker's pending buffer)."
    ),
    "optimize_worker_lag_seconds": (
        "Age of the oldest vote still waiting in the ingest queue."
    ),
    "qa_ask_seconds": "End-to-end ask() latency.",
    "qa_asks_total": "Questions served by the QA front end.",
    "qa_votes_total": "User votes ingested by the QA front end.",
    "wal_append_seconds": "Vote-WAL fsync-append latency.",
    "wal_lag_records": (
        "WAL records past the newest snapshot (replay work a recovery "
        "would need)."
    ),
    "snapshot_age_seconds": "Age of the newest graph snapshot.",
    "obs_recorder_events_total": "Events recorded by the flight recorder.",
    "obs_recorder_dropped_total": (
        "Flight-recorder events evicted from the ring before any dump."
    ),
    "obs_recorder_dumps_total": "Diagnostic bundles written by the flight recorder.",
    "obs_traces_dropped_total": (
        "Finished traces evicted unread from the tracing ring buffer."
    ),
    "slo_breaches_total": "SLO objective evaluations that found a breach.",
    "slo_attainment_ratio": (
        "Estimated fraction of operations meeting the objective's "
        "latency threshold."
    ),
    "slo_budget_burn": (
        "Error-budget burn rate: (1 - attainment) / (1 - target "
        "quantile); > 1 means burning budget faster than allowed."
    ),
    "slo_latency_estimate_seconds": (
        "Bucket-interpolated latency estimate at the objective's target "
        "quantile."
    ),
}


def metric_help(name: str) -> str:
    """``# HELP`` text for ``name`` (generated fallback if undocumented)."""
    return METRIC_HELP.get(name, f"Series {name} (see repro/obs/catalog.py).")


def is_registered_metric(name: str) -> bool:
    """Whether ``name`` is a declared metric series."""
    return name in METRICS


def is_registered_span(name: str) -> bool:
    """Whether ``name`` is a declared tracing span."""
    return name in SPANS


def catalog_errors() -> list[str]:
    """Convention violations inside the catalog itself (empty = clean).

    Checked by the test suite so the catalog stays the single source of
    naming truth: every entry must carry a known subsystem prefix,
    counters must end in ``_total``, and latency histograms in
    ``_seconds``.
    """
    errors: list[str] = []
    for name in sorted(METRICS):
        if not name.startswith(METRIC_PREFIXES):
            errors.append(
                f"metric {name!r} has no registered subsystem prefix "
                f"{METRIC_PREFIXES}"
            )
    for name in sorted(COUNTERS):
        if not name.endswith("_total"):
            errors.append(f"counter {name!r} must end in '_total'")
    for name in sorted(GAUGES | HISTOGRAMS):
        if name.endswith("_total"):
            errors.append(f"non-counter {name!r} must not end in '_total'")
    for name in sorted(HISTOGRAMS - _UNITLESS_HISTOGRAMS):
        if not name.endswith("_seconds"):
            errors.append(
                f"histogram {name!r} must end in '_seconds' (or be declared "
                f"unitless in the catalog)"
            )
    for name in sorted(METRIC_HELP):
        if name not in METRICS:
            errors.append(f"METRIC_HELP documents undeclared series {name!r}")
    return errors
