"""Post-mortem rendering: health reports from snapshots and bundles.

``repro-kg diag`` is the read side of the flight recorder: given either
a live metrics snapshot (``--metrics-json`` from any instrumented CLI
run) or a dumped bundle directory (:mod:`repro.obs.recorder`), render
the operator's first-five-minutes view —

- **SLO attainment** — every objective graded with the same
  bucket-interpolation math as the live watchdog (:mod:`repro.obs.slo`);
- **serving health** — cache-hit ratio per engine, serve/delta/push
  counters, fallback counts;
- **push cost/accuracy** — p50/p95/p99 of per-query ``edges_touched``
  and ``error_bound``, the tradeoff the push kernel's contract is about;
- **durability staleness** — WAL lag behind the newest snapshot,
  snapshot age, torn records;
- **recent events** — the tail of the recorder ring (bundles only).

Everything here is a pure function of the snapshot dict / bundle files,
so a post-mortem needs no live process and no imports beyond the obs
package — bundles stay diagnosable from an artifact tarball alone.
"""

from __future__ import annotations

import json
import math
import os
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import estimate_quantile
from repro.obs.slo import LatencyObjective, default_objectives, evaluate_objective
from repro.utils.tables import format_table

__all__ = [
    "DiagBundle",
    "load_bundle",
    "render_health_report",
    "render_bundle_report",
]

#: How many trailing recorder events the bundle report prints.
EVENT_TAIL = 15


@dataclass
class DiagBundle:
    """A loaded flight-recorder bundle (all parsed, no live state)."""

    path: Path
    manifest: dict[str, object]
    metrics: dict[str, object]
    events: list[dict[str, object]] = field(default_factory=list)
    traces: list[dict[str, object]] = field(default_factory=list)


def load_bundle(path: "str | os.PathLike[str]") -> DiagBundle:
    """Parse a bundle directory written by the flight recorder.

    Raises ``FileNotFoundError`` for a missing directory or manifest;
    the data files are each optional (a partial bundle still renders —
    that is the point of a post-mortem format).
    """
    bundle = Path(path)
    manifest_path = bundle / "MANIFEST.json"
    if not manifest_path.is_file():
        raise FileNotFoundError(
            f"not a flight-recorder bundle (no MANIFEST.json): {bundle}"
        )
    with open(manifest_path, encoding="utf-8") as handle:
        manifest: dict[str, object] = json.load(handle)

    metrics: dict[str, object] = {}
    metrics_path = bundle / "metrics.json"
    if metrics_path.is_file():
        with open(metrics_path, encoding="utf-8") as handle:
            metrics = json.load(handle)

    events = _read_jsonl(bundle / "events.jsonl")
    traces = _read_jsonl(bundle / "traces.jsonl")
    return DiagBundle(
        path=bundle, manifest=manifest, metrics=metrics, events=events, traces=traces
    )


def _read_jsonl(path: Path) -> list[dict[str, object]]:
    if not path.is_file():
        return []
    out: list[dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ----------------------------------------------------------------------
# snapshot access helpers (series key = 'name{k="v",...}')
# ----------------------------------------------------------------------
def _parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name = key[:brace]
    labels: dict[str, str] = {}
    inner = key[brace + 1 : key.rfind("}")]
    for part in inner.split(","):
        if "=" in part:
            k, _, v = part.partition("=")
            labels[k] = v.strip('"')
    return name, labels


def _series(
    snapshot: Mapping[str, object], name: str
) -> list[tuple[dict[str, str], object]]:
    out: list[tuple[dict[str, str], object]] = []
    for key, value in snapshot.items():
        parsed, labels = _parse_series_key(key)
        if parsed == name:
            out.append((labels, value))
    return out


def _sum_counter(snapshot: Mapping[str, object], name: str) -> float:
    total = 0.0
    for _, value in _series(snapshot, name):
        if isinstance(value, (int, float)):
            total += value
    return total


def _merged_histogram(
    snapshot: Mapping[str, object], name: str
) -> "tuple[tuple[float, ...], list[int]] | None":
    """Merge a snapshot's label series of one histogram into
    ``(bounds, cumulative)`` — the shape the quantile math consumes.

    Snapshot bucket dicts already hold *cumulative* (``le``-semantics)
    counts (what ``Histogram.snapshot_value`` writes), and a sum of
    cumulative series is the cumulative series of the sum, so the merge
    is a plain element-wise addition.
    """
    bounds: "tuple[float, ...] | None" = None
    merged: list[int] = []
    for _, value in _series(snapshot, name):
        if not isinstance(value, Mapping):
            continue
        buckets = value.get("buckets")
        if not isinstance(buckets, Mapping):
            continue
        finite = sorted(
            (float(b), int(c)) for b, c in buckets.items() if b != "+Inf"
        )
        these = tuple(b for b, _ in finite)
        cumulative = [c for _, c in finite] + [int(buckets.get("+Inf", 0))]
        if bounds is None:
            bounds = these
            merged = [0] * (len(bounds) + 1)
        elif these != bounds:
            continue
        for i, c in enumerate(cumulative):
            merged[i] += c
    if bounds is None:
        return None
    return bounds, merged


def _fmt(value: float, spec: str = ".4g") -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return format(value, spec)


def _fmt_ms(seconds: float) -> str:
    if math.isnan(seconds):
        return "-"
    return f"{seconds * 1e3:.2f}ms"


# ----------------------------------------------------------------------
# report sections
# ----------------------------------------------------------------------
def _slo_section(
    snapshot: Mapping[str, object], objectives: Sequence[LatencyObjective]
) -> str:
    rows: list[list[object]] = []
    for objective in objectives:
        merged = _merged_histogram(snapshot, objective.metric)
        if merged is None:
            status = evaluate_objective(objective, (), [0])
        else:
            status = evaluate_objective(objective, merged[0], merged[1])
        if status.count == 0:
            verdict = "no data"
        elif status.breached:
            verdict = "BREACH"
        else:
            verdict = "ok"
        rows.append(
            [
                objective.name,
                f"p{objective.quantile * 100:g}({objective.metric}) "
                f"<= {objective.threshold:g}s",
                status.count,
                _fmt_ms(status.estimate),
                "-" if math.isnan(status.attainment) else f"{status.attainment:.2%}",
                _fmt(status.burn, ".3g"),
                verdict,
            ]
        )
    return format_table(
        ["slo", "objective", "n", "estimate", "attainment", "burn", "status"],
        rows,
        title="SLO attainment",
    )


def _serving_section(snapshot: Mapping[str, object]) -> str:
    engines: dict[str, dict[str, float]] = {}
    for metric, column in (
        ("engine_cache_hits_total", "hits"),
        ("engine_cache_misses_total", "misses"),
        ("engine_serves_total", "serves"),
    ):
        for labels, value in _series(snapshot, metric):
            if isinstance(value, (int, float)):
                name = labels.get("engine", "-")
                engines.setdefault(name, {})[column] = float(value)
    rows = []
    totals = {"hits": 0.0, "misses": 0.0, "serves": 0.0}
    for name in sorted(engines):
        stats = engines[name]
        hits = stats.get("hits", 0.0)
        misses = stats.get("misses", 0.0)
        serves = stats.get("serves", 0.0)
        for key, val in (("hits", hits), ("misses", misses), ("serves", serves)):
            totals[key] += val
        lookups = hits + misses
        ratio = f"{hits / lookups:.2%}" if lookups else "-"
        rows.append([name, int(serves), int(hits), int(misses), ratio])
    if len(rows) > 1:
        lookups = totals["hits"] + totals["misses"]
        ratio = f"{totals['hits'] / lookups:.2%}" if lookups else "-"
        rows.append(
            [
                "(all)",
                int(totals["serves"]),
                int(totals["hits"]),
                int(totals["misses"]),
                ratio,
            ]
        )
    if not rows:
        rows.append(["-", 0, 0, 0, "-"])
    return format_table(
        ["engine", "serves", "cache hits", "cache misses", "hit ratio"],
        rows,
        title="Serving cache",
    )


def _distribution_rows(
    snapshot: Mapping[str, object], metric: str, label: str, unit: str
) -> "list[object] | None":
    merged = _merged_histogram(snapshot, metric)
    if merged is None or merged[1][-1] == 0:
        return None
    bounds, cumulative = merged
    quantiles = [
        estimate_quantile(bounds, cumulative, q) for q in (0.5, 0.95, 0.99)
    ]
    if unit == "s":
        rendered = [_fmt_ms(q) for q in quantiles]
    else:
        rendered = [_fmt(q) for q in quantiles]
    return [label, cumulative[-1], *rendered]


def _push_section(snapshot: Mapping[str, object]) -> "str | None":
    rows: list[list[object]] = []
    for metric, label, unit in (
        ("engine_push_edges_touched", "edges touched / query", ""),
        ("engine_push_error_bound", "error bound / query", ""),
        ("qa_ask_seconds", "ask latency", "s"),
        ("engine_propagate_seconds", "propagate latency", "s"),
    ):
        row = _distribution_rows(snapshot, metric, label, unit)
        if row is not None:
            rows.append(list(row))
    if not rows:
        return None
    counters = format_table(
        ["counter", "value"],
        [
            [name, int(_sum_counter(snapshot, name))]
            for name in (
                "engine_push_serves_total",
                "engine_push_repushes_total",
                "engine_push_rekeys_total",
                "engine_delta_revalidations_total",
                "engine_delta_entries_patched_total",
                "engine_delta_fallbacks_total",
                "engine_delta_rekeys_total",
            )
            if _series(snapshot, name)
        ],
        title="Propagation repair counters",
    )
    table = format_table(
        ["distribution", "n", "p50", "p95", "p99"],
        rows,
        title="Per-query cost distributions",
    )
    return table + "\n\n" + counters


def _durability_section(snapshot: Mapping[str, object]) -> "str | None":
    names = (
        ("wal_last_seq", "WAL last seq", ""),
        ("wal_lag_records", "WAL records past newest snapshot", ""),
        ("snapshot_last_seq", "snapshot last seq", ""),
        ("snapshot_age_seconds", "snapshot age", "s"),
        ("wal_torn_records_total", "torn WAL records", ""),
        ("snapshot_invalid_total", "invalid snapshots skipped", ""),
    )
    rows: list[list[object]] = []
    for name, label, unit in names:
        series = _series(snapshot, name)
        if not series:
            continue
        total = sum(v for _, v in series if isinstance(v, (int, float)))
        if unit == "s":
            rows.append([label, f"{total:.1f}s"])
        else:
            rows.append([label, int(total)])
    if not rows:
        return None
    return format_table(["staleness", "value"], rows, title="Durability")


def _events_section(events: Sequence[Mapping[str, object]]) -> "str | None":
    if not events:
        return None
    tail = list(events[-EVENT_TAIL:])
    t_last_raw = tail[-1].get("t", 0.0)
    t_last = float(t_last_raw) if isinstance(t_last_raw, (int, float)) else 0.0
    rows: list[list[object]] = []
    for event in tail:
        t_raw = event.get("t", 0.0)
        t = float(t_raw) if isinstance(t_raw, (int, float)) else 0.0
        attrs = " ".join(
            f"{k}={_fmt(v) if isinstance(v, float) else v}"
            for k, v in event.items()
            if k not in ("kind", "t")
        )
        rows.append([f"{t - t_last:+.3f}s", str(event.get("kind", "?")), attrs])
    return format_table(
        ["t (vs last)", "event", "attributes"],
        rows,
        title=f"Last {len(tail)} recorder events (of {len(events)})",
    )


def render_health_report(
    snapshot: Mapping[str, object],
    *,
    events: "Sequence[Mapping[str, object]] | None" = None,
    manifest: "Mapping[str, object] | None" = None,
    objectives: "Iterable[LatencyObjective] | None" = None,
) -> str:
    """The full diag report as one printable string.

    ``snapshot`` is a metrics-registry snapshot (live or from a bundle's
    ``metrics.json``); ``events``/``manifest`` come from a bundle when
    available.  Sections with no underlying data are omitted rather than
    rendered empty, so a minimal snapshot still yields a clean report.
    """
    objs = tuple(default_objectives() if objectives is None else objectives)
    parts: list[str] = []
    if manifest is not None:
        reason = manifest.get("reason", "?")
        detail = manifest.get("detail", "")
        created = manifest.get("created_at", "?")
        header = f"Flight bundle: reason={reason!r} created={created}"
        if detail:
            header += f"\n  trigger: {detail}"
        parts.append(header)
    asks = _sum_counter(snapshot, "qa_asks_total")
    votes = _sum_counter(snapshot, "qa_votes_total")
    optimizes = _sum_counter(snapshot, "optimize_runs_total")
    parts.append(
        f"Workload: {int(asks)} asks, {int(votes)} votes, "
        f"{int(optimizes)} optimize runs, {len(snapshot)} series"
    )
    parts.append(_slo_section(snapshot, objs))
    parts.append(_serving_section(snapshot))
    push = _push_section(snapshot)
    if push is not None:
        parts.append(push)
    durability = _durability_section(snapshot)
    if durability is not None:
        parts.append(durability)
    if events:
        section = _events_section(events)
        if section is not None:
            parts.append(section)
    return "\n\n".join(parts) + "\n"


def render_bundle_report(
    bundle: DiagBundle,
    *,
    objectives: "Iterable[LatencyObjective] | None" = None,
) -> str:
    """Render :func:`render_health_report` for a loaded bundle."""
    return render_health_report(
        bundle.metrics,
        events=bundle.events,
        manifest=bundle.manifest,
        objectives=objectives,
    )
