"""The process-wide metrics registry: counters, gauges, histograms.

Production serving needs numbers that are *always on*: cache hit rates,
solve latency distributions, how many votes the feasibility judgment
discarded today.  This module provides the smallest metric vocabulary
that covers the repo — :class:`Counter` (monotonic), :class:`Gauge`
(point-in-time), and :class:`Histogram` (fixed cumulative buckets, plus
sum and count) — behind a :class:`MetricsRegistry` that hands out
get-or-create instrument handles.

Design constraints, in order:

- **hot-path cheap**: an increment is one locked attribute add on a
  pre-bound handle (callers bind ``registry.counter(...)`` once, at
  construction time, never per event); a histogram observation is one
  ``bisect`` into a precomputed bucket array;
- **thread-safe by construction, not GIL luck**: registry get-or-create
  runs under the registry lock, and every instrument mutation is a
  read-modify-write guarded by a per-instrument ``threading.Lock`` —
  the discipline is declared in :data:`repro.utils.sync.SHARED_STATE`
  and enforced by rule R008 (``repro-kg analyze``), so the coming
  optimizer thread can increment concurrently with the serve path;
- **snapshot-able**: :meth:`MetricsRegistry.snapshot` returns a plain
  JSON-serializable dict, so exporters (JSONL, Prometheus text, console
  tables) never need to touch live instruments;
- **label support**: instruments are keyed by ``(name, sorted labels)``
  so several :class:`~repro.serving.engine.SimilarityEngine` instances
  in one process each get their own ``engine="<n>"`` series while the
  process-wide dump still sees everything.

Naming convention (documented in DESIGN.md): ``<subsystem>_<what>_<unit>``
with Prometheus-style suffixes — ``_total`` for counters,
``_seconds`` for latency histograms (e.g. ``engine_cache_hits_total``,
``sgp_solve_seconds``).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections.abc import Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "estimate_quantile",
    "fraction_at_or_below",
    "get_registry",
    "set_registry",
]

#: Fixed latency buckets (seconds) shared by the serve/solve/propagate
#: histograms: sub-millisecond cache hits through multi-second SGP solves.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    """Prometheus-style series key: ``name{k="v",...}`` (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (events, hits, discards)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be ≥ 0, got {amount}")
        with self._lock:
            self.value += amount

    def snapshot_value(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (cache size, graph version)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket cumulative histogram with sum and count.

    Buckets are upper bounds (``le``); an implicit ``+inf`` bucket
    catches everything above the last bound, so ``observe`` never
    drops a sample.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.labels = dict(labels)
        self.buckets = bounds
        self._lock = threading.Lock()
        self.counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample (``le`` semantics: a sample exactly on a
        bucket bound counts inside that bucket)."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Cumulative per-bucket counts (Prometheus ``le`` semantics)."""
        with self._lock:
            counts = list(self.counts)
        out: list[int] = []
        running = 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (see
        :func:`estimate_quantile`); ``nan`` with zero observations."""
        return estimate_quantile(self.buckets, self.cumulative_counts(), q)

    def fraction_le(self, threshold: float) -> float:
        """Interpolated fraction of samples ≤ ``threshold`` (see
        :func:`fraction_at_or_below`); ``nan`` with zero observations."""
        return fraction_at_or_below(self.buckets, self.cumulative_counts(), threshold)

    def snapshot_value(self) -> "dict[str, float | int | dict[str, int]]":
        cumulative = self.cumulative_counts()
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                **{format(b, "g"): cumulative[i] for i, b in enumerate(self.buckets)},
                "+Inf": cumulative[-1],
            },
        }


def estimate_quantile(
    bounds: Sequence[float], cumulative: Sequence[int], q: float
) -> float:
    """Prometheus-style bucket-interpolated quantile estimate.

    ``bounds`` are the finite upper bucket bounds and ``cumulative`` the
    cumulative counts *including* the trailing ``+Inf`` bucket
    (``len(cumulative) == len(bounds) + 1``) — exactly the shape
    :meth:`Histogram.cumulative_counts` and a snapshot's ``buckets`` dict
    provide, so bundle post-mortems reuse the same math as live checks.

    The rank ``q·count`` is located in its bucket and linearly
    interpolated between the bucket's bounds, which is exact when samples
    are uniform within a bucket and never off by more than one bucket
    width otherwise.  Edge cases follow ``histogram_quantile``: an empty
    histogram returns ``nan``, a rank landing in the ``+Inf`` bucket
    returns the largest finite bound (the estimate cannot invent an
    upper edge), and the first bucket interpolates from an implicit
    lower bound of ``0`` (latency-style data).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(cumulative) != len(bounds) + 1:
        raise ValueError(
            f"expected {len(bounds) + 1} cumulative counts "
            f"(finite buckets + '+Inf'), got {len(cumulative)}"
        )
    total = cumulative[-1]
    if total == 0:
        return math.nan
    rank = q * total
    index = 0
    while cumulative[index] < rank or cumulative[index] == 0:
        index += 1
    if index >= len(bounds):  # rank beyond the last finite bound
        return bounds[-1]
    upper = bounds[index]
    prev = cumulative[index - 1] if index else 0
    in_bucket = cumulative[index] - prev
    if in_bucket <= 0:  # pragma: no cover - unreachable by construction
        return upper
    if index:
        lower = bounds[index - 1]
    elif upper <= 0:
        return upper
    else:
        lower = 0.0
    return lower + (rank - prev) / in_bucket * (upper - lower)


def fraction_at_or_below(
    bounds: Sequence[float], cumulative: Sequence[int], threshold: float
) -> float:
    """Interpolated fraction of observed samples ≤ ``threshold``.

    The inverse question of :func:`estimate_quantile` — "what attainment
    did this latency objective get?" — under the same
    uniform-within-bucket model and the same input shape.  A threshold
    sitting exactly on a bucket bound is exact (``le`` semantics);
    samples in the ``+Inf`` bucket are conservatively counted as *above*
    any threshold.  Returns ``nan`` with zero observations.
    """
    if len(cumulative) != len(bounds) + 1:
        raise ValueError(
            f"expected {len(bounds) + 1} cumulative counts "
            f"(finite buckets + '+Inf'), got {len(cumulative)}"
        )
    total = cumulative[-1]
    if total == 0:
        return math.nan
    index = bisect_left(bounds, threshold)
    if index >= len(bounds):
        return cumulative[len(bounds) - 1] / total
    if bounds[index] == threshold:
        return cumulative[index] / total
    prev = cumulative[index - 1] if index else 0
    lower = bounds[index - 1] if index else min(0.0, threshold)
    if threshold <= lower:
        return prev / total
    upper = bounds[index]
    in_bucket = cumulative[index] - prev
    covered = (threshold - lower) / (upper - lower)
    return (prev + covered * in_bucket) / total


class MetricsRegistry:
    """Get-or-create registry of named, labeled instruments.

    Instruments are identified by ``(name, labels)``; asking for the
    same series twice returns the same object, and asking for an
    existing name with a different instrument type raises — a name
    means one thing process-wide.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._types: dict[str, type] = {}

    def _get_or_create(self, cls, name: str, labels: Mapping[str, str], **kwargs):
        key = _series_key(name, labels)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {key!r} is a {type(existing).__name__}, "
                        f"not a {cls.__name__}"
                    )
                return existing
            declared = self._types.get(name)
            if declared is not None and declared is not cls:
                raise TypeError(
                    f"metric name {name!r} is already registered as a "
                    f"{declared.__name__}"
                )
            metric = cls(name, labels, **kwargs)
            self._metrics[key] = metric
            self._types[name] = cls
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``(name, labels)`` (created on first use)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``(name, labels)`` (created on first use)."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """The histogram for ``(name, labels)`` (created on first use).

        ``buckets`` applies only on creation; later calls for the same
        series return the existing instrument unchanged.
        """
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def series(self) -> dict[str, "Counter | Gauge | Histogram"]:
        """Live instruments by series key (insertion-ordered)."""
        with self._lock:
            return dict(self._metrics)

    def snapshot(self) -> "dict[str, object]":
        """Plain-dict snapshot: ``series key -> value`` (JSON-serializable).

        Counters and gauges map to a float; histograms to
        ``{"count", "sum", "buckets"}`` with cumulative bucket counts.
        """
        return {
            key: metric.snapshot_value()
            for key, metric in self.series().items()
        }

    def value(self, name: str, **labels: str) -> "float | dict | None":
        """Snapshot value of one series, or ``None`` if never created."""
        metric = self.series().get(_series_key(name, labels))
        return None if metric is None else metric.snapshot_value()

    def clear(self) -> None:
        """Drop every instrument (tests and benchmark isolation)."""
        with self._lock:
            self._metrics.clear()
            self._types.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MetricsRegistry series={len(self._metrics)}>"


#: The process-wide default registry (what the CLI dumps).
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Tests use this to run against a throwaway registry and restore the
    old one afterwards.
    """
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(f"expected a MetricsRegistry, got {registry!r}")
    previous = _default_registry
    _default_registry = registry
    return previous
