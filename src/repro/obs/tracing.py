"""Nested tracing spans: where did this request's time actually go?

The serving/optimization pipeline is a tree of stages — an ``ask()``
flushes the engine, propagates, ranks; an ``optimize()`` filters votes,
encodes a program, solves it (possibly once per cluster), merges.  A
flat timer dict cannot show *which solve inside which cluster* was slow;
a span tree can.

Usage::

    with trace_span("qa.ask", question_id="q0") as span:
        ...                     # nested trace_span() calls attach here
        span.set_attrs(num_answers=8)
    trace = last_trace()
    print(trace.render())       # indented console tree
    for line in trace.to_json_lines():
        ...                     # one JSON object per span

Spans nest through a thread-local stack, so concurrently served threads
get independent traces.  When the outermost span of a thread closes,
the finished :class:`Trace` lands in a bounded ring buffer
(:func:`recent_traces`) and is offered to any registered listeners —
that is the hook the JSONL file exporter uses.  The ring and the
listener list are shared across threads and guarded by a real module
lock (``_ring_lock``, declared in
:data:`repro.utils.sync.SHARED_STATE`); listeners are invoked *outside*
the lock so a slow exporter cannot stall other threads' span exits.

The ambient API is deliberately tiny and cheap: opening a span costs a
``perf_counter`` call, a small object, and two list operations, so
per-request spans (not per-edge!) are fine on hot paths.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from collections.abc import Callable, Iterator
from time import perf_counter

__all__ = [
    "Span",
    "Trace",
    "trace_span",
    "set_trace_sampling",
    "current_span",
    "recent_traces",
    "last_trace",
    "clear_traces",
    "add_trace_listener",
    "remove_trace_listener",
]

#: How many finished traces the in-process ring buffer retains.
TRACE_BUFFER_SIZE = 128

_trace_ids = itertools.count(1)
_span_ids = itertools.count(1)


class Span:
    """One timed, attributed node of a trace tree.

    A ``Span`` is its own context manager (``with trace_span(...)``
    enters the span directly): the per-request serving hot path pays for
    exactly one object allocation per span, not a span plus a wrapper.
    Closing the outermost span of a thread finalizes a :class:`Trace`,
    stores it in the ring buffer, and notifies listeners.  Exceptions
    propagate untouched but mark the span with an ``error`` attribute
    first, so a failed request's partial trace still tells the story.
    """

    __slots__ = ("span_id", "name", "attrs", "start", "end", "children")

    #: Real spans record attributes; a sampled-out root does not.  Hot
    #: paths guard optional attribute work with ``if span.recording:``
    #: so a skipped request pays one attribute load instead of building
    #: kwargs for a no-op ``set_attrs``.
    recording = True

    def __init__(self, name: str, attrs: dict) -> None:
        self.span_id = next(_span_ids)
        self.name = name
        self.attrs = attrs
        # Re-armed by __enter__; set here too so a Span is well-formed
        # even before (or without) entering its context.
        self.start = perf_counter()
        self.end: "float | None" = None
        self.children: list[Span] = []

    def __enter__(self) -> "Span":
        stack = getattr(_local, "stack", None)  # _stack(), sans the call
        if stack is None:
            stack = _local.stack = []
        if stack:
            stack[-1].children.append(self)
        stack.append(self)
        self.start = perf_counter()  # exclude construct-to-enter gap
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        stack = _local.stack  # __enter__ guaranteed it exists
        stack.pop()
        if not stack:
            trace = Trace(self)
            with _ring_lock:
                dropped = len(_finished) == TRACE_BUFFER_SIZE
                _finished.append(trace)
                listeners = list(_listeners)
            if dropped:
                # The ring was full: appending evicted the oldest trace
                # unread.  Deliberate (bounded memory), but accounted —
                # a dashboard can tell "quiet" from "overwritten".
                from repro.obs.metrics import get_registry

                get_registry().counter("obs_traces_dropped_total").inc()
            for listener in listeners:
                listener(trace)
        return False

    @property
    def duration(self) -> float:
        """Wall-clock seconds (up to now while the span is still open)."""
        return (self.end if self.end is not None else perf_counter()) - self.start

    def set_attrs(self, **attrs) -> None:
        """Attach/overwrite attributes (solver iteration counts etc.)."""
        self.attrs.update(attrs)

    def finish(self) -> None:
        if self.end is None:
            self.end = perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Span {self.name!r} {self.duration * 1e3:.2f}ms>"


class Trace:
    """A finished span tree rooted at one request-level span."""

    __slots__ = ("trace_id", "root")

    def __init__(self, root: Span) -> None:
        self.trace_id = next(_trace_ids)
        self.root = root

    @property
    def duration(self) -> float:
        """Total wall-clock seconds of the root span."""
        return self.root.duration

    def walk(self) -> Iterator[tuple[Span, int, "Span | None"]]:
        """Depth-first ``(span, depth, parent)`` over the tree."""
        stack: list[tuple[Span, int, Span | None]] = [(self.root, 0, None)]
        while stack:
            span, depth, parent = stack.pop()
            yield span, depth, parent
            for child in reversed(span.children):
                stack.append((child, depth + 1, span))

    def span_names(self) -> list[str]:
        """Span names in depth-first order (handy in assertions)."""
        return [span.name for span, _, _ in self.walk()]

    def find(self, name: str) -> "Span | None":
        """First span with ``name`` in depth-first order, or ``None``."""
        for span, _, _ in self.walk():
            if span.name == name:
                return span
        return None

    def to_json_lines(self) -> list[str]:
        """One compact JSON object per span (exportable as JSONL).

        Start offsets are relative to the root span, so lines are
        self-contained and diff-able across runs.
        """
        origin = self.root.start
        lines = []
        for span, depth, parent in self.walk():
            lines.append(
                json.dumps(
                    {
                        "trace_id": self.trace_id,
                        "span_id": span.span_id,
                        "parent_id": parent.span_id if parent else None,
                        "depth": depth,
                        "name": span.name,
                        "start_ms": round((span.start - origin) * 1e3, 4),
                        "duration_ms": round(span.duration * 1e3, 4),
                        "attrs": _jsonable(span.attrs),
                    },
                    sort_keys=True,
                )
            )
        return lines

    def render(self, *, min_duration: float = 0.0) -> str:
        """Indented console tree: name, duration, attributes.

        ``min_duration`` (seconds) hides sub-spans faster than the
        threshold, keeping deep traces readable.
        """
        lines = []
        for span, depth, _ in self.walk():
            if depth and span.duration < min_duration:
                continue
            attrs = " ".join(f"{k}={_fmt_attr(v)}" for k, v in span.attrs.items())
            lines.append(
                f"{'  ' * depth}{span.name}  {span.duration * 1e3:.2f}ms"
                + (f"  [{attrs}]" if attrs else "")
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Trace #{self.trace_id} root={self.root.name!r} "
            f"{self.duration * 1e3:.2f}ms>"
        )


def _fmt_attr(value: object) -> str:
    if isinstance(value, float):
        return format(value, ".4g")
    return str(value)


def _jsonable(attrs: "dict[str, object]") -> "dict[str, object]":
    out: dict[str, object] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


_local = threading.local()
#: Guards the trace ring and the listener list — any thread's outermost
#: span exit publishes into both, so GIL luck is not a discipline.
_ring_lock = threading.Lock()
_finished: deque[Trace] = deque(maxlen=TRACE_BUFFER_SIZE)
_listeners: list[Callable[[Trace], None]] = []


def _stack() -> list[Span]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span() -> "Span | None":
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


class _NoopSpan:
    """Stand-in for a sampled-out root span: every operation is free.

    A process-wide singleton, so skipping a trace costs one comparison
    and no allocation.  It deliberately mirrors the :class:`Span`
    surface that instrumentation sites touch (``set_attrs``,
    ``finish``, ``duration``) so callers never branch on sampling.
    """

    __slots__ = ()
    recording = False
    name = "<sampled out>"
    attrs: dict = {}
    children: list = []
    duration = 0.0

    def __enter__(self) -> "_NoopSpan":
        # Spans opened underneath see an empty *span* stack, so this
        # depth is what tells them their root was sampled out.
        _local.noop_depth = getattr(_local, "noop_depth", 0) + 1
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.noop_depth -= 1
        return False

    def set_attrs(self, **attrs) -> None:
        pass

    def finish(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Span sampled out>"


_NOOP_SPAN = _NoopSpan()

#: Trace one in this many root spans (1 = trace every request).
_sample_every = 1
_root_seen = 0


def set_trace_sampling(every: int) -> int:
    """Trace one in ``every`` root spans; returns the previous setting.

    Head sampling for high-throughput serving: per-request root spans
    cost a few microseconds each, which an always-on tracer turns into
    measurable latency at thousands of requests per second.  With
    sampling at ``every > 1``, only every ``every``-th root span (and
    its children) is materialized — the first root after a (re)setting
    is always traced — while skipped requests pay one integer check.
    Metrics are unaffected: counters and histograms stay exact.

    Nested spans are never sampled individually: a traced root traces
    its whole tree, a skipped root skips it.
    """
    global _sample_every, _root_seen
    if every < 1:
        raise ValueError(f"sampling rate must be ≥ 1, got {every}")
    previous = _sample_every
    _sample_every = every
    _root_seen = 0
    return previous


def trace_span(name: str, **attrs) -> "Span | _NoopSpan":
    """A span ready to enter; nests under the thread's current span.

    Plain function returning a :class:`Span` (which is its own context
    manager) rather than ``@contextmanager``: the generator machinery
    costs more than the span bookkeeping itself, and this sits on the
    per-request serving hot path.

    Under :func:`set_trace_sampling` a would-be root span may instead
    be a free no-op singleton; spans opened inside a live span are
    always real so traced trees stay complete.
    """
    if _sample_every != 1 and not getattr(_local, "stack", None):
        if getattr(_local, "noop_depth", 0):  # inside a sampled-out root
            return _NOOP_SPAN
        global _root_seen
        seen = _root_seen
        _root_seen = seen + 1
        if seen % _sample_every:
            return _NOOP_SPAN
    return Span(name, attrs)


def recent_traces(n: "int | None" = None) -> list[Trace]:
    """The last ``n`` finished traces (all buffered ones by default)."""
    with _ring_lock:
        traces = list(_finished)
    return traces if n is None else traces[-n:]


def last_trace() -> "Trace | None":
    """The most recently finished trace, or ``None``."""
    with _ring_lock:
        return _finished[-1] if _finished else None


def clear_traces() -> None:
    """Empty the ring buffer and re-phase the sampler (test isolation).

    Resetting the sampling phase makes "the first root span after a
    clear is traced" deterministic regardless of what ran before.
    """
    global _root_seen
    with _ring_lock:
        _finished.clear()
    _root_seen = 0


def add_trace_listener(listener: Callable[[Trace], None]) -> None:
    """Call ``listener(trace)`` whenever a root span finishes."""
    with _ring_lock:
        _listeners.append(listener)


def remove_trace_listener(listener: Callable[[Trace], None]) -> None:
    """Detach a listener registered with :func:`add_trace_listener`."""
    with _ring_lock:
        _listeners.remove(listener)
