"""Exporters: turn live telemetry into files and console artifacts.

Three consumers, three formats:

- **JSONL** — one JSON object per span (:func:`write_traces_jsonl`) or
  one metrics snapshot per call (:func:`write_metrics_json`); the shapes
  machines ingest;
- **Prometheus text** (:func:`metrics_to_prometheus`) — the
  ``name{label="v"} value`` exposition format, so a scrape endpoint is
  one ``HTTPServer`` away;
- **console table** (:func:`summary_table`) — built on
  :func:`repro.utils.tables.format_table`, the same renderer every
  experiment report uses; this is what the CLI prints after a run.

A :class:`JsonlTraceWriter` can also be attached as a live trace
listener so every finished request trace streams to disk as it closes.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.obs.catalog import metric_help
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Trace, add_trace_listener, remove_trace_listener
from repro.utils.tables import format_table

__all__ = [
    "traces_to_jsonl",
    "write_traces_jsonl",
    "write_metrics_json",
    "metrics_to_prometheus",
    "summary_table",
    "JsonlTraceWriter",
]


def traces_to_jsonl(traces: Iterable[Trace]) -> str:
    """Concatenate the span lines of many traces into one JSONL blob."""
    lines: list[str] = []
    for trace in traces:
        lines.extend(trace.to_json_lines())
    return "\n".join(lines) + ("\n" if lines else "")


def write_traces_jsonl(path, traces: Iterable[Trace]) -> int:
    """Write traces as JSONL to ``path``; returns the span-line count."""
    blob = traces_to_jsonl(traces)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(blob)
    return 0 if not blob else blob.count("\n")


def write_metrics_json(path, registry: MetricsRegistry) -> dict:
    """Dump ``registry.snapshot()`` as pretty JSON; returns the snapshot."""
    snapshot = registry.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every series in ``registry``.

    Emits ``# HELP`` (text from the catalog's ``METRIC_HELP``) and
    ``# TYPE`` metadata per metric family, and escapes label values and
    help text per the exposition format (backslash, double quote, and
    newline in label values; backslash and newline in help text).
    """
    by_name: dict[str, list] = {}
    for metric in registry.series().values():
        by_name.setdefault(metric.name, []).append(metric)

    lines: list[str] = []
    for name in sorted(by_name):
        metrics = by_name[name]
        kind = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}[
            type(metrics[0])
        ]
        lines.append(f"# HELP {name} {_escape_help(metric_help(name))}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in metrics:
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative_counts()
                bounds = [format(b, "g") for b in metric.buckets] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    labels = dict(metric.labels, le=bound)
                    lines.append(f"{name}_bucket{_label_str(labels)} {count}")
                lines.append(
                    f"{name}_sum{_label_str(metric.labels)} {metric.sum:.9g}"
                )
                lines.append(
                    f"{name}_count{_label_str(metric.labels)} {metric.count}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(metric.labels)} {metric.value:.9g}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text per the Prometheus exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(labels[k]))}"' for k in sorted(labels)
    )
    return f"{{{inner}}}"


def summary_table(registry: MetricsRegistry, *, title: str = "metrics") -> str:
    """Aligned console table of every series: name, type, value.

    Histograms are summarized as ``count / total / mean`` — the numbers
    an operator reads first; the full bucket detail stays in the
    JSON/Prometheus exports.  Latency histograms (name ends in
    ``_seconds``) get s/ms units; other histograms print bare numbers.
    """
    rows = []
    for key, metric in sorted(registry.series().items()):
        if isinstance(metric, Histogram):
            mean = metric.sum / metric.count if metric.count else 0.0
            if metric.name.endswith("_seconds"):
                detail = (
                    f"n={metric.count} sum={metric.sum:.4f}s "
                    f"mean={mean * 1e3:.2f}ms"
                )
            else:
                detail = (
                    f"n={metric.count} sum={metric.sum:.4g} mean={mean:.4g}"
                )
            rows.append([key, "histogram", detail])
        elif isinstance(metric, Gauge):
            rows.append([key, "gauge", format(metric.value, ".6g")])
        else:
            rows.append([key, "counter", format(metric.value, ".6g")])
    return format_table(["series", "type", "value"], rows, title=title)


class JsonlTraceWriter:
    """Streams every finished trace to a JSONL file as it closes.

    Usable directly or as a context manager::

        with JsonlTraceWriter("traces.jsonl"):
            system.ask(...)          # spans stream to disk live
    """

    def __init__(self, path) -> None:
        self._handle = open(path, "a", encoding="utf-8")
        self._attached = False

    def __call__(self, trace: Trace) -> None:
        for line in trace.to_json_lines():
            self._handle.write(line + "\n")
        self._handle.flush()

    def __enter__(self) -> "JsonlTraceWriter":
        add_trace_listener(self)
        self._attached = True
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._attached:
            remove_trace_listener(self)
            self._attached = False
        if not self._handle.closed:
            self._handle.close()
