"""The versioned similarity-serving engine.

The seed serving path rebuilt the full CSR adjacency matrix from the
graph's Python dicts on *every* ``QASystem.ask()`` — an ``O(|E|)``
reconstruction per question that dwarfs the ``O(L·|E|)`` propagation the
truncated inverse P-distance (Section IV-A) was designed to make cheap.
:class:`SimilarityEngine` turns the graph into a long-lived serving
asset:

- it owns one cached sparse adjacency matrix over the *persistent*
  nodes (entities + answers) and keeps it up to date incrementally from
  the graph's mutation events (:meth:`~repro.graph.digraph.WeightedDiGraph.add_listener`):
  optimizer weight updates patch the CSR data array in place through a
  precomputed ``(head, tail) -> position`` map, and new answer
  (document) nodes append one CSR row — no rebuild in either case;
- query nodes never enter the matrix at all.  A query has out-links
  only, so no walk mass ever returns to it: seeding the propagation
  directly with the query's out-link weights is *bitwise identical* to
  running the dynamic program with the query row/column present (the
  removed entries only ever multiply zero mass).  Attaching or
  detaching a query therefore costs the engine nothing;
- score vectors live in a bounded LRU keyed on the engine's *matrix
  epoch* — a counter bumped only when the matrix contents actually
  change (rebuild, weight patch, row append).  Repeated questions
  against an unchanged matrix are served from the cache even while
  transient query nodes churn;
- optimizer weight patches do **not** cold-invalidate the LRU: the
  engine computes the exact correction each cached vector needs via
  delta propagation (:mod:`repro.serving.delta` — work scales with the
  changed edges' L-hop neighborhood, not ``|E|``) and re-keys the
  patched entries to the new epoch, so the serve-vote-optimize-serve
  loop keeps its caches warm.  When the patch is too dense for
  localization to pay off, the engine falls back to full propagation
  with an honest epoch bump (cold invalidation, bitwise identical to
  the pre-delta behaviour);
- :meth:`SimilarityEngine.stats` exposes observability counters (cache
  hits/misses, patches, row appends, rebuilds avoided, per-stage
  timings) for serving dashboards and the throughput benchmark.

Batched serving (:meth:`score_batch`) stacks the seed vectors of many
queries into one dense block and shares the ``L`` sparse matrix
products, mirroring :func:`repro.similarity.inverse_pdistance.inverse_pdistance_batch`.

Propagation itself is pluggable: the engine resolves
``params.backend`` through the :mod:`repro.similarity.backend`
registry.  The default ``"dense"`` backend reproduces the historical
dense DP bitwise; the ``"push"`` backend
(:mod:`repro.similarity.push`) serves from a sparse residual frontier
over an engine-maintained out-edge CSR, touching only edges near the
query.  Push results carry their touched-node set and derived error
bound, which lets :meth:`_flush` repair push state across optimizer
weight patches the way delta propagation repairs dense vectors: a
cached push entry whose touched set avoids every patched edge head is
provably still within its error budget and is re-keyed verbatim;
otherwise it is re-pushed locally on the patched matrix.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.devtools.contracts import (
    check_delta_scores,
    check_finite_csr_data,
    check_push_scores,
    contracts_enabled,
)
from repro.errors import EvaluationError, NodeNotFoundError
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import Node
from repro.obs import MetricsRegistry, get_registry, trace_span
from repro.obs.recorder import active_recorder
from repro.serving.delta import (
    DEFAULT_DELTA_DENSITY_THRESHOLD,
    DeltaCorrector,
    DeltaFallbackError,
)
from repro.serving.params import SimilarityParams, resolve_similarity_params
from repro.utils.sync import mutator, serve_path
from repro.similarity.backend import PropagationBackend, resolve_backend
from repro.similarity.push import PropagationResult, amplification_bound

#: Default bound on the per-query score-vector LRU cache.
DEFAULT_CACHE_SIZE = 256

#: Buckets for ``engine_push_error_bound`` (accounted dropped mass per
#: push query, a score error on [0, 1) — powers of ten, not latencies).
PUSH_ERROR_BOUND_BUCKETS: tuple[float, ...] = (
    1e-12, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)

#: A single revalidation re-pushing this many cached entries is a
#: "repush storm" — the optimizer's patch frontier keeps hitting the
#: cached queries' touched sets — and fires the flight recorder.
REPUSH_STORM_THRESHOLD = 8

#: Distinguishes the metric series of multiple engines in one process.
_ENGINE_SEQ = itertools.count()


@dataclass
class EngineStats:
    """Point-in-time snapshot of the engine's observability counters.

    Since the :mod:`repro.obs` migration this is a *compatibility view*:
    the live counts are registry metrics (``engine_*`` series labeled
    with this engine's id); :meth:`SimilarityEngine.stats` materializes
    them back into this dataclass so existing dashboards, benchmarks,
    and tests keep working unchanged.
    """

    #: Graph version the engine last served against.
    graph_version: int = 0
    #: Full matrix (re)builds performed.
    builds: int = 0
    #: Serves that found the cached matrix usable (no rebuild needed).
    rebuilds_avoided: int = 0
    #: In-place CSR weight patches applied (optimizer updates).
    weight_patches: int = 0
    #: CSR rows appended for newly attached answer/document nodes.
    rows_appended: int = 0
    #: Buffered mutation events that concerned transient query nodes
    #: and were skipped without touching the matrix.
    query_events_ignored: int = 0
    #: Score-cache hits / misses.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Current number of cached score vectors.
    cache_entries: int = 0
    #: Delta-revalidation passes that kept the cache warm across a
    #: weight patch, and the cached vectors corrected by them.
    delta_revalidations: int = 0
    delta_entries_patched: int = 0
    #: Patches too dense for delta propagation (cold invalidation).
    delta_fallbacks: int = 0
    #: Cached vectors carried verbatim to a new epoch (answer appends
    #: and zero-delta patches cannot change any cached score).
    delta_rekeys: int = 0
    #: Single-query / batched serve calls.
    serves: int = 0
    batch_serves: int = 0
    #: Push-backend serves, local re-pushes after weight patches, and
    #: cached push entries carried to a new epoch without recomputation
    #: (touched set provably disjoint from the patched edges).
    push_serves: int = 0
    push_repushes: int = 0
    push_rekeys: int = 0
    #: Total edges traversed by the push backend across serves and
    #: re-pushes (the series the sublinearity claim is asserted on).
    push_edges_touched: float = 0.0
    #: Cumulative seconds spent (re)building the matrix.
    build_time: float = 0.0
    #: Cumulative seconds spent in sparse propagation.
    propagate_time: float = 0.0
    #: Cumulative seconds spent delta-revalidating the score cache.
    delta_time: float = 0.0
    timings: dict = field(default_factory=dict)


class SimilarityEngine:
    """Versioned, incrementally maintained similarity serving.

    Parameters
    ----------
    aug:
        The live augmented graph to serve.  The engine registers a
        mutation listener on ``aug.graph`` and must be :meth:`close`\\ d
        (or garbage-collected) when no longer needed.
    params:
        Default :class:`SimilarityParams`; per-call overrides accepted.
    cache_size:
        Bound on the per-query score-vector LRU cache (0 disables it).
    registry:
        The :class:`~repro.obs.MetricsRegistry` receiving the engine's
        ``engine_*`` metric series (labeled ``engine="<n>"`` per
        instance).  Defaults to the process-wide registry.
    delta_revalidation:
        Keep cached score vectors warm across optimizer weight patches
        by applying exact delta-propagation corrections
        (:mod:`repro.serving.delta`) instead of cold-invalidating the
        LRU.  Off, every weight patch discards the whole cache (the
        pre-delta behaviour).
    delta_density_threshold:
        Fallback budget for delta revalidation, as a multiple of the
        matrix's edge count: when the correction frontier outgrows
        ``threshold x |E|`` nonzeros, the engine gives up on
        localization and cold-invalidates instead.  ``0`` forces the
        fallback on every patch.

    Notes
    -----
    The engine assumes the paper's augmented-graph construction
    (Section III-A): query nodes have out-links only.  Mutations routed
    through the :class:`~repro.graph.augmented.AugmentedGraph` /
    :class:`~repro.graph.digraph.WeightedDiGraph` APIs are tracked
    automatically; scores are always served at the graph's current
    version.
    """

    def __init__(
        self,
        aug: AugmentedGraph,
        *,
        params: "SimilarityParams | None" = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        registry: "MetricsRegistry | None" = None,
        delta_revalidation: bool = True,
        delta_density_threshold: float = DEFAULT_DELTA_DENSITY_THRESHOLD,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be ≥ 0, got {cache_size}")
        if delta_density_threshold < 0:
            raise ValueError(
                f"delta_density_threshold must be ≥ 0, got "
                f"{delta_density_threshold}"
            )
        self._delta_enabled = bool(delta_revalidation)
        self._delta_density_threshold = float(delta_density_threshold)
        self._aug = aug
        # Guards every mutation of the epoch state (matrix, caches,
        # push snapshots) so a background optimizer worker can publish
        # weight-patch epochs while serve threads revalidate lazily.
        # Reads stay lock-free: published objects are copy-on-write and
        # never mutated in place, so a captured reference is a
        # consistent epoch snapshot.  Re-entrant because publish() holds
        # it across apply + _flush, and serve paths re-enter via _flush.
        self._state_lock = threading.RLock()
        self.params = params if params is not None else SimilarityParams()
        self._cache_size = cache_size
        self._cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._matrix: "sparse.csr_matrix | None" = None
        # Push-backend serving state, derived lazily from the matrix:
        # the out-edge CSR (the matrix transposed), the position map
        # from matrix.data into its data array (so weight patches hit
        # both in place), the amplification bound ρ, and per-cache-entry
        # push metadata (touched set + error bound) for incremental
        # re-push decisions.
        self._push_adj: "sparse.csr_matrix | None" = None
        self._push_map: "np.ndarray | None" = None
        self._push_rho = 1.0
        self._push_meta: dict[tuple, PropagationResult] = {}
        self._epoch = 0  # bumped only when the matrix contents change
        self._index: dict[Node, int] = {}
        self._pos: dict[tuple[Node, Node], int] = {}
        self._events: list[tuple] = []
        self._listener = self._on_mutation
        aug.graph.add_listener(self._listener)
        # Metric handles are bound once here so hot-path increments are
        # a single attribute add, never a registry lookup.
        self.registry = registry if registry is not None else get_registry()
        self.engine_label = str(next(_ENGINE_SEQ))
        label = {"engine": self.engine_label}
        counter = self.registry.counter
        self._m_builds = counter("engine_builds_total", **label)
        self._m_rebuilds_avoided = counter("engine_rebuilds_avoided_total", **label)
        self._m_weight_patches = counter("engine_weight_patches_total", **label)
        self._m_rows_appended = counter("engine_rows_appended_total", **label)
        self._m_query_events = counter("engine_query_events_ignored_total", **label)
        self._m_cache_hits = counter("engine_cache_hits_total", **label)
        self._m_cache_misses = counter("engine_cache_misses_total", **label)
        self._m_serves = counter("engine_serves_total", **label)
        self._m_batch_serves = counter("engine_batch_serves_total", **label)
        self._m_delta_revalidations = counter(
            "engine_delta_revalidations_total", **label
        )
        self._m_delta_entries = counter(
            "engine_delta_entries_patched_total", **label
        )
        self._m_delta_fallbacks = counter(
            "engine_delta_fallbacks_total", **label
        )
        self._m_delta_rekeys = counter("engine_delta_rekeys_total", **label)
        self._m_push_serves = counter("engine_push_serves_total", **label)
        self._m_push_repushes = counter("engine_push_repushes_total", **label)
        self._m_push_rekeys = counter("engine_push_rekeys_total", **label)
        self._m_stale_drops = counter(
            "engine_stale_cache_drops_total", **label
        )
        self._g_cache_entries = self.registry.gauge("engine_cache_entries", **label)
        self._g_version = self.registry.gauge("engine_graph_version", **label)
        self._h_build = self.registry.histogram("engine_build_seconds", **label)
        self._h_propagate = self.registry.histogram(
            "engine_propagate_seconds", **label
        )
        self._h_delta = self.registry.histogram("engine_delta_seconds", **label)
        self._h_push_edges = self.registry.histogram(
            "engine_push_edges_touched", **label
        )
        self._h_push_error = self.registry.histogram(
            "engine_push_error_bound",
            buckets=PUSH_ERROR_BOUND_BUCKETS,
            **label,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @mutator
    def close(self) -> None:
        """Detach from the graph's mutation feed and drop caches."""
        self._aug.graph.remove_listener(self._listener)
        with self._state_lock:
            self._matrix = None
            self._push_adj = None
            self._push_map = None
            self._push_meta.clear()
            self._cache.clear()
        self._events.clear()

    @property
    def version(self) -> int:
        """The served graph's current mutation version."""
        return self._aug.graph.version

    @property
    def cache_size(self) -> int:
        """The configured bound on the per-query score LRU."""
        return self._cache_size

    def stats(self) -> EngineStats:
        """A snapshot of the observability counters.

        Materialized from this engine's registry series — the legacy
        :class:`EngineStats` view and the registry snapshot agree on
        every counter by construction.
        """
        self._g_cache_entries.set(len(self._cache))
        self._g_version.set(self.version)
        return EngineStats(
            graph_version=self.version,
            builds=int(self._m_builds.value),
            rebuilds_avoided=int(self._m_rebuilds_avoided.value),
            weight_patches=int(self._m_weight_patches.value),
            rows_appended=int(self._m_rows_appended.value),
            query_events_ignored=int(self._m_query_events.value),
            cache_hits=int(self._m_cache_hits.value),
            cache_misses=int(self._m_cache_misses.value),
            cache_entries=len(self._cache),
            delta_revalidations=int(self._m_delta_revalidations.value),
            delta_entries_patched=int(self._m_delta_entries.value),
            delta_fallbacks=int(self._m_delta_fallbacks.value),
            delta_rekeys=int(self._m_delta_rekeys.value),
            serves=int(self._m_serves.value),
            batch_serves=int(self._m_batch_serves.value),
            push_serves=int(self._m_push_serves.value),
            push_repushes=int(self._m_push_repushes.value),
            push_rekeys=int(self._m_push_rekeys.value),
            push_edges_touched=self._h_push_edges.sum,
            build_time=self._h_build.sum,
            propagate_time=self._h_propagate.sum,
            delta_time=self._h_delta.sum,
            timings={
                "build": self._h_build.sum,
                "propagate": self._h_propagate.sum,
                "delta": self._h_delta.sum,
            },
        )

    # ------------------------------------------------------------------
    # mutation feed
    # ------------------------------------------------------------------
    @mutator
    def _on_mutation(self, event: str, *args) -> None:
        # Buffered: events are coalesced and applied lazily at the next
        # serve, so a burst of optimizer updates costs one pass.
        self._events.append((event, *args))

    def _is_transient(self, node: Node) -> bool:
        """Whether ``node`` is (or was) a query node the matrix excludes."""
        if self._aug.is_query(node):
            return True
        # A node that vanished before the flush and never made it into
        # the matrix was a transient attach/detach (detached queries are
        # already gone from the role sets when events are processed).
        return (
            node not in self._index
            and not self._aug.is_answer(node)
            and not self._aug.is_entity(node)
        )

    @mutator
    def _flush(self) -> None:
        """Apply buffered mutations to the cached matrix.

        Runs entirely under ``_state_lock`` so a serve-thread
        revalidation and an optimizer-worker :meth:`publish` serialize.
        Weight patches are applied *copy-on-write*: the CSR data array
        is copied, patched, and rebound as a fresh matrix sharing the
        (immutable) index structure — a propagation that captured the
        previous matrix reference keeps a consistent snapshot of the
        retired epoch instead of seeing a half-patched tear.
        """
        with self._state_lock:
            events, self._events = self._events, []
            if self._matrix is None:
                self._rebuild()
                return
            if not events:
                self._m_rebuilds_avoided.inc()
                return
            patches: list[tuple[int, float]] = []
            patch_edges: dict[int, tuple[Node, Node]] = {}
            new_answers: list[Node] = []
            new_answer_set: set[Node] = set()
            rebuild = False
            ignored = 0  # transient-query events, counted in one batch below
            for event in events:
                kind = event[0]
                if kind == "update_weight":
                    _, head, tail, weight = event
                    position = self._pos.get((head, tail))
                    if position is not None:
                        patches.append((position, weight))
                        patch_edges[position] = (head, tail)
                    elif tail in new_answer_set or self._is_transient(head) or (
                        self._is_transient(tail)
                    ):
                        ignored += 1
                    else:
                        rebuild = True
                        break
                elif kind == "add_node":
                    node = event[1]
                    if self._aug.is_answer(node) and node not in self._index:
                        new_answers.append(node)
                        new_answer_set.add(node)
                    elif self._is_transient(node):
                        ignored += 1
                    else:
                        rebuild = True  # a new entity: sparsity pattern changes
                        break
                elif kind == "add_edge":
                    _, head, tail, weight = event
                    if tail in new_answer_set:
                        continue  # the appended row is read from the live graph
                    if self._is_transient(head) or self._is_transient(tail):
                        ignored += 1
                        continue
                    position = self._pos.get((head, tail))
                    if position is not None:
                        patches.append((position, weight))
                        patch_edges[position] = (head, tail)
                    else:
                        rebuild = True
                        break
                else:  # "remove_edge" / "remove_node"
                    involved = event[1:3] if kind == "remove_edge" else event[1:2]
                    if any(self._is_transient(node) for node in involved):
                        ignored += 1
                        continue
                    rebuild = True
                    break
            if ignored:
                self._m_query_events.inc(ignored)
            if rebuild:
                self._rebuild()
                return
            # Whether the cached score vectors still describe the matrix at
            # the (possibly bumped) current epoch.  Delta revalidation keeps
            # it true across weight patches; a fallback makes it false and
            # the stale entries are dropped below.
            cache_valid = True
            if patches:
                matrix = self._matrix
                data = matrix.data.copy()
                positions = np.unique(
                    np.fromiter(
                        (position for position, _ in patches),
                        dtype=np.int64,
                        count=len(patches),
                    )
                )
                track_delta = (
                    self._delta_enabled
                    and self._cache_size > 0
                    and bool(self._cache)
                )
                old_values = data[positions].copy() if track_delta else None
                for position, weight in patches:
                    data[position] = weight
                # Contract seam: every patched CSR entry is a finite positive
                # weight.  No-op unless REPRO_CONTRACTS is on.
                check_finite_csr_data(
                    data,
                    positions=[position for position, _ in patches],
                    seam="engine.patch",
                )
                self._matrix = sparse.csr_matrix(
                    (data, matrix.indices, matrix.indptr),
                    shape=matrix.shape,
                )
                if self._push_adj is not None:
                    # Keep the push out-edge CSR in lock-step with the
                    # matrix (same nonzeros, transposed layout) and grow the
                    # amplification bound ρ if a patched head's out-weight
                    # sum now exceeds it.  ρ is an upper bound, so weight
                    # decreases never lower it — staying high is sound.
                    adj = self._push_adj
                    adj_data = adj.data.copy()
                    adj_data[self._push_map[positions]] = data[positions]
                    heads = np.unique(
                        np.fromiter(
                            (
                                self._index[patch_edges[int(p)][0]]
                                for p in positions
                            ),
                            dtype=np.int64,
                            count=positions.size,
                        )
                    )
                    for row in heads:
                        row_sum = float(
                            adj_data[adj.indptr[row] : adj.indptr[row + 1]].sum()
                        )
                        if row_sum > self._push_rho:
                            self._push_rho = row_sum
                    self._push_adj = sparse.csr_matrix(
                        (adj_data, adj.indices, adj.indptr),
                        shape=adj.shape,
                    )
                self._m_weight_patches.inc(len(patches))
                self._epoch += 1
                if self._cache:
                    if track_delta:
                        cache_valid = self._delta_revalidate(
                            positions, old_values, patch_edges
                        )
                    else:
                        cache_valid = False
            if new_answers:
                try:
                    self._append_answer_rows(new_answers)
                except KeyError:
                    self._rebuild()
                    return
                self._epoch += 1
                if self._cache and cache_valid and self._delta_enabled:
                    # Answer nodes have no out-edges: appending rows cannot
                    # change any cached score, so the vectors carry over to
                    # the new epoch verbatim.
                    self._rekey_cache()
                elif self._cache and self._delta_enabled is False:
                    cache_valid = False
            if self._cache and not cache_valid:
                self._cache.clear()
                self._push_meta.clear()
                self._g_cache_entries.set(0)
            self._m_rebuilds_avoided.inc()

    @mutator
    def revalidate(self) -> None:
        """Apply buffered graph mutations now, off the serve path.

        Serving applies mutations lazily at the next :meth:`scores` /
        :meth:`score_batch` call; optimizer flush paths
        (:meth:`repro.qa.system.QASystem.optimize`,
        :class:`repro.optimize.online.OnlineOptimizer`,
        :func:`repro.optimize.apply.apply_edge_weights`) call this right
        after a solve instead, so the weight-patch burst is folded into
        one delta-revalidation pass *before* the post-optimize traffic
        spike and the first serve after a patch is a plain cache hit.
        """
        self._flush()

    @mutator
    def publish(self, apply: "Callable[[], object]") -> int:
        """Atomically apply a mutation batch and revalidate in one epoch.

        ``apply`` mutates the live graph (typically replaying a solved
        batch's weight patches); the engine holds ``_state_lock`` across
        the mutation *and* the revalidation, so no concurrent serve can
        flush a half-applied batch into an epoch of its own.  This is
        the optimizer worker's publication point: the whole batch lands
        as exactly one weight-patch epoch (plus delta revalidation),
        and serve threads either see the retired epoch or the fully
        published one — never a tear.

        Returns the epoch the batch was published as.
        """
        with self._state_lock:
            apply()
            self._flush()
            return self._epoch

    @property
    def epoch(self) -> int:
        """The current matrix-content epoch (monotonic; racy read is fine)."""
        return self._epoch

    @mutator
    def _rekey_cache(self) -> None:
        """Carry every cached vector verbatim to the current epoch.

        Only sound for matrix changes that provably cannot alter any
        cached score (answer-row appends, zero-delta patches).
        """
        with self._state_lock:
            if not self._cache:
                return
            self._cache = OrderedDict(
                (key[:-1] + (self._epoch,), vector)
                for key, vector in self._cache.items()
            )
            if self._push_meta:
                self._push_meta = {
                    key[:-1] + (self._epoch,): meta
                    for key, meta in self._push_meta.items()
                }
            self._m_delta_rekeys.inc(len(self._cache))

    def _cold_vector(
        self,
        links: "tuple[tuple[Node, float], ...]",
        target_idx: np.ndarray,
        max_length: int,
        restart_prob: float,
        matrix: "sparse.csr_matrix | None" = None,
    ) -> np.ndarray:
        """Un-instrumented reference DP, for contract checking only."""
        matrix = matrix if matrix is not None else self._matrix
        mass = np.zeros(matrix.shape[0])
        for entity, weight in links:
            mass[self._index[entity]] = weight
        damping = 1.0 - restart_prob
        factor = restart_prob * damping
        scores = np.zeros(len(target_idx))
        scores += factor * mass[target_idx]
        for _ in range(max_length - 1):
            mass = matrix @ mass
            factor *= damping
            if not mass.any():
                break
            scores += factor * mass[target_idx]
        return scores

    @mutator
    def _delta_revalidate(
        self,
        positions: np.ndarray,
        old_values: np.ndarray,
        patch_edges: "dict[int, tuple[Node, Node]]",
    ) -> bool:
        """Repair every cached score vector after a weight patch.

        The cache is partitioned by the backend that produced each
        entry (``key[0]``):

        - **dense** entries receive the exact delta-propagation
          correction and are re-keyed to the new epoch; a
          :class:`~repro.serving.delta.DeltaFallbackError` (patch too
          dense) or unknown node drops *only* the dense entries — the
          honest cold-invalidation fallback, now per-kind;
        - **push** entries (tracked in ``_push_meta``) are re-keyed
          verbatim when provably unaffected — no patched edge's head is
          in the entry's touched set and the amplification bound ρ did
          not grow, so both the computed mass and the dropped-mass
          error accounting are unchanged — and re-pushed locally on the
          patched matrix otherwise;
        - entries of any other (third-party) backend are dropped:
          the engine knows no repair rule for them.

        Returns whether the surviving cache is valid at the (already
        bumped) current epoch; repairs happen in place, so this is
        always ``True`` and the caller's wholesale drop never fires.
        """
        deltas = self._matrix.data[positions] - old_values
        changed = np.flatnonzero(deltas)
        if changed.size == 0:
            # The "patch" rewrote identical weights; nothing can differ.
            self._rekey_cache()
            return True
        index = self._index
        entries = list(self._cache.items())
        dense_keys = [key for key, _ in entries if key[0] == "dense"]
        push_keys = [key for key, _ in entries if key in self._push_meta]
        corrected: dict[tuple, np.ndarray] = {}
        dense_ok = True
        if dense_keys:
            max_length = max(key[3] for key in dense_keys)
            started = time.perf_counter()
            with trace_span(
                "engine.delta",
                edges=int(changed.size),
                entries=len(dense_keys),
            ) as span:
                try:
                    rows = np.fromiter(
                        (
                            index[patch_edges[int(p)][1]]
                            for p in positions[changed]
                        ),
                        dtype=np.int64,
                        count=changed.size,
                    )
                    cols = np.fromiter(
                        (
                            index[patch_edges[int(p)][0]]
                            for p in positions[changed]
                        ),
                        dtype=np.int64,
                        count=changed.size,
                    )
                    corrector = DeltaCorrector(
                        self._matrix,
                        rows,
                        cols,
                        deltas[changed],
                        max_length=max_length,
                        density_threshold=self._delta_density_threshold,
                    )
                    for key in dense_keys:
                        _backend, links, targets, length, restart_prob = key[:5]
                        seed_idx = np.fromiter(
                            (index[entity] for entity, _ in links),
                            dtype=np.int64,
                            count=len(links),
                        )
                        seed_weights = np.fromiter(
                            (weight for _, weight in links),
                            dtype=float,
                            count=len(links),
                        )
                        target_idx = np.fromiter(
                            (index[target] for target in targets),
                            dtype=np.int64,
                            count=len(targets),
                        )
                        vector = self._cache[key] + corrector.correction(
                            seed_idx,
                            seed_weights,
                            target_idx,
                            max_length=length,
                            restart_prob=restart_prob,
                            targets_key=targets,
                        )
                        # Contract seam: the revalidated vector must
                        # agree with a cold recompute within tolerance.
                        # No-op unless REPRO_CONTRACTS is on.
                        if contracts_enabled():
                            check_delta_scores(
                                vector,
                                self._cold_vector(
                                    links, target_idx, length, restart_prob
                                ),
                                seam="engine.delta",
                            )
                        vector.setflags(write=False)
                        corrected[key] = vector
                    span.set_attrs(frontier_nnz=corrector.frontier_nnz)
                except (DeltaFallbackError, KeyError) as exc:
                    dense_ok = False
                    corrected.clear()
                    self._m_delta_fallbacks.inc()
                    span.set_attrs(fallback=str(exc) or type(exc).__name__)
                    rec = active_recorder()
                    if rec is not None:
                        detail = str(exc) or type(exc).__name__
                        rec.record(
                            "engine.delta_fallback",
                            engine=self.engine_label,
                            entries_dropped=len(dense_keys),
                            edges_changed=int(changed.size),
                            error=detail,
                        )
                        rec.trigger(
                            "delta_fallback",
                            detail=(
                                f"engine {self.engine_label}: dropped "
                                f"{len(dense_keys)} dense cache entries "
                                f"({detail})"
                            ),
                        )
            self._h_delta.observe(time.perf_counter() - started)
            if dense_ok:
                self._m_delta_revalidations.inc()
                self._m_delta_entries.inc(len(dense_keys))
        repushed: dict[tuple, PropagationResult] = {}
        dropped: set[tuple] = set()
        push_rekeyed = 0
        if push_keys:
            out_matrix, rho = self._ensure_push_state()
            changed_heads = np.unique(
                np.fromiter(
                    (
                        index[patch_edges[int(p)][0]]
                        for p in positions[changed]
                    ),
                    dtype=np.int64,
                    count=changed.size,
                )
            )
            rekeyed = 0
            for key in push_keys:
                meta = self._push_meta[key]
                if (
                    meta.touched_nodes is not None
                    and rho <= meta.rho
                    and not np.isin(
                        changed_heads, meta.touched_nodes, assume_unique=True
                    ).any()
                ):
                    # The tracked push only ever read out-edges of its
                    # touched nodes, and the dropped-mass accounting
                    # only depends on ρ: with both unchanged the cached
                    # vector is still within its error bound.
                    rekeyed += 1
                    continue
                backend_name, links, targets, length, restart_prob, tol = (
                    key[:6]
                )
                try:
                    backend = resolve_backend(backend_name)
                    target_idx = np.fromiter(
                        (index[target] for target in targets),
                        dtype=np.int64,
                        count=len(targets),
                    )
                    result = self._push_compute(
                        dict(links),
                        target_idx,
                        SimilarityParams(
                            max_length=length,
                            restart_prob=restart_prob,
                            backend=backend_name,
                            push_tolerance=float(tol),
                        ),
                        backend,
                    )
                except (KeyError, EvaluationError):
                    dropped.add(key)
                    continue
                self._m_push_repushes.inc()
                repushed[key] = result
            if rekeyed:
                self._m_push_rekeys.inc(rekeyed)
            push_rekeyed = rekeyed
        # Rebuild the cache in LRU order with new-epoch keys; entries
        # with no repair rule (dense after a fallback, failed re-pushes,
        # unknown backends) simply fall out.  Every surviving vector
        # funnels through the single freeze-then-store below, so the
        # frozen-values invariant (R009) holds by construction.
        new_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        new_meta: dict[tuple, PropagationResult] = {}
        for key, vector in entries:
            new_key = key[:-1] + (self._epoch,)
            if key in corrected:
                vector = corrected[key]
            elif key in repushed:
                result = repushed[key]
                vector = result.scores
                new_meta[new_key] = result
            elif key in self._push_meta and key not in dropped:
                new_meta[new_key] = self._push_meta[key]
            else:
                continue
            vector.setflags(write=False)
            new_cache[new_key] = vector
        # _flush already holds the lock (re-entrant); the lexical scope
        # marks the swap as the guarded publication point.
        with self._state_lock:
            self._cache = new_cache
            self._push_meta = new_meta
        self._g_cache_entries.set(len(new_cache))
        rec = active_recorder()
        if rec is not None:
            rec.record(
                "engine.revalidate",
                engine=self.engine_label,
                edges_changed=int(changed.size),
                entries_patched=len(corrected),
                dense_fallback=not dense_ok,
                push_repushes=len(repushed),
                push_rekeys=push_rekeyed,
                entries_kept=len(new_cache),
            )
            if len(repushed) >= REPUSH_STORM_THRESHOLD:
                rec.trigger(
                    "repush_storm",
                    detail=(
                        f"engine {self.engine_label}: one revalidation "
                        f"re-pushed {len(repushed)} cached entries "
                        f"(threshold {REPUSH_STORM_THRESHOLD})"
                    ),
                )
        return True

    @mutator
    def _rebuild(self) -> None:
        """Rebuild the base matrix from the live graph (the safe path).

        The base matrix is ``M[i, j] = w(v_j, v_i)`` over every
        non-query node, with per-row entries sorted by column — the same
        canonical layout ``scipy`` produces for the cold
        :meth:`~repro.graph.digraph.WeightedDiGraph.adjacency_matrix`,
        so propagation results match it bitwise.
        """
        started = time.perf_counter()
        with self._state_lock, trace_span("engine.rebuild") as span:
            graph = self._aug.graph
            queries = self._aug.query_nodes
            nodes = [node for node in graph.nodes() if node not in queries]
            index = {node: i for i, node in enumerate(nodes)}
            per_row: list[list[tuple[int, float, tuple[Node, Node]]]] = [
                [] for _ in nodes
            ]
            for head in nodes:
                j = index[head]
                for tail, weight in graph.successors(head).items():
                    if tail in queries:
                        continue  # unsupported by construction; be safe
                    per_row[index[tail]].append((j, weight, (head, tail)))
            data: list[float] = []
            indices: list[int] = []
            indptr = [0]
            positions: dict[tuple[Node, Node], int] = {}
            for row in per_row:
                row.sort(key=lambda entry: entry[0])
                for j, weight, key in row:
                    positions[key] = len(data)
                    indices.append(j)
                    data.append(weight)
                indptr.append(len(data))
            n = len(nodes)
            self._matrix = sparse.csr_matrix(
                (
                    np.asarray(data, dtype=float),
                    np.asarray(indices, dtype=np.int32),
                    np.asarray(indptr, dtype=np.int32),
                ),
                shape=(n, n),
            )
            self._index = index
            self._pos = positions
            self._push_adj = None
            self._push_map = None
            self._epoch += 1
            span.set_attrs(nodes=n, edges=len(data))
        check_finite_csr_data(self._matrix.data, seam="engine.rebuild")
        self._m_builds.inc()
        self._h_build.observe(time.perf_counter() - started)

    @mutator
    def _append_answer_rows(self, answers: Sequence[Node]) -> None:
        """Grow the matrix by one empty column + one in-link row per answer.

        Answer nodes have no out-edges, so their columns stay empty; all
        their in-links land in the single new row, which makes CSR row
        append the exact incremental form of a rebuild.
        """
        started = time.perf_counter()
        with self._state_lock:
            matrix = self._matrix
            data_parts = [matrix.data]
            index_parts = [matrix.indices]
            indptr = list(matrix.indptr)
            offset = len(matrix.data)
            for answer in answers:
                links = self._aug.answer_links(answer)
                entries = sorted(
                    (self._index[entity], float(weight), entity)
                    for entity, weight in links.items()
                )
                self._index[answer] = len(self._index)
                for j, weight, entity in entries:
                    self._pos[(entity, answer)] = offset
                    offset += 1
                data_parts.append(
                    np.asarray([w for _, w, _ in entries], dtype=float)
                )
                index_parts.append(
                    np.asarray([j for j, _, _ in entries], dtype=np.int32)
                )
                indptr.append(offset)
            n = len(self._index)
            self._matrix = sparse.csr_matrix(
                (
                    np.concatenate(data_parts),
                    np.concatenate(index_parts),
                    np.asarray(indptr, dtype=np.int64),
                ),
                shape=(n, n),
            )
            self._push_adj = None
            self._push_map = None
        check_finite_csr_data(self._matrix.data, seam="engine.append_rows")
        self._m_rows_appended.inc(len(answers))
        self._h_build.observe(time.perf_counter() - started)

    def _ensure_push_state(self) -> tuple[sparse.csr_matrix, float]:
        """The push backend's out-edge CSR + amplification bound ρ.

        Built lazily as the exact transpose of the in-edge matrix,
        together with a position map ``matrix.data[p] ↔
        push_adj.data[push_map[p]]`` so weight patches update both CSRs
        in place.  The map falls out of transposing a "tag" matrix that
        carries each nonzero's original data position as its value.
        """
        with self._state_lock:
            if self._push_adj is None:
                matrix = self._matrix
                nnz = matrix.nnz
                if nnz:
                    tag = sparse.csr_matrix(
                        (
                            np.arange(1, nnz + 1, dtype=np.float64),
                            matrix.indices,
                            matrix.indptr,
                        ),
                        shape=matrix.shape,
                    )
                    tagged = sparse.csr_matrix(tag.T)
                    source_pos = np.rint(tagged.data).astype(np.int64) - 1
                    self._push_adj = sparse.csr_matrix(
                        (
                            matrix.data[source_pos],
                            tagged.indices.copy(),
                            tagged.indptr.copy(),
                        ),
                        shape=matrix.shape,
                    )
                    push_map = np.empty(nnz, dtype=np.int64)
                    push_map[source_pos] = np.arange(nnz, dtype=np.int64)
                    self._push_map = push_map
                else:
                    self._push_adj = sparse.csr_matrix(matrix.shape)
                    self._push_map = np.empty(0, dtype=np.int64)
                self._push_rho = amplification_bound(self._push_adj)
            return self._push_adj, self._push_rho

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _resolve_targets(self, targets: "Iterable[Node] | None") -> list[Node]:
        if targets is None:
            return sorted(self._aug.answer_nodes, key=repr)
        return list(targets)

    def _target_indices(self, targets: Sequence[Node]) -> np.ndarray:
        try:
            return np.array([self._index[t] for t in targets], dtype=int)
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None

    def _seed_links(self, query: Node) -> dict[Node, float]:
        if not self._aug.is_query(query):
            raise EvaluationError(
                f"{query!r} is not a query node of the augmented graph"
            )
        return self._aug.query_links(query)

    def _cache_key(
        self,
        links: Mapping[Node, float],
        targets: Sequence[Node],
        params: SimilarityParams,
    ) -> tuple:
        # Keyed on the matrix epoch, not the graph version: transient
        # query attach/detach bumps the version but cannot change any
        # served score, so cached vectors stay valid across it.  The
        # out-links are canonicalized (sorted by node repr): two queries
        # with identical links in different insertion order are the same
        # propagation and must share one cache entry.  The backend name
        # leads the key (different kernels may return different
        # vectors), and the push tolerance is part of it so the same
        # query at two error budgets never aliases.
        return (
            params.backend,
            tuple(sorted(links.items(), key=lambda item: repr(item[0]))),
            tuple(targets),
            params.max_length,
            params.restart_prob,
            params.push_tolerance,
            self._epoch,
        )

    def _cache_get(self, key: tuple) -> "np.ndarray | None":
        if not self._cache_size:
            return None
        with self._state_lock:
            scores = self._cache.get(key)
            if scores is None:
                self._m_cache_misses.inc()
                return None
            self._cache.move_to_end(key)
        self._m_cache_hits.inc()
        return scores

    @mutator
    def _cache_put(self, key: tuple, scores: np.ndarray) -> None:
        if not self._cache_size:
            return
        # Cached vectors are handed back by reference on every hit (and
        # corrected by delta revalidation): freeze them so no caller can
        # poison every later hit for the key.
        scores.setflags(write=False)
        with self._state_lock:
            if key[-1] != self._epoch:
                # A publish landed between this serve's key computation
                # and the insert: the vector describes a retired matrix
                # epoch.  Inserting it would hand the next delta
                # revalidation a wrong-basis vector to "correct" onto a
                # live epoch — drop it; the caller still returns its
                # (consistent, retired-epoch) scores.
                self._m_stale_drops.inc()
                return
            self._cache[key] = scores
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                evicted, _ = self._cache.popitem(last=False)
                self._push_meta.pop(evicted, None)
            self._g_cache_entries.set(len(self._cache))

    def _seed_arrays(
        self, links: Mapping[Node, float]
    ) -> tuple[np.ndarray, np.ndarray]:
        """A query's out-link mapping as (entity indices, weights)."""
        seed_idx = np.fromiter(
            (self._index[entity] for entity in links),
            dtype=np.int64,
            count=len(links),
        )
        seed_weights = np.fromiter(
            links.values(), dtype=np.float64, count=len(links)
        )
        return seed_idx, seed_weights

    def _propagate_one(
        self,
        links: Mapping[Node, float],
        target_idx: np.ndarray,
        params: SimilarityParams,
        backend: PropagationBackend,
    ) -> np.ndarray:
        """One matrix-level propagation with the first step pre-seeded.

        The dense backend mirrors
        :func:`repro.similarity.inverse_pdistance.inverse_pdistance`
        operation-for-operation from ``t = 1`` on, so the result is
        bitwise equal to a cold recompute on the full graph.
        """
        started = time.perf_counter()
        with trace_span(
            "engine.propagate", batch=1, max_length=params.max_length
        ):
            seed_idx, seed_weights = self._seed_arrays(links)
            result = backend.propagate(
                self._matrix, seed_idx, seed_weights, target_idx, params=params
            )
        self._h_propagate.observe(time.perf_counter() - started)
        return result.scores

    def _propagate_many(
        self,
        link_columns: Sequence[Mapping[Node, float]],
        target_idx: np.ndarray,
        params: SimilarityParams,
        backend,
    ) -> np.ndarray:
        """Stacked propagation: one dense block, ``L`` sparse products."""
        started = time.perf_counter()
        with trace_span(
            "engine.propagate",
            batch=len(link_columns),
            max_length=params.max_length,
        ):
            seed_columns = [
                self._seed_arrays(links) for links in link_columns
            ]
            result = backend.propagate_batch(
                self._matrix, seed_columns, target_idx, params=params
            )
        self._h_propagate.observe(time.perf_counter() - started)
        return result.scores

    def _push_compute(
        self,
        links: Mapping[Node, float],
        target_idx: np.ndarray,
        params: SimilarityParams,
        backend: PropagationBackend,
    ) -> PropagationResult:
        """One local-push evaluation against the maintained out-CSR.

        Observes the touched-edge histogram (the sublinearity series)
        and, with contracts armed, checks the pushed vector against a
        cold dense recompute within the result's own error bound.
        """
        started = time.perf_counter()
        with trace_span(
            "engine.push", batch=1, max_length=params.max_length
        ) as span:
            # Capture the in-matrix and the push state under one lock
            # hold so both belong to the same epoch (a concurrent
            # publish between the two reads would mix epochs).
            with self._state_lock:
                out_matrix, rho = self._ensure_push_state()
                matrix = self._matrix
            seed_idx, seed_weights = self._seed_arrays(links)
            result = backend.propagate(
                matrix,
                seed_idx,
                seed_weights,
                target_idx,
                params=params,
                out_matrix=out_matrix,
                rho=rho,
            )
            span.set_attrs(
                edges_touched=int(result.edges_touched),
                error_bound=float(result.error_bound),
            )
        self._h_propagate.observe(time.perf_counter() - started)
        self._h_push_edges.observe(float(result.edges_touched))
        self._h_push_error.observe(float(result.error_bound))
        if contracts_enabled():
            links_key = tuple(links.items())
            check_push_scores(
                result.scores,
                self._cold_vector(
                    links_key,
                    target_idx,
                    params.max_length,
                    params.restart_prob,
                    matrix=matrix,
                ),
                budget=result.error_bound,
                seam="engine.push",
            )
        return result

    def _serve_push(
        self,
        links: Mapping[Node, float],
        target_idx: np.ndarray,
        params: SimilarityParams,
        backend: PropagationBackend,
        key: tuple,
    ) -> PropagationResult:
        """Serve one query via push, caching the vector + its metadata.

        Returns the full :class:`PropagationResult` so the caller can
        attribute the query's cost (``edges_touched``) and accuracy
        (``error_bound``) — not just the scores.
        """
        result = self._push_compute(links, target_idx, params, backend)
        self._m_push_serves.inc()
        self._cache_put(key, result.scores)
        with self._state_lock:
            # Only track metadata for entries the put actually kept —
            # a stale-epoch drop (or cache_size=0) stores nothing.
            if key in self._cache:
                self._push_meta[key] = result
        return result

    @serve_path
    def scores(
        self,
        links: Mapping[Node, float],
        targets: "Iterable[Node] | None" = None,
        *,
        params: "SimilarityParams | None" = None,
    ) -> dict[Node, float]:
        """``Φ_L`` scores for a *virtual* query given its entity links.

        ``links`` is the query's normalized out-link mapping
        (``entity -> weight``); the query node itself does not need to
        exist in the graph.  Unknown entities raise
        :class:`~repro.errors.NodeNotFoundError`.
        """
        params = params if params is not None else self.params
        backend = resolve_backend(params)
        target_list = self._resolve_targets(targets)
        self._m_serves.inc()
        self._flush()
        # Flight-recorder attribution: one event per serve with the
        # backend, cache outcome, epoch, and (for push) the query's own
        # cost/accuracy numbers.  Disarmed cost: one load + comparison.
        rec = active_recorder()
        started = time.perf_counter() if rec is not None else 0.0
        key = self._cache_key(links, target_list, params)
        cached = self._cache_get(key)
        if cached is not None:
            if rec is not None:
                rec.record_timed(
                    "engine.serve",
                    time.perf_counter() - started,
                    engine=self.engine_label,
                    backend=params.backend,
                    cache="hit",
                    epoch=self._epoch,
                )
            return {t: float(s) for t, s in zip(target_list, cached)}
        missing = [e for e in links if e not in self._index]
        if missing:
            raise NodeNotFoundError(missing[0])
        target_idx = self._target_indices(target_list)
        result: "PropagationResult | None" = None
        if getattr(backend, "uses_out_matrix", False):
            result = self._serve_push(links, target_idx, params, backend, key)
            vector = result.scores
        elif getattr(backend, "supports_matrix", False):
            vector = self._propagate_one(links, target_idx, params, backend)
            self._cache_put(key, vector)
        else:
            raise EvaluationError(
                f"backend {params.backend!r} has no matrix-level kernel; "
                f"use the graph-level API (repro.similarity.backend."
                f"get_backend({params.backend!r}).scores(...)) instead"
            )
        if rec is not None:
            if result is not None:
                rec.record_timed(
                    "engine.serve",
                    time.perf_counter() - started,
                    engine=self.engine_label,
                    backend=params.backend,
                    cache="miss",
                    epoch=self._epoch,
                    edges_touched=int(result.edges_touched),
                    error_bound=float(result.error_bound),
                )
            else:
                rec.record_timed(
                    "engine.serve",
                    time.perf_counter() - started,
                    engine=self.engine_label,
                    backend=params.backend,
                    cache="miss",
                    epoch=self._epoch,
                )
        return {t: float(s) for t, s in zip(target_list, vector)}

    @serve_path
    def scores_for_query(
        self,
        query: Node,
        targets: "Iterable[Node] | None" = None,
        *,
        params: "SimilarityParams | None" = None,
    ) -> dict[Node, float]:
        """``Φ_L`` scores for an attached query node."""
        return self.scores(self._seed_links(query), targets, params=params)

    @serve_path
    def score_batch(
        self,
        queries: Sequence[Node],
        targets: "Iterable[Node] | None" = None,
        *,
        params: "SimilarityParams | None" = None,
    ) -> dict[Node, dict[Node, float]]:
        """Batched ``Φ_L`` for many attached queries at once.

        Cached queries are answered from the LRU; the remainder share
        one stacked propagation (``L`` sparse-dense products total).
        """
        params = params if params is not None else self.params
        backend = resolve_backend(params)
        target_list = self._resolve_targets(targets)
        query_list = list(queries)
        if not query_list:
            return {}
        self._m_batch_serves.inc()
        self._flush()
        rec = active_recorder()
        started = time.perf_counter() if rec is not None else 0.0
        links_by_query = {q: self._seed_links(q) for q in query_list}
        results: dict[Node, dict[Node, float]] = {}
        pending: list[Node] = []
        keys: dict[Node, tuple] = {}
        for query in query_list:
            key = self._cache_key(links_by_query[query], target_list, params)
            keys[query] = key
            cached = self._cache_get(key)
            if cached is not None:
                results[query] = {
                    t: float(s) for t, s in zip(target_list, cached)
                }
            else:
                pending.append(query)
        if pending:
            for query in pending:
                missing = [
                    e for e in links_by_query[query] if e not in self._index
                ]
                if missing:
                    raise NodeNotFoundError(missing[0])
            target_idx = self._target_indices(target_list)
            if getattr(backend, "uses_out_matrix", False):
                # Push localizes per query; there is no shared dense
                # block to stack, so batch = a loop of local pushes.
                for query in pending:
                    push_result = self._serve_push(
                        links_by_query[query],
                        target_idx,
                        params,
                        backend,
                        keys[query],
                    )
                    results[query] = {
                        t: float(s)
                        for t, s in zip(target_list, push_result.scores)
                    }
            elif getattr(backend, "supports_matrix", False) and hasattr(
                backend, "propagate_batch"
            ):
                block = self._propagate_many(
                    [links_by_query[q] for q in pending],
                    target_idx,
                    params,
                    backend,
                )
                for column, query in enumerate(pending):
                    vector = block[:, column].copy()
                    self._cache_put(keys[query], vector)
                    results[query] = {
                        t: float(s) for t, s in zip(target_list, vector)
                    }
            elif getattr(backend, "supports_matrix", False):
                for query in pending:
                    vector = self._propagate_one(
                        links_by_query[query], target_idx, params, backend
                    )
                    self._cache_put(keys[query], vector)
                    results[query] = {
                        t: float(s) for t, s in zip(target_list, vector)
                    }
            else:
                raise EvaluationError(
                    f"backend {params.backend!r} has no matrix-level "
                    f"kernel; use the graph-level API (repro.similarity."
                    f"backend.get_backend({params.backend!r})"
                    f".scores_batch(...)) instead"
                )
        if rec is not None:
            rec.record_timed(
                "engine.serve_batch",
                time.perf_counter() - started,
                engine=self.engine_label,
                backend=params.backend,
                queries=len(query_list),
                cache_hits=len(query_list) - len(pending),
                epoch=self._epoch,
            )
        return {q: results[q] for q in query_list}

    @serve_path
    def top_k(
        self,
        query: Node,
        *,
        k: "int | None" = None,
        targets: "Iterable[Node] | None" = None,
        params: "SimilarityParams | None" = None,
    ) -> list[tuple[Node, float]]:
        """Ranked top-k ``(answer, score)`` for an attached query node.

        Tie-breaking matches :func:`repro.similarity.top_k.rank_answers`:
        descending score, then ``repr`` of the answer id.
        """
        params = params if params is not None else self.params
        scores = self.scores_for_query(query, targets, params=params)
        limit = k if k is not None else params.k
        if limit < 1:
            raise ValueError(f"k must be at least 1, got {limit}")
        ordered = sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))
        return ordered[:limit]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = self._matrix.shape[0] if self._matrix is not None else None
        return (
            f"<SimilarityEngine version={self.version} nodes={built} "
            f"cache={len(self._cache)}/{self._cache_size}>"
        )
